# Convenience targets for the PowerLog reproduction.

PYTHON ?= python3

.PHONY: install test chaos bench quick-bench examples check clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# fault-injection suite only (also runs as part of `make test`)
chaos:
	$(PYTHON) -m pytest -m chaos tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

quick-bench:
	REPRO_BENCH_SCALE=0.5 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

check:
	$(PYTHON) -m repro experiment table1

clean:
	rm -rf .pytest_cache src/repro.egg-info benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
