# Convenience targets for the PowerLog reproduction.
#
# Every target works from a clean checkout without an editable install:
# PYTHONPATH carries the src/ layout so `python -m pytest` and
# `python -m repro` resolve the package directly.

PYTHON ?= python3
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install lint lint-programs typecheck test chaos serve serve-bench bench quick-bench smoke-bench bench-gate golden-drift examples check clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# ruff when available (CI installs it); otherwise fall back to a syntax
# pass so the target still guards something in a bare container
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to compileall syntax check"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi
	$(PYTHON) tools/lint_invariants.py

# static analysis over every library program and the example .dl files;
# the registry must stay free of errors (gcn/commnet warn RA310, which
# only fails under --gate async)
lint-programs:
	$(PYTHON) -m repro lint sssp cc pagerank adsorption katz bp dag_paths \
		cost viterbi simrank lca apsp commnet gcn
	@for file in examples/datalog/*.dl; do \
		case "$$file" in *bad_*) continue;; esac; \
		echo "== $$file =="; \
		$(PYTHON) -m repro lint "$$file" || exit 1; \
	done

# strict typing is introduced module-by-module; repro.analysis and
# repro.runtime are the fully typed set (mypy when available -- CI
# installs it)
typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro/analysis src/repro/runtime; \
	else \
		echo "mypy not installed; skipping (CI runs the strict job)"; \
	fi

test:
	$(PYTHON) -m pytest -x -q tests/

# fault-injection suite only (also runs as part of `make test`)
chaos:
	$(PYTHON) -m pytest -m chaos tests/

# serving-layer demo: the default seeded multi-tenant workload under
# the default chaos plan (burst shedding, stale serving, breaker trips)
serve:
	$(PYTHON) -m repro serve --chaos

# SLO acceptance harness: byte-identical reruns, no lost requests,
# degraded-answer agreement, breaker visibility; writes the JSON report
serve-bench:
	mkdir -p benchmarks/results
	rm -rf benchmarks/results/serve-ckpt
	$(PYTHON) -m repro serve --chaos --acceptance \
		--checkpoint-dir benchmarks/results/serve-ckpt \
		--out benchmarks/results/serve-slo.json
	rm -rf benchmarks/results/serve-ckpt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

quick-bench:
	REPRO_BENCH_SCALE=0.5 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# CI smoke run: tiny scale, skipping the figures whose qualitative
# claims only hold at larger scales (see benchmarks/README notes)
smoke-bench:
	REPRO_BENCH_SCALE=0.25 $(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=benchmarks/results/smoke.json \
		--ignore=benchmarks/bench_fig10_gain.py \
		--ignore=benchmarks/bench_fig11_aap.py \
		--ignore=benchmarks/bench_worker_scaling.py

# CI perf-regression gate: rerun the kernel + delta benches at the
# committed baseline's scales, compare work.* counters exactly and
# speedup floors within a tolerance band, write the JSON diff artifact
bench-gate:
	mkdir -p benchmarks/results
	$(PYTHON) tools/bench_gate.py \
		--out benchmarks/results/bench-gate-diff.json

# the golden lint snapshots must be regenerable bit-for-bit: rerun the
# regeneration and fail if anything under tests/golden drifts
golden-drift:
	REPRO_REGEN_GOLDEN=1 $(PYTHON) -m pytest -q tests/test_lint_golden.py
	git diff --quiet tests/golden || ( \
		echo "tests/golden drifted from the committed snapshots:"; \
		git --no-pager diff --stat tests/golden; exit 1 )

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

check:
	$(PYTHON) -m repro experiment table1

clean:
	rm -rf .pytest_cache src/repro.egg-info benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
