"""The automatic condition checker on custom programs (sections 3.3, 5.1).

Shows what the checker does with programs a user might actually write:

* proves Property 2 structurally for new linear/monotone recursions;
* finds concrete counterexamples for recursions that silently break
  under incremental evaluation (the bugs the paper says users introduce
  when rewriting programs by hand);
* emits the Z3 SMT-LIB script (Figure 4) so the verdict can be
  replayed under a real SMT solver.

Run:  python examples/condition_checking.py
"""

from repro import analyze, check_source, parse_program
from repro.checker import emit_property2_script

PROGRAMS = {
    # a discounted-reachability score: linear in the recursion -> passes
    "discounted-reach": """
        assume w >= 0.
        reach(X, v) :- X = 0, v = 1.
        reach(Y, sum[v1]) :- reach(X, v), edge(X, Y, w), v1 = 0.2 * v * w,
            {sum[dv] < 0.001}.
    """,
    # widest path (max-min capacity written as max of products) -> passes
    "widest-path": """
        assume c >= 0.
        assume c <= 1.
        wide(X, v) :- X = 0, v = 1.
        wide(Y, max[v1]) :- wide(X, v), edge(X, Y, c), v1 = v * c.
    """,
    # "add a bonus per hop" under sum: NOT additive -> correctly rejected
    "hop-bonus": """
        score(X, v) :- X = 0, v = 1.
        score(Y, sum[v1]) :- score(X, v), edge(X, Y, w), v1 = 0.5 * v + 0.1,
            {sum[dv] < 0.001}.
    """,
    # clipped propagation (a ReLU-style floor) under sum -> rejected
    "clipped-flow": """
        flow(X, v) :- X = 0, v = 1.
        flow(Y, sum[v1]) :- flow(X, v), edge(X, Y, w), v1 = relu(v - 0.5) * w,
            {sum[dv] < 0.001}.
    """,
    # mean aggregation: Property 1 itself fails -> rejected
    "average-depth": """
        depth(X, v) :- X = 0, v = 0.
        depth(Y, mean[v1]) :- depth(X, v), edge(X, Y, w), v1 = v + 1.
    """,
}


def main() -> None:
    for name, source in PROGRAMS.items():
        report = check_source(source, name=name)
        print(f"== {name} ==")
        print(" ", report.summary())
        if report.property2.counterexample:
            print("  counterexample:", report.property2.counterexample)
        if not report.property1.holds:
            print("  property 1 failed:", report.property1.detail)
        print()

    # emit the Figure-4 SMT-LIB script for the widest-path program
    analysis = analyze(parse_program(PROGRAMS["widest-path"], name="widest-path"))
    script = emit_property2_script(
        analysis.aggregate,
        analysis.fprime,
        analysis.recursion_var,
        analysis.domains,
        program_name="widest-path",
    )
    print("Z3 verification script for widest-path (run with: z3 file.smt2,")
    print("'unsat' certifies Property 2):\n")
    print(script)


if __name__ == "__main__":
    main()
