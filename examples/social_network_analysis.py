"""Social network analysis: the workloads that motivate the paper.

Runs the classic social-graph pipeline on a LiveJournal-like network --
connected components (who can reach whom), PageRank (influence), and
Adsorption (label propagation for recommendation, the YouTube use case
of the paper's Program 4) -- and compares PowerLog's unified engine
against the sync/async baselines on each.

Run:  python examples/social_network_analysis.py
"""

from repro import AsyncEngine, SyncEngine, UnifiedEngine, get_program
from repro.distributed import ClusterConfig
from repro.graphs import compute_stats, load_dataset


def analyse(program_name: str, graph, cluster) -> None:
    spec = get_program(program_name)
    plan = spec.plan(graph)
    print(f"\n== {spec.title} ==")
    engines = {
        "sync (BSP)": SyncEngine(plan, cluster),
        "async": AsyncEngine(plan, cluster),
        "unified sync-async": UnifiedEngine(plan, cluster),
    }
    results = {}
    for label, engine in engines.items():
        result = engine.run()
        results[label] = result
        print(
            f"  {label:20s} {result.simulated_seconds:7.3f}s simulated, "
            f"{result.counters.messages:6d} messages, stop={result.stop_reason}"
        )
    return results["unified sync-async"]


def main() -> None:
    graph = load_dataset("livej")
    cluster = ClusterConfig(num_workers=16)
    stats = compute_stats(graph)
    print(f"network: {graph}")
    print(f"  avg degree {stats.avg_degree:.1f}, max {stats.max_out_degree}, "
          f"BFS depth from 0: {stats.eccentricity_from_0}")

    cc = analyse("cc", graph, cluster)
    components = set(cc.values.values())
    print(f"  -> {len(components)} connected component(s)")

    pagerank = analyse("pagerank", graph, cluster)
    top = sorted(pagerank.values.items(), key=lambda kv: -kv[1])[:5]
    print("  -> top-5 vertices by rank:")
    for vertex, score in top:
        print(f"       vertex {vertex}: {score:.3f}")

    adsorption = analyse("adsorption", graph, cluster)
    top = sorted(adsorption.values.items(), key=lambda kv: -kv[1])[:3]
    print("  -> strongest label mass:", [v for v, _ in top])


if __name__ == "__main__":
    main()
