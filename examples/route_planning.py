"""Route planning on a road-like network: min-family programs end to end.

High-diameter, low-skew networks (like the Arabic-2005 regime) are where
the sync/async tradeoff is sharpest for shortest-path workloads.  This
example builds a grid-plus-shortcuts road network, runs SSSP under every
execution mode (including SociaLite-style delta stepping), and then uses
the pair-key APSP program on a small district.

Run:  python examples/route_planning.py
"""

from repro import AsyncEngine, SyncEngine, UnifiedEngine, get_program
from repro.distributed import ClusterConfig
from repro.graphs import Graph, grid_graph, rmat
from repro.graphs.graph import deduplicate_edges


def road_network(rows: int = 25, cols: int = 40, seed: int = 5) -> Graph:
    """A directed grid with a few highways (long-range shortcuts)."""
    import numpy as np

    base = grid_graph(rows, cols, name="roads")
    rng = np.random.default_rng(seed)
    n = base.num_vertices
    highways = [
        (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(30)
    ]
    edges = deduplicate_edges(base.edges + highways)
    return Graph(n, edges, name="roads", seed=seed)


def main() -> None:
    graph = road_network()
    cluster = ClusterConfig(num_workers=16)
    spec = get_program("sssp")
    plan = spec.plan(graph)
    print(f"road network: {graph}")

    modes = {
        "sync (BSP)": SyncEngine(plan, cluster),
        "sync + delta-stepping": SyncEngine(plan, cluster, delta_stepping=True),
        "async": AsyncEngine(plan, cluster),
        "unified sync-async": UnifiedEngine(plan, cluster),
    }
    baseline = None
    for label, engine in modes.items():
        result = engine.run()
        if baseline is None:
            baseline = result.values
        assert result.values == baseline, "modes disagree!"
        print(
            f"  {label:22s} {result.simulated_seconds:7.3f}s simulated, "
            f"{result.counters.fprime_applications:7d} relaxations, "
            f"{result.counters.iterations:4d} rounds"
        )
    farthest = max(baseline, key=baseline.get)
    print(f"  farthest reachable intersection: {farthest} "
          f"(distance {baseline[farthest]})")

    # all-pairs distances for a small district (pair-key program)
    district = rmat(15, 60, seed=9, name="district")
    apsp = get_program("apsp")
    result = UnifiedEngine(apsp.plan(district), cluster).run()
    reachable_pairs = len(result.values)
    print(f"\ndistrict APSP: {reachable_pairs} reachable pairs "
          f"of {district.num_vertices}^2")
    diameter_pair = max(result.values, key=result.values.get)
    print(f"  weighted diameter: {result.values[diameter_pair]} "
          f"between {diameter_pair}")


if __name__ == "__main__":
    main()
