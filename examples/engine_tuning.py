"""Tuning the unified sync-async engine (section 5.3).

Sweeps the engine's control knobs on one workload so the tradeoffs the
paper describes are visible in the simulator's measured counters:

* message buffer size ``beta``: eager messaging (high asynchrony, many
  small messages) vs full batching (sync-like);
* the adaptive rule, which should land near the best fixed beta without
  tuning;
* the section-5.4 importance threshold for sum programs;
* cluster size scaling.

Run:  python examples/engine_tuning.py
"""

from repro import UnifiedEngine, get_program
from repro.distributed import ClusterConfig
from repro.distributed.buffers import BufferPolicy
from repro.graphs import load_dataset


def sweep_buffers(plan, cluster) -> None:
    print("\n-- message buffer sweep (PageRank / arabic) --")
    print(f"{'policy':>12s} {'sim time':>9s} {'messages':>9s} {'F-apps':>10s}")
    for beta in (4, 16, 64, 256, 1024):
        policy = BufferPolicy(initial_beta=beta, adaptive=False)
        result = UnifiedEngine(plan, cluster, buffer_policy=policy).run()
        print(
            f"{'beta=' + str(beta):>12s} {result.simulated_seconds:8.3f}s "
            f"{result.counters.messages:9d} {result.counters.fprime_applications:10d}"
        )
    result = UnifiedEngine(plan, cluster).run()
    print(
        f"{'adaptive':>12s} {result.simulated_seconds:8.3f}s "
        f"{result.counters.messages:9d} {result.counters.fprime_applications:10d}"
    )


def sweep_threshold(plan, cluster) -> None:
    print("\n-- importance threshold sweep (section 5.4) --")
    print(f"{'threshold':>12s} {'sim time':>9s} {'F-apps':>10s}")
    for threshold in (0.0, 1e-7, 1e-6, 1e-5):
        result = UnifiedEngine(
            plan, cluster, importance_threshold=threshold
        ).run()
        print(
            f"{threshold:12.0e} {result.simulated_seconds:8.3f}s "
            f"{result.counters.fprime_applications:10d}"
        )


def sweep_cluster_size(spec, graph) -> None:
    print("\n-- cluster size scaling --")
    print(f"{'workers':>8s} {'sim time':>9s}")
    for workers in (2, 4, 8, 16, 32):
        cluster = ClusterConfig(num_workers=workers)
        plan = spec.plan(graph)
        result = UnifiedEngine(plan, cluster).run()
        print(f"{workers:8d} {result.simulated_seconds:8.3f}s")


def main() -> None:
    spec = get_program("pagerank")
    graph = load_dataset("arabic")
    cluster = ClusterConfig(num_workers=16)
    plan = spec.plan(graph)
    print(f"workload: PageRank on {graph}")

    sweep_buffers(plan, cluster)
    sweep_threshold(plan, cluster)
    sweep_cluster_size(spec, graph)


if __name__ == "__main__":
    main()
