"""Fault tolerance: checkpoint, crash, resume (paper Figure 6).

PowerLog checkpoints intermediates to HDFS; the reproduction checkpoints
every worker's MonoTable shard to local files.  This example runs SSSP
with per-superstep checkpoints, kills the run midway (a hard iteration
cap plays the crash), then restarts from the checkpoint and shows the
resumed run finishing with the exact fixpoint while redoing only the
remaining work.

Run:  python examples/fault_tolerance.py
"""

import tempfile

from repro import SyncEngine, TerminationSpec, get_program
from repro.distributed import Checkpointer, ClusterConfig
from repro.engine import MRAEvaluator
from repro.graphs import load_dataset


def main() -> None:
    spec = get_program("sssp")
    graph = load_dataset("arabic")  # high diameter: many supersteps
    plan = spec.plan(graph)
    cluster = ClusterConfig(num_workers=8)
    expected = MRAEvaluator(plan).run().values
    print(f"workload: SSSP on {graph} ({cluster.num_workers} workers)")

    with tempfile.TemporaryDirectory() as directory:
        checkpointer = Checkpointer(directory)

        # a full run, for reference
        full = SyncEngine(plan, cluster).run()
        print(f"\nuninterrupted run : {full.counters.iterations:3d} supersteps, "
              f"{full.counters.fprime_applications} F' applications")

        # run with checkpoints, "crash" after 5 supersteps
        crashed = SyncEngine(
            plan,
            cluster,
            termination=TerminationSpec(max_iterations=5),
            checkpointer=checkpointer,
            checkpoint_every=1,
            run_name="sssp-demo",
        ).run()
        reached = sum(1 for v in crashed.values.values() if v is not None)
        print(f"crashed at step 5 : {reached} vertices reached, "
              f"results incomplete: {crashed.values != expected}")

        # recover: a fresh engine resumes from the checkpoint
        recovered = SyncEngine(
            plan,
            cluster,
            checkpointer=checkpointer,
            run_name="sssp-demo",
        ).run()
        print(f"recovered run     : {recovered.counters.iterations:3d} supersteps, "
              f"{recovered.counters.fprime_applications} F' applications")
        assert recovered.values == expected
        saved = 1 - recovered.counters.fprime_applications / full.counters.fprime_applications
        print(f"result exact; {saved:.0%} of the work was recovered "
              f"from the checkpoint instead of redone")


if __name__ == "__main__":
    main()
