"""Quickstart: write a recursive aggregate program, check it, run it.

The complete PowerLog workflow of the paper's Figure 2 in one script:

1. write a Datalog program with an aggregate in its recursion;
2. the automatic condition checker verifies the MRA conditions
   (Theorem 1) -- here structurally, with a proof;
3. the program runs with MRA evaluation on the unified sync-async
   engine of the simulated cluster;
4. a program that fails the check (GCN-Forward) is routed to naive
   evaluation instead.

Run:  python examples/quickstart.py
"""

from repro import PowerLog, check_source, get_program
from repro.graphs import load_dataset


def main() -> None:
    # -- 1. a recursive aggregate program: shortest paths from vertex 0 ----
    sssp = """
    sssp(X, d) :- X = 0, d = 0.
    sssp(Y, min[dy]) :- sssp(X, dx), edge(X, Y, dxy), dy = dx + dxy.
    """

    # -- 2. the automatic condition check ---------------------------------
    report = check_source(sssp, name="sssp")
    print("condition check:", report.summary())
    print("  property 1:", report.property1.detail)
    print("  property 2:", report.property2.detail)
    assert report.mra_satisfiable

    # -- 3. run it through the full PowerLog pipeline ----------------------
    system = PowerLog()
    spec = get_program("sssp")  # the library version of the same program
    graph = load_dataset("livej")
    decision = system.decide(spec)
    print("\nengine decision:", decision.summary())

    result = system.run(spec, graph)
    print(f"\nran on {graph}: {len(result.values)} shortest distances")
    print(f"  simulated cluster time: {result.simulated_seconds:.3f}s")
    print(f"  F' applications: {result.counters.fprime_applications}")
    sample = sorted(result.values.items())[:5]
    print("  first distances:", dict(sample))

    # -- 4. a program that fails the check falls back to naive -------------
    gcn = get_program("gcn")
    gcn_decision = system.decide(gcn)
    print("\nGCN-Forward:", gcn_decision.summary())
    cex = gcn_decision.report.property2.counterexample
    print("  counterexample:", cex)


if __name__ == "__main__":
    main()
