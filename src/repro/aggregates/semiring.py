"""First-class semiring algebra for the aggregate core.

The MRA machinery of the paper is stated for min/max/sum-style monoid
aggregates, but the same fixpoint iteration works over any commutative
semiring ``(D, ⊕, ⊗, 0̄, 1̄)``: the group-by aggregate ``G`` is the
``⊕``-fold, while ``F'`` carries the (per-program) ``⊗`` -- a shift
``dx + w`` is the tropical/arctic ``⊗``, a scale ``v * p`` is the
counting/Viterbi ``⊗``, and the identity ``ry = rx`` is compatible with
the boolean ``⊗``.  A :class:`Semiring` therefore declares the algebra
*the aggregate folds over* plus the law flags every other layer
consumes:

* ``plus_idempotent`` (``x ⊕ x = x``) -- unlocks the MonoTable's
  no-improvement pruning and the delta layer's rederive repair;
* ``naturally_ordered`` (``a ≤ b ⟺ ∃c. a ⊕ c = b``) -- makes the
  ``⊕``-fold a *selection*, the shape Theorem 1's Property 2 needs for
  monotone ``F'``;
* ``times_monotone`` (``a ≤ b ⟹ a ⊗ c ≤ b ⊗ c``) -- the obligation
  the structural prescreen discharges for shift/scale ``F'`` bodies;
* ``plus_invertible`` (``⊕`` embeds in a group) -- unlocks pairwise
  ``G⁻`` subtraction and the delta layer's insert-only frontier path.

Law flags are *declared* here and *machine-checked* over ``samples`` by
the property suite in ``tests/test_semiring_laws.py``, so an instance
cannot ship with lying flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "KTuple",
    "Semiring",
    "TROPICAL",
    "ARCTIC",
    "COUNTING",
    "BOOLEAN",
    "VITERBI",
    "KTROPICAL",
    "REGISTERED_SEMIRINGS",
    "get_semiring",
    "register_semiring",
]

#: arity of the k-tropical semiring (top-k shortest paths keeps the k
#: smallest *distinct* lengths; distinctness is what makes ``⊕``
#: idempotent -- a multiset merge would break ``x ⊕ x = x``).
K_DEFAULT = 3


class KTuple:
    """A value of the k-tropical semiring: ≤k distinct lengths, ascending.

    ``⊕`` is merge-then-truncate over *distinct* values; ``⊗`` against a
    scalar edge weight is elementwise shift (so compiled ``F'`` bodies of
    the form ``dx + w`` work unchanged via :meth:`__add__`).  Instances
    are immutable, hashable and compare structurally, which the delta
    layer's plan diffing and the MonoTable's change test rely on.
    """

    __slots__ = ("values",)

    k = K_DEFAULT

    def __init__(self, values=()):
        vals = []
        for v in values:
            if isinstance(v, KTuple):
                vals.extend(v.values)
            else:
                vals.append(float(v))
        object.__setattr__(self, "values", tuple(sorted(set(vals))[: self.k]))

    def __setattr__(self, name, value):
        raise AttributeError("KTuple is immutable")

    # -- semiring operations -------------------------------------------------
    def merge(self, other: "KTuple") -> "KTuple":
        """``⊕``: keep the k smallest distinct values of the union."""
        if not other.values:
            return self
        if not self.values:
            return other
        merged = KTuple(self.values + other.values)
        return merged

    def shift(self, weight) -> "KTuple":
        """``⊗`` against a scalar: add the weight to every kept length."""
        return KTuple(tuple(v + float(weight) for v in self.values))

    # -- operator sugar so compiled F' lambdas (``dx + w``) work unchanged ---
    def __add__(self, other):
        if isinstance(other, KTuple):
            # ``a ⊗ b`` over two k-tuples: all pairwise sums, truncated.
            return KTuple(tuple(x + y for x in self.values for y in other.values))
        return self.shift(other)

    def __radd__(self, other):
        return self.shift(other)

    # -- structural protocol -------------------------------------------------
    def __eq__(self, other):
        if isinstance(other, KTuple):
            return self.values == other.values
        return NotImplemented

    def __ne__(self, other):
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    # lexicographic comparison on the sorted values IS the k-tropical
    # natural order; the async engines sort pending keys by value to
    # prioritise promising work, so the carrier must be orderable.
    def __lt__(self, other):
        if isinstance(other, KTuple):
            return self.values < other.values
        return NotImplemented

    def __le__(self, other):
        if isinstance(other, KTuple):
            return self.values <= other.values
        return NotImplemented

    def __gt__(self, other):
        if isinstance(other, KTuple):
            return self.values > other.values
        return NotImplemented

    def __ge__(self, other):
        if isinstance(other, KTuple):
            return self.values >= other.values
        return NotImplemented

    def __hash__(self):
        return hash(("KTuple", self.values))

    def __len__(self):
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __repr__(self):
        inner = ", ".join(f"{v:g}" for v in self.values)
        return f"ktup({inner})"

    def magnitude(self) -> float:
        """Deterministic non-negative size for ``|ΔX|`` accounting."""
        return float(sum(abs(v) for v in self.values if v == v))


def _ktuple_change(new, old) -> float:
    """``|new - old|`` analogue for k-tuples (both are KTuples)."""
    return abs(new.magnitude() - old.magnitude()) or float(
        len(set(new.values) ^ set(old.values))
    )


@dataclass(frozen=True)
class Semiring:
    """A declared semiring ``(⊕, ⊗, 0̄, 1̄)`` with law flags.

    ``plus`` is the aggregate's binary combine; ``times`` is the
    reference ``⊗`` the program's ``F'`` is expected to be compatible
    with (the analysis layer classifies *which* ``⊗`` a program actually
    uses).  The flags are proof obligations, not hints: the property
    suite checks each one over ``samples``.
    """

    name: str
    plus: Callable[[object, object], object]
    times: Callable[[object, object], object]
    zero: object
    one: object
    #: ``x ⊕ x = x`` -- min/max-style selection.
    plus_idempotent: bool = False
    plus_commutative: bool = True
    plus_associative: bool = True
    #: ``a ≤ b ⟺ ∃c. a ⊕ c = b`` -- the fold is a selection over a
    #: total natural order (Theorem 1's selective obligation).
    naturally_ordered: bool = False
    #: ``a ≤ b ⟹ a ⊗ c ≤ b ⊗ c`` in the natural order.
    times_monotone: bool = True
    #: ``⊕`` embeds in a group, so ``G⁻`` can be pairwise subtraction.
    plus_invertible: bool = False
    #: vectorization hint for the numpy kernel: which float64 ufunc
    #: implements ``⊕`` (``"min"``/``"max"``/``"sum"``); ``None`` means
    #: there is no vectorized form and kernels take scalar paths.
    fold_mode: Optional[str] = None
    #: carrier values are plain numbers (float-coercible); numeric
    #: semirings unlock float64 arrays and Meyer-Sanders value buckets.
    numeric_values: bool = True
    #: ``|v|`` for termination/metrics accounting; ``None`` means
    #: ``abs(float(v))`` (the historical numeric behaviour, kept
    #: bit-identical for the existing programs).
    magnitude: Optional[Callable[[object], float]] = None
    #: ``|new ⊖ old|`` for idempotent accumulate accounting; ``None``
    #: means ``abs(new - old)``.
    change: Optional[Callable[[object, object], float]] = None
    #: carrier values the law property suite quantifies over.
    samples: tuple = ()

    def value_magnitude(self, value) -> float:
        """Magnitude of a carrier value (0.0 for ``None``)."""
        if value is None:
            return 0.0
        if self.magnitude is not None:
            return self.magnitude(value)
        try:
            return abs(float(value))
        except OverflowError:
            # exact python-int carriers (counting ⊕ on deep DAGs) can
            # outgrow float64; any eps test treats the delta as a change
            return float("inf")

    def change_magnitude(self, new, old) -> float:
        """Magnitude of an accumulator moving from ``old`` to ``new``."""
        if self.change is not None:
            return self.change(new, old)
        return abs(new - old)

    def law_summary(self) -> str:
        """Compact law string for CLI tables, e.g. ``⊕-idem,ordered``."""
        laws = []
        if self.plus_idempotent:
            laws.append("⊕-idem")
        if self.naturally_ordered:
            laws.append("ordered")
        if self.plus_invertible:
            laws.append("⊕-inv")
        if self.times_monotone:
            laws.append("⊗-mono")
        return ",".join(laws) if laws else "-"

    def to_dict(self) -> dict:
        """JSON form for lint reports (flags only, no callables)."""
        return {
            "name": self.name,
            "plus_idempotent": self.plus_idempotent,
            "plus_commutative": self.plus_commutative,
            "plus_associative": self.plus_associative,
            "naturally_ordered": self.naturally_ordered,
            "times_monotone": self.times_monotone,
            "plus_invertible": self.plus_invertible,
            "numeric_values": self.numeric_values,
        }

    def __repr__(self):
        return f"Semiring({self.name})"


_INF = float("inf")

#: (min, +, ∞, 0) -- shortest paths; ``sssp``'s algebra.
TROPICAL = Semiring(
    name="tropical",
    plus=min,
    times=lambda a, b: a + b,
    zero=_INF,
    one=0,
    plus_idempotent=True,
    naturally_ordered=True,
    fold_mode="min",
    samples=(0, 1, 2, 5, _INF),
)

#: (max, +, −∞, 0) -- longest/critical paths.
ARCTIC = Semiring(
    name="arctic",
    plus=max,
    times=lambda a, b: a + b,
    zero=-_INF,
    one=0,
    plus_idempotent=True,
    naturally_ordered=True,
    fold_mode="max",
    samples=(0, 1, 2, 5, -_INF),
)

#: (+, ×, 0, 1) over the naturals -- path counting; ``sum``'s algebra.
COUNTING = Semiring(
    name="counting",
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    zero=0,
    one=1,
    plus_invertible=True,
    naturally_ordered=True,
    fold_mode="sum",
    samples=(0, 1, 2, 3, 7),
)

#: ({0,1}, or, and, 0, 1) -- reachability / why-provenance support.
#: ``or`` is ``max`` restricted to {0,1} so the numpy kernel's ``max``
#: fold vectorizes it unchanged.
BOOLEAN = Semiring(
    name="boolean",
    plus=max,
    times=min,
    zero=0,
    one=1,
    plus_idempotent=True,
    naturally_ordered=True,
    fold_mode="max",
    samples=(0, 1),
)

#: ([0,1], max, ×, 0, 1) -- most-probable path (Viterbi).
VITERBI = Semiring(
    name="viterbi",
    plus=max,
    times=lambda a, b: a * b,
    zero=0.0,
    one=1.0,
    plus_idempotent=True,
    naturally_ordered=True,
    fold_mode="max",
    samples=(0.0, 0.25, 0.5, 1.0),
)

#: k smallest distinct path lengths -- top-k shortest paths.  Values are
#: :class:`KTuple`, so ``numeric_values`` is off: only object-capable
#: kernels (python, numpy's object mode) may execute it.
KTROPICAL = Semiring(
    name="k-tropical",
    plus=lambda a, b: a.merge(b),
    times=lambda a, b: a + b,
    zero=KTuple(()),
    one=KTuple((0,)),
    plus_idempotent=True,
    naturally_ordered=True,
    numeric_values=False,
    magnitude=lambda v: v.magnitude(),
    change=_ktuple_change,
    samples=(
        KTuple(()),
        KTuple((0,)),
        KTuple((1, 3)),
        KTuple((2, 4, 9)),
        KTuple((1, 2, 3)),
    ),
)

REGISTERED_SEMIRINGS: dict[str, Semiring] = {}


def register_semiring(semiring: Semiring) -> Semiring:
    """Register an instance for lookup and for the law property suite."""
    if semiring.name in REGISTERED_SEMIRINGS:
        raise ValueError(f"semiring {semiring.name!r} already registered")
    REGISTERED_SEMIRINGS[semiring.name] = semiring
    return semiring


for _s in (TROPICAL, ARCTIC, COUNTING, BOOLEAN, VITERBI, KTROPICAL):
    register_semiring(_s)


def get_semiring(name: str) -> Semiring:
    """Look up a registered semiring by name."""
    try:
        return REGISTERED_SEMIRINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown semiring {name!r}; expected one of "
            f"{sorted(REGISTERED_SEMIRINGS)}"
        ) from None
