"""The built-in aggregate operators (paper section 5.1, generalized).

The paper predefines ``min``/``max``/``sum``/``count``/``mean``; here
each of the semiring-foldable ones is built *from* its declared algebra
(:mod:`repro.aggregates.semiring`) so the law flags live in one place:

===========  ============  =====================================
aggregate    semiring      opens the workload family
===========  ============  =====================================
``min``      tropical      shortest paths (sssp, reachable_cost)
``max``      arctic        longest/critical paths, Viterbi
``sum``      counting      page rank, path counting
``count``    counting      degree/population counts
``or``       boolean       why-provenance reachability
``topk``     k-tropical    top-k shortest paths
``mean``     --            (not a semiring ``⊕``; naive only)
===========  ============  =====================================
"""

from __future__ import annotations

from typing import Optional

from repro.aggregates.base import Aggregate, AggregateKind
from repro.aggregates.semiring import (
    ARCTIC,
    BOOLEAN,
    COUNTING,
    KTROPICAL,
    TROPICAL,
    VITERBI,
)


def _min_subtract(new, old) -> Optional[object]:
    """``G⁻`` for min: the paper keeps ``min`` itself (section 3.3).

    ``ΔX¹ = min(X¹, X⁰)``; when the old value is already at least as
    small the delta carries no information and is dropped.
    """
    if old is None or new < old:
        return new
    return None


def _max_subtract(new, old) -> Optional[object]:
    if old is None or new > old:
        return new
    return None


def _sum_subtract(new, old) -> Optional[object]:
    """``G⁻`` for sum/count: pairwise subtraction needs ``⊕`` invertible
    (section 3.3)."""
    if old is None:
        return new
    delta = new - old
    return delta if delta != 0 else None


def _improve_subtract(new, old) -> Optional[object]:
    """``G⁻`` for idempotent non-numeric ``⊕``: the improved value itself.

    Like ``min``'s, but comparison-free -- ``new`` already absorbs
    ``old`` (it was produced by folding ``old`` in), so any structural
    change is an improvement worth propagating.
    """
    if old is None or new != old:
        return new
    return None


MIN = Aggregate.from_semiring("min", TROPICAL, _min_subtract)

MAX = Aggregate.from_semiring("max", ARCTIC, _max_subtract)

#: ``sum`` folds the counting semiring's ``⊕`` but ranges over all
#: numbers (pagerank mixes signs), so invertibility is the load-bearing
#: law rather than the natural order.
SUM = Aggregate.from_semiring("sum", COUNTING, _sum_subtract)

#: ``count`` shares sum's algebra: the paper's runtime semantics is
#: ``return sum(r, count[d])`` -- counting is summation of contributions.
COUNT = Aggregate.from_semiring("count", COUNTING, _sum_subtract)

#: boolean reachability: ``or`` is ``max`` restricted to {0, 1}, so every
#: float64 kernel path (including the vectorized ``max`` fold) applies.
OR = Aggregate.from_semiring("or", BOOLEAN, _max_subtract)

#: most-probable-path fold over [0, 1]; programs combine it with a
#: ``v * p`` scale body (the Viterbi ``⊗``).
BEST = Aggregate.from_semiring("best", VITERBI, _max_subtract)

#: top-k shortest paths: values are ``KTuple``s, the only non-numeric
#: carrier; kernels without object support refuse its plans.
TOPK = Aggregate.from_semiring("topk", KTROPICAL, _improve_subtract)

#: ``mean`` as the binary operator the paper defines in Z3; it is neither
#: commutative-associative as a fold nor decomposable -- there is no
#: semiring whose ``⊕`` it is -- so it fails the Property-1 check and is
#: never executed with MRA evaluation.
MEAN = Aggregate(
    name="mean",
    kind=AggregateKind.OTHER,
    identity=None,
    combine=lambda a, b: (a + b) / 2,
    subtract=lambda new, old: None,
    is_commutative=True,
    is_associative=False,
)

BUILTIN_AGGREGATES: dict[str, Aggregate] = {
    agg.name: agg for agg in (MIN, MAX, SUM, COUNT, OR, BEST, TOPK, MEAN)
}


def get_aggregate(name: str) -> Aggregate:
    """Look up a built-in aggregate by name (raises ``KeyError`` if unknown)."""
    try:
        return BUILTIN_AGGREGATES[name]
    except KeyError:
        raise KeyError(
            f"unknown aggregate {name!r}; expected one of "
            f"{sorted(BUILTIN_AGGREGATES)}"
        ) from None
