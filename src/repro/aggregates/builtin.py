"""The five built-in aggregate operators of the paper (section 5.1)."""

from __future__ import annotations

import math
from typing import Optional

from repro.aggregates.base import Aggregate, AggregateKind


def _min_subtract(new, old) -> Optional[object]:
    """``G⁻`` for min: the paper keeps ``min`` itself (section 3.3).

    ``ΔX¹ = min(X¹, X⁰)``; when the old value is already at least as
    small the delta carries no information and is dropped.
    """
    if old is None or new < old:
        return new
    return None


def _max_subtract(new, old) -> Optional[object]:
    if old is None or new > old:
        return new
    return None


def _sum_subtract(new, old) -> Optional[object]:
    """``G⁻`` for sum/count: pairwise subtraction (section 3.3)."""
    if old is None:
        return new
    delta = new - old
    return delta if delta != 0 else None


MIN = Aggregate(
    name="min",
    kind=AggregateKind.SELECTIVE,
    identity=math.inf,
    combine=min,
    subtract=_min_subtract,
    is_idempotent=True,
)

MAX = Aggregate(
    name="max",
    kind=AggregateKind.SELECTIVE,
    identity=-math.inf,
    combine=max,
    subtract=_max_subtract,
    is_idempotent=True,
)

SUM = Aggregate(
    name="sum",
    kind=AggregateKind.ADDITIVE,
    identity=0,
    combine=lambda a, b: a + b,
    subtract=_sum_subtract,
)

#: ``count`` shares sum's algebra: the paper's runtime semantics is
#: ``return sum(r, count[d])`` -- counting is summation of contributions.
COUNT = Aggregate(
    name="count",
    kind=AggregateKind.ADDITIVE,
    identity=0,
    combine=lambda a, b: a + b,
    subtract=_sum_subtract,
)

#: ``mean`` as the binary operator the paper defines in Z3; it is neither
#: commutative-associative as a fold nor decomposable, so it fails the
#: Property-1 check and is never executed with MRA evaluation.
MEAN = Aggregate(
    name="mean",
    kind=AggregateKind.OTHER,
    identity=None,
    combine=lambda a, b: (a + b) / 2,
    subtract=lambda new, old: None,
    is_commutative=True,
    is_associative=False,
)

BUILTIN_AGGREGATES: dict[str, Aggregate] = {
    agg.name: agg for agg in (MIN, MAX, SUM, COUNT, MEAN)
}


def get_aggregate(name: str) -> Aggregate:
    """Look up a built-in aggregate by name (raises ``KeyError`` if unknown)."""
    try:
        return BUILTIN_AGGREGATES[name]
    except KeyError:
        raise KeyError(
            f"unknown aggregate {name!r}; expected one of "
            f"{sorted(BUILTIN_AGGREGATES)}"
        ) from None
