"""The aggregate operator protocol.

An :class:`Aggregate` is the operational face of a declared
:class:`~repro.aggregates.semiring.Semiring`: the semiring carries the
algebra ``(⊕, ⊗, 0̄, 1̄)`` and its law flags, the aggregate adds the
paper-facing pieces (``G⁻`` subtraction, the checker ``kind``) that the
engines consume.  ``min``/``max``/``sum`` are instances of the tropical,
arctic and counting semirings rather than special cases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.aggregates.semiring import Semiring


class AggregateKind(enum.Enum):
    """Algebraic family of an aggregate, selecting checker obligations.

    The kind is derivable from semiring law flags:

    * ``SELECTIVE`` (``min``, ``max``, ``or``, ``topk``): ``⊕`` is
      idempotent over a natural order, so Property 2 of Theorem 1 holds
      iff ``F'`` is monotone non-decreasing (it distributes over the
      selection).
    * ``ADDITIVE`` (``sum``, ``count``): ``⊕`` is invertible, and
      Property 2 holds iff ``F'`` is additive (linear homogeneous) in
      the recursion variable.
    * ``OTHER`` (``mean``): the operator is not the ``⊕`` of any
      semiring (associativity already fails), so Property 1 fails and
      such programs fall back to naive evaluation.
    """

    ADDITIVE = "additive"
    SELECTIVE = "selective"
    OTHER = "other"


#: distinct from ``None`` so identity-free aggregates (``mean``) can
#: still fold lazily without materializing their input twice.
_EMPTY = object()


@dataclass(frozen=True)
class Aggregate:
    """A group-by aggregate operator ``G``.

    ``combine`` is the binary ``g`` of the paper's Z3 encoding (Figure 4)
    -- the semiring's ``⊕`` when one is declared; n-ary aggregation is
    derived from it by left folding, which is valid exactly when the
    operator is associative -- the checker verifies this before any
    engine relies on it.
    """

    name: str
    kind: AggregateKind
    identity: Optional[object]
    combine: Callable[[object, object], object]
    #: ``G⁻(new, old)``: the delta that, combined with ``old``, yields
    #: ``new``.  Returns ``None`` when no delta is needed (already equal).
    subtract: Callable[[object, object], Optional[object]]
    is_commutative: bool = True
    is_associative: bool = True
    #: Idempotent aggregates (min/max) allow the MonoTable engines to
    #: prune propagation of deltas that do not improve the accumulator.
    is_idempotent: bool = False
    #: the declared algebra this aggregate is the ``⊕``-fold of;
    #: ``None`` for operators (``mean``) that are not a semiring ``⊕``.
    semiring: Optional[Semiring] = field(default=None, repr=False)

    @classmethod
    def from_semiring(
        cls,
        name: str,
        semiring: Semiring,
        subtract: Callable[[object, object], Optional[object]],
        identity: Optional[object] = None,
    ) -> "Aggregate":
        """Build an aggregate as the ``⊕``-fold of a declared semiring.

        The checker ``kind`` is *derived* from the law flags: idempotent
        ``⊕`` over a natural order is selective, invertible ``⊕`` is
        additive.
        """
        if semiring.plus_idempotent and semiring.naturally_ordered:
            kind = AggregateKind.SELECTIVE
        elif semiring.plus_invertible:
            kind = AggregateKind.ADDITIVE
        else:
            kind = AggregateKind.OTHER
        return cls(
            name=name,
            kind=kind,
            identity=semiring.zero if identity is None else identity,
            combine=semiring.plus,
            subtract=subtract,
            is_commutative=semiring.plus_commutative,
            is_associative=semiring.plus_associative,
            is_idempotent=semiring.plus_idempotent,
            semiring=semiring,
        )

    # -- semiring-law views (legacy flags remain the storage) ---------------
    @property
    def plus_idempotent(self) -> bool:
        """``x ⊕ x = x`` -- the flag the frontier/rederive gates read."""
        return self.is_idempotent

    @property
    def plus_invertible(self) -> bool:
        """``⊕`` embeds in a group, enabling pairwise ``G⁻``."""
        if self.semiring is not None:
            return self.semiring.plus_invertible
        return self.kind is AggregateKind.ADDITIVE

    @property
    def naturally_ordered(self) -> bool:
        if self.semiring is not None:
            return self.semiring.naturally_ordered
        return self.kind is AggregateKind.SELECTIVE

    @property
    def numeric_values(self) -> bool:
        """Carrier values are float-coercible (float64 kernel paths ok)."""
        return self.semiring is None or self.semiring.numeric_values

    @property
    def fold_mode(self) -> Optional[str]:
        """Vectorization hint: the float64 ufunc implementing ``⊕``."""
        if self.semiring is not None:
            return self.semiring.fold_mode
        return None

    def combine_many(self, values: Iterable[object]):
        """Left-fold ``combine`` over ``values`` in one pass.

        Starts from the first value (by the identity law this matches
        starting from the identity, and it is the only sound start for
        identity-free operators like ``mean``); an empty input yields
        the identity, or raises for identity-free aggregates.
        """
        result = _EMPTY
        for value in values:
            result = value if result is _EMPTY else self.combine(result, value)
        if result is _EMPTY:
            if self.identity is None:
                raise ValueError(f"aggregate {self.name} over empty input")
            return self.identity
        return result

    def improves(self, current: object, delta: object) -> bool:
        """Would combining ``delta`` into ``current`` change it?"""
        if current is None:
            return True
        return self.combine(current, delta) != current

    def delta_magnitude(self, delta: object) -> float:
        """Contribution of a delta to the ``|ΔX| < eps`` termination test."""
        if delta is None:
            return 0.0
        if self.semiring is not None:
            return self.semiring.value_magnitude(delta)
        try:
            return abs(float(delta))
        except OverflowError:
            return float("inf")

    def change_magnitude(self, new, old, tmp) -> float:
        """Magnitude of an accumulator update, for termination accounting.

        For idempotent ``⊕`` the accumulator moved from ``old`` to
        ``new`` and the distance between them is the honest measure; for
        invertible ``⊕`` the fetched ``tmp`` *is* the change.  Numeric
        semirings keep the historical ``abs(new - old)`` float
        arithmetic bit-identical.
        """
        if self.is_idempotent:
            if self.semiring is not None and self.semiring.change is not None:
                return self.semiring.change_magnitude(new, old)
            return abs(new - old)
        return self.delta_magnitude(tmp)

    def __repr__(self):
        return f"Aggregate({self.name})"
