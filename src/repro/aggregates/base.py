"""The aggregate operator protocol."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Optional


class AggregateKind(enum.Enum):
    """Algebraic family of an aggregate, selecting checker obligations.

    * ``ADDITIVE`` (``sum``, ``count``): Property 2 of Theorem 1 holds iff
      ``F'`` is additive (linear homogeneous) in the recursion variable.
    * ``SELECTIVE`` (``min``, ``max``): Property 2 holds iff ``F'`` is
      monotone non-decreasing in the recursion variable, so that it
      distributes over the selection.
    * ``OTHER`` (``mean``): no structural shortcut; Property 1 itself
      already fails, so such programs fall back to naive evaluation.
    """

    ADDITIVE = "additive"
    SELECTIVE = "selective"
    OTHER = "other"


@dataclass(frozen=True)
class Aggregate:
    """A group-by aggregate operator ``G``.

    ``combine`` is the binary ``g`` of the paper's Z3 encoding (Figure 4);
    n-ary aggregation is derived from it by left folding, which is valid
    exactly when the operator is associative -- the checker verifies this
    before any engine relies on it.
    """

    name: str
    kind: AggregateKind
    identity: Optional[object]
    combine: Callable[[object, object], object]
    #: ``G⁻(new, old)``: the delta that, combined with ``old``, yields
    #: ``new``.  Returns ``None`` when no delta is needed (already equal).
    subtract: Callable[[object, object], Optional[object]]
    is_commutative: bool = True
    is_associative: bool = True
    #: Idempotent aggregates (min/max) allow the MonoTable engines to
    #: prune propagation of deltas that do not improve the accumulator.
    is_idempotent: bool = False

    def combine_many(self, values: Iterable[object]):
        """Fold ``combine`` over ``values``, starting from the identity."""
        result = self.identity
        for value in values:
            result = value if result is None else self.combine(result, value)
        if result is None:
            raise ValueError(f"aggregate {self.name} over empty input")
        return result

    def improves(self, current: object, delta: object) -> bool:
        """Would combining ``delta`` into ``current`` change it?"""
        if current is None:
            return True
        return self.combine(current, delta) != current

    def delta_magnitude(self, delta: object) -> float:
        """Contribution of a delta to the ``|ΔX| < eps`` termination test."""
        if delta is None:
            return 0.0
        return abs(float(delta))

    def __repr__(self):
        return f"Aggregate({self.name})"
