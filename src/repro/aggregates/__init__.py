"""Aggregate operators for recursive aggregate programs.

The paper (section 5.1) predefines five aggregate operators -- ``min``,
``max``, ``sum``, ``count`` and ``mean`` -- of which the first four are
commutative and associative (Property 1 of Theorem 1) while ``mean`` is
not.  Each operator here carries everything the rest of the system needs:

* the binary combine function ``g`` and its identity element;
* the inverse ``G⁻`` used to determine the initial delta ``ΔX¹``
  (section 3.3: ``min`` -> ``min``, ``sum`` -> pairwise subtraction);
* algebraic metadata consumed by the condition checker (commutativity,
  associativity, and the *kind* -- additive vs selective -- that selects
  which Property-2 proof obligation applies to ``F'``);
* runtime predicates used by the MonoTable engines (idempotence and
  "does this delta improve the accumulated value").
"""

from repro.aggregates.base import Aggregate, AggregateKind
from repro.aggregates.builtin import (
    MIN,
    MAX,
    SUM,
    COUNT,
    MEAN,
    BUILTIN_AGGREGATES,
    get_aggregate,
)

__all__ = [
    "Aggregate",
    "AggregateKind",
    "MIN",
    "MAX",
    "SUM",
    "COUNT",
    "MEAN",
    "BUILTIN_AGGREGATES",
    "get_aggregate",
]
