"""Aggregate operators for recursive aggregate programs.

The aggregate core is organized around an explicit semiring interface
(:mod:`repro.aggregates.semiring`): a :class:`Semiring` declares the
algebra ``(⊕, ⊗, 0̄, 1̄)`` and its law flags (idempotent ``⊕``, natural
order, ``⊗``-monotonicity, invertible ``⊕``), and each semiring-foldable
:class:`Aggregate` is built from one -- ``min``/``max``/``sum`` are the
tropical/arctic/counting instances rather than special cases, and
``or``/``best``/``topk`` open the boolean, Viterbi and k-tropical
families.  Each operator carries everything the rest of the system
needs:

* the binary combine function ``g`` (the semiring ``⊕``) and its
  identity element ``0̄``;
* the inverse ``G⁻`` used to determine the initial delta ``ΔX¹``
  (section 3.3: ``min`` -> ``min``, ``sum`` -> pairwise subtraction --
  the latter exactly because counting's ``⊕`` is invertible);
* algebraic metadata consumed by the condition checker (commutativity,
  associativity, and the *kind* -- additive vs selective -- derived
  from the law flags, selecting which Property-2 proof obligation
  applies to ``F'``);
* runtime predicates used by the MonoTable engines (``⊕``-idempotence,
  magnitude accounting, and the vectorization hints kernels dispatch
  on).

``mean`` remains the counterexample: its binary operator is not the
``⊕`` of any semiring (associativity already fails), so it carries no
semiring and fails Property 1.
"""

from repro.aggregates.base import Aggregate, AggregateKind
from repro.aggregates.semiring import (
    ARCTIC,
    BOOLEAN,
    COUNTING,
    KTROPICAL,
    KTuple,
    REGISTERED_SEMIRINGS,
    Semiring,
    TROPICAL,
    VITERBI,
    get_semiring,
    register_semiring,
)
from repro.aggregates.builtin import (
    MIN,
    MAX,
    SUM,
    COUNT,
    OR,
    BEST,
    TOPK,
    MEAN,
    BUILTIN_AGGREGATES,
    get_aggregate,
)

__all__ = [
    "Aggregate",
    "AggregateKind",
    "Semiring",
    "KTuple",
    "TROPICAL",
    "ARCTIC",
    "COUNTING",
    "BOOLEAN",
    "VITERBI",
    "KTROPICAL",
    "REGISTERED_SEMIRINGS",
    "get_semiring",
    "register_semiring",
    "MIN",
    "MAX",
    "SUM",
    "COUNT",
    "OR",
    "BEST",
    "TOPK",
    "MEAN",
    "BUILTIN_AGGREGATES",
    "get_aggregate",
]
