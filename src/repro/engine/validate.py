"""Structured comparison of evaluation results.

Tests and the benchmark harness repeatedly answer the same question --
"did this engine produce the reference fixpoint?" -- with the same
subtleties: min/max lattices compare exactly, epsilon-terminated sum
programs compare to a scale-aware tolerance, and keys whose entire
contribution stayed below an importance threshold may legitimately be
absent when their reference value is negligible.  This module gives that
logic one home and a diagnosable result object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.aggregates import Aggregate


@dataclass(frozen=True)
class Mismatch:
    """One key where two results disagree."""

    key: object
    expected: object
    got: Optional[object]

    def __repr__(self):
        return f"{self.key!r}: expected {self.expected!r}, got {self.got!r}"


@dataclass
class Comparison:
    """Outcome of comparing a result against a reference."""

    tolerance: float
    mismatches: list[Mismatch] = field(default_factory=list)
    compared_keys: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def worst(self) -> Optional[Mismatch]:
        if not self.mismatches:
            return None
        return max(
            self.mismatches,
            key=lambda m: abs((m.got or 0) - m.expected),
        )

    def summary(self) -> str:
        if self.ok:
            return f"ok ({self.compared_keys} keys, tolerance {self.tolerance:g})"
        return (
            f"{len(self.mismatches)}/{self.compared_keys} keys differ "
            f"beyond {self.tolerance:g}; worst: {self.worst()!r}"
        )


def tolerance_for(aggregate: Aggregate, reference: Mapping) -> float:
    """Comparison tolerance: exact for idempotent lattices, scale-aware
    (0.5% of the largest magnitude) for epsilon-terminated programs."""
    if aggregate.is_idempotent:
        return 0.0
    magnitude = max((abs(v) for v in reference.values()), default=1.0)
    return max(5e-3, 5e-3 * magnitude)


def compare_results(
    reference: Mapping,
    values: Mapping,
    aggregate: Aggregate,
    tolerance: Optional[float] = None,
) -> Comparison:
    """Compare ``values`` against ``reference`` under aggregate semantics.

    Keys missing from ``values`` pass only when their reference value is
    itself within tolerance of nothing (the importance-threshold case);
    extra keys in ``values`` are ignored (engines may materialise
    identity-valued rows).
    """
    if tolerance is None:
        tolerance = tolerance_for(aggregate, reference)
    comparison = Comparison(tolerance=tolerance)
    for key, expected in reference.items():
        comparison.compared_keys += 1
        got = values.get(key)
        if got is None:
            if abs(expected) > tolerance:
                comparison.mismatches.append(Mismatch(key, expected, None))
            continue
        if abs(got - expected) > tolerance:
            comparison.mismatches.append(Mismatch(key, expected, got))
    return comparison
