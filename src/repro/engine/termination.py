"""Two-level termination control (paper sections 2.2 and 3.1).

Level 1 (program): fixpoint detection for finite-lattice programs, or a
user-specified ``{sum[delta] < eps}`` clause for limit programs such as
PageRank.  Level 2 (system): a hard iteration cap so that a diverging
program always stops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: system-level default iteration cap (paper: "a termination number of
#: iterations at the system level").
DEFAULT_MAX_ITERATIONS = 10_000


@dataclass(frozen=True)
class TerminationSpec:
    """Termination criteria for one program run."""

    #: user-level epsilon from a ``{sum[d] < eps}`` clause; ``None`` means
    #: pure fixpoint termination.
    epsilon: Optional[float] = None
    #: "<" or "<=" from the clause
    comparison: str = "<"
    max_iterations: int = DEFAULT_MAX_ITERATIONS

    @staticmethod
    def from_analysis(analysis, max_iterations: int = DEFAULT_MAX_ITERATIONS):
        """Build the spec from an analysed program's termination clause."""
        clause = analysis.termination
        if clause is None:
            return TerminationSpec(max_iterations=max_iterations)
        return TerminationSpec(
            epsilon=float(clause.threshold),
            comparison=clause.comparison,
            max_iterations=max_iterations,
        )

    def epsilon_met(self, total_delta: float) -> bool:
        if self.epsilon is None:
            return False
        if self.comparison == "<":
            return total_delta < self.epsilon
        return total_delta <= self.epsilon


class TerminationTracker:
    """Per-run tracker deciding when evaluation stops.

    Engines feed it, once per iteration (or per master check in the
    distributed engines), the number of changed keys and the total delta
    magnitude; :meth:`stop_reason` answers why (or whether) to stop.
    """

    def __init__(self, spec: TerminationSpec):
        self.spec = spec
        self.iterations = 0
        self.last_changed = None
        self.last_delta = None
        #: convergence trace: one (changed_keys, total_delta) per round,
        #: surfaced as ``EvalResult.trace`` for convergence analysis
        self.history: list[tuple[int, float]] = []

    def record(self, changed_keys: int, total_delta: float) -> None:
        self.iterations += 1
        self.last_changed = changed_keys
        self.last_delta = total_delta
        self.history.append((changed_keys, total_delta))

    def stop_reason(self) -> Optional[str]:
        """``None`` to continue, otherwise why evaluation stops."""
        if self.last_changed == 0:
            return "fixpoint"
        if self.last_delta is not None and self.spec.epsilon_met(self.last_delta):
            return "epsilon"
        if self.iterations >= self.spec.max_iterations:
            return "iteration-limit"
        return None
