"""Shared helpers for the relational evaluators."""

from __future__ import annotations

from typing import Optional

from repro.datalog import ProgramAnalysis
from repro.engine.relation import Database, Relation
from repro.engine.result import WorkCounters
from repro.engine.rules import aggregate_contributions, evaluate_rule_bodies


def recursive_rule(analysis: ProgramAnalysis):
    """The (single) recursive rule of the analysed program."""
    return next(
        r for r in analysis.program.rules_for(analysis.head) if r.is_recursive()
    )


def static_contributions(
    analysis: ProgramAnalysis,
    db: Database,
    counters: Optional[WorkCounters] = None,
    iterated_predicate: Optional[str] = None,
) -> list[tuple]:
    """Base-rule and constant-body (``C``) contributions.

    These do not depend on ``X^{k-1}``; naive evaluation recomputes them
    every iteration (and pays for it), semi-naive folds them once.
    """
    contributions: list[tuple] = []
    for rule in analysis.base_rules:
        contributions.extend(
            evaluate_rule_bodies(
                rule,
                db,
                counters=counters,
                iterated_predicate=iterated_predicate,
            )
        )
    if analysis.constant_bodies:
        contributions.extend(
            evaluate_rule_bodies(
                recursive_rule(analysis),
                db,
                bodies=analysis.constant_bodies,
                counters=counters,
                iterated_predicate=iterated_predicate,
            )
        )
    return contributions


def initial_values(
    analysis: ProgramAnalysis,
    db: Database,
    counters: Optional[WorkCounters] = None,
    iterated_predicate: Optional[str] = None,
) -> dict:
    """``X⁰``: the base rules' contributions, aggregated with ``G``."""
    contributions: list[tuple] = []
    for rule in analysis.base_rules:
        contributions.extend(
            evaluate_rule_bodies(
                rule, db, counters=counters, iterated_predicate=iterated_predicate
            )
        )
    return aggregate_contributions(analysis.aggregate, contributions)


def values_as_relation(analysis: ProgramAnalysis, values: dict) -> Relation:
    """Materialise a key->value mapping as the recursive predicate."""
    key_arity = len(analysis.recursion.source_keys)
    relation = Relation(analysis.head, key_arity + 1)
    for key, value in values.items():
        key_tuple = key if isinstance(key, tuple) else (key,)
        relation.add(key_tuple + (value,))
    return relation
