"""In-memory relations and databases.

Relations store tuples of plain Python values (ints, floats, strings).
Hash indexes on column subsets are built lazily and invalidated on
mutation; the join machinery in :mod:`repro.engine.rules` uses them to
avoid quadratic nested loops.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence


class Relation:
    """A named set of fixed-arity tuples with lazy hash indexes."""

    def __init__(self, name: str, arity: int, tuples: Optional[Iterable[tuple]] = None):
        self.name = name
        self.arity = arity
        self._tuples: set[tuple] = set()
        self._indexes: dict[tuple[int, ...], dict[tuple, list[tuple]]] = {}
        self._version = 0
        self._index_versions: dict[tuple[int, ...], int] = {}
        if tuples is not None:
            for row in tuples:
                self.add(row)

    def add(self, row: tuple) -> bool:
        """Insert a tuple; returns True if it was new."""
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name}/{self.arity} got a {len(row)}-tuple {row!r}"
            )
        before = len(self._tuples)
        self._tuples.add(row)
        if len(self._tuples) != before:
            self._version += 1
            return True
        return False

    def extend(self, rows: Iterable[tuple]) -> int:
        """Insert many tuples; returns how many were new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def clear(self) -> None:
        self._tuples.clear()
        self._version += 1

    def replace(self, rows: Iterable[tuple]) -> None:
        self._tuples = set()
        self._version += 1
        for row in rows:
            self.add(row)

    def __contains__(self, row: tuple) -> bool:
        return row in self._tuples

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def lookup(self, positions: Sequence[int], values: tuple) -> list[tuple]:
        """All tuples whose columns at ``positions`` equal ``values``."""
        key = tuple(positions)
        if not key:
            return list(self._tuples)
        index = self._index_for(key)
        return index.get(values, [])

    def _index_for(self, positions: tuple[int, ...]) -> dict[tuple, list[tuple]]:
        if (
            positions in self._indexes
            and self._index_versions.get(positions) == self._version
        ):
            return self._indexes[positions]
        index: dict[tuple, list[tuple]] = {}
        for row in self._tuples:
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        self._indexes[positions] = index
        self._index_versions[positions] = self._version
        return index

    def __repr__(self):
        return f"Relation({self.name}/{self.arity}, {len(self)} tuples)"


class Database:
    """A mutable mapping of relation names to relations."""

    def __init__(self):
        self._relations: dict[str, Relation] = {}

    def relation(self, name: str, arity: Optional[int] = None) -> Relation:
        """Fetch a relation, creating it when ``arity`` is given."""
        if name in self._relations:
            existing = self._relations[name]
            if arity is not None and existing.arity != arity:
                raise ValueError(
                    f"relation {name!r} exists with arity {existing.arity}, "
                    f"requested {arity}"
                )
            return existing
        if arity is None:
            raise KeyError(f"unknown relation {name!r}")
        created = Relation(name, arity)
        self._relations[name] = created
        return created

    def add_facts(
        self, name: str, rows: Iterable[tuple], arity: Optional[int] = None
    ) -> Relation:
        """Create/extend a relation from an iterable of tuples.

        ``arity`` is required when ``rows`` may be empty (e.g. the edge
        relation of an edgeless graph); otherwise it is inferred.
        """
        rows = [tuple(r) for r in rows]
        if not rows and arity is None:
            raise ValueError(f"cannot infer arity of empty relation {name!r}")
        relation = self.relation(name, arity if arity is not None else len(rows[0]))
        relation.extend(rows)
        return relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> list[str]:
        return sorted(self._relations)

    def copy(self) -> "Database":
        duplicate = Database()
        for name, relation in self._relations.items():
            duplicate._relations[name] = Relation(name, relation.arity, relation)
        return duplicate

    def __repr__(self):
        inner = ", ".join(
            f"{name}/{rel.arity}:{len(rel)}" for name, rel in sorted(self._relations.items())
        )
        return f"Database({inner})"
