"""Evaluation results and work accounting.

Every engine -- naive, semi-naive, MRA, and all distributed modes --
returns an :class:`EvalResult` carrying the fixpoint values plus the
:class:`WorkCounters` measured during genuine execution.  The simulated
cost models of :mod:`repro.distributed` convert these counters into
simulated seconds; they are never invented, only measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class WorkCounters:
    """Raw work quantities measured during an evaluation."""

    #: iterations (supersteps for sync engines; update rounds for MRA)
    iterations: int = 0
    #: tuples inspected while enumerating join bindings
    tuples_scanned: int = 0
    #: join bindings produced (rows flowing into aggregation)
    bindings_produced: int = 0
    #: applications of the non-aggregate operation F'
    fprime_applications: int = 0
    #: aggregate combine operations
    combines: int = 0
    #: key updates applied to the result table
    updates: int = 0
    #: messages exchanged between (simulated) workers
    messages: int = 0
    #: total payload tuples carried by those messages
    message_tuples: int = 0
    #: synchronisation barriers crossed
    barriers: int = 0

    def merge(self, other: "WorkCounters") -> None:
        self.iterations = max(self.iterations, other.iterations)
        self.tuples_scanned += other.tuples_scanned
        self.bindings_produced += other.bindings_produced
        self.fprime_applications += other.fprime_applications
        self.combines += other.combines
        self.updates += other.updates
        self.messages += other.messages
        self.message_tuples += other.message_tuples
        self.barriers += other.barriers

    def snapshot(self) -> dict:
        return {
            "iterations": self.iterations,
            "tuples_scanned": self.tuples_scanned,
            "bindings_produced": self.bindings_produced,
            "fprime_applications": self.fprime_applications,
            "combines": self.combines,
            "updates": self.updates,
            "messages": self.messages,
            "message_tuples": self.message_tuples,
            "barriers": self.barriers,
        }


@dataclass
class EvalResult:
    """The outcome of evaluating a recursive aggregate program."""

    #: fixpoint (or converged) values, keyed by group-by key
    values: dict
    #: why evaluation stopped: "fixpoint", "epsilon", "iteration-limit"
    stop_reason: str
    counters: WorkCounters = field(default_factory=WorkCounters)
    #: simulated wall-clock seconds (distributed engines only)
    simulated_seconds: Optional[float] = None
    #: engine label for reports ("naive+sync", "mra+async", ...)
    engine: str = ""
    #: execution-kernel backend that produced the run ("python", "numpy")
    backend: str = "python"
    #: convergence trace: (changed_keys, total_delta) per round/check
    trace: list = field(default_factory=list)
    #: fault-injection and recovery accounting (a
    #: :class:`repro.distributed.chaos.FaultStats`) when the run executed
    #: under a fault schedule; ``None`` for fault-free runs
    faults: Optional[object] = None
    #: the run's :class:`repro.obs.MetricsRegistry` when the engine ran
    #: with observability enabled; ``None`` otherwise.  The registry
    #: generalises :attr:`counters` (which it absorbs as ``work.*``
    #: counters) with labelled gauges and histograms.
    metrics: Optional[object] = None

    def value(self, key):
        return self.values.get(key)

    def __len__(self):
        return len(self.values)

    def __repr__(self):
        sim = (
            f", simulated={self.simulated_seconds:.3f}s"
            if self.simulated_seconds is not None
            else ""
        )
        return (
            f"EvalResult({self.engine or 'engine'}: {len(self.values)} keys, "
            f"{self.counters.iterations} iters, stop={self.stop_reason}{sim})"
        )
