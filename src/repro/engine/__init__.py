"""Single-node evaluation engines for recursive aggregate programs.

Two execution paths with one semantics:

* the **relational path** (:mod:`~repro.engine.relation`,
  :mod:`~repro.engine.rules`, :mod:`~repro.engine.naive`,
  :mod:`~repro.engine.seminaive`) executes the Datalog rules directly over
  stored relations -- this is what the paper's naive evaluation (Eq. 2)
  and classic semi-naive evaluation (Eq. 3) do, joins included;
* the **compiled path** (:mod:`~repro.engine.plan`,
  :mod:`~repro.engine.monotable`, :mod:`~repro.engine.mra`) pre-joins the
  auxiliary predicates into per-edge parameters (the MonoTable
  "Auxiliaries" columns of Figure 7) and runs MRA evaluation (Eq. 4) on
  the MonoTable; the distributed engines in :mod:`repro.distributed`
  shard exactly this representation.

Tests assert that all paths agree with each other and with the
independent oracles in :mod:`repro.reference`.
"""

from repro.engine.relation import Relation, Database
from repro.engine.rules import evaluate_rule_bodies, evaluate_aux_rules
from repro.engine.termination import TerminationSpec, TerminationTracker
from repro.engine.result import EvalResult, WorkCounters
from repro.engine.plan import CompiledPlan, compile_plan
from repro.engine.naive import NaiveEvaluator
from repro.engine.seminaive import SemiNaiveEvaluator
from repro.engine.monotable import MonoTable
from repro.engine.mra import MRAEvaluator, compute_initial_delta
from repro.engine.validate import Comparison, Mismatch, compare_results, tolerance_for

__all__ = [
    "Relation",
    "Database",
    "evaluate_rule_bodies",
    "evaluate_aux_rules",
    "TerminationSpec",
    "TerminationTracker",
    "EvalResult",
    "WorkCounters",
    "CompiledPlan",
    "compile_plan",
    "NaiveEvaluator",
    "SemiNaiveEvaluator",
    "MonoTable",
    "MRAEvaluator",
    "compute_initial_delta",
    "Comparison",
    "Mismatch",
    "compare_results",
    "tolerance_for",
]
