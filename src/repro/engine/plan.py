"""Compilation of analysed programs into vertex-centric plans.

The MRA and distributed engines do not re-join auxiliary predicates on
every update.  Instead, the recursive body's joins are evaluated *once*
at compile time and folded into per-edge parameter tuples -- exactly the
"Auxiliaries" columns of the paper's MonoTable (Figure 7), which "store
the joined results of non-recursive predicates in the recursive rule
body and other constant values of each tuple".

A :class:`CompiledPlan` is therefore a dependency graph over keys:
``out_edges[src]`` lists ``(dst, params)`` pairs, and
``fprime_fn(x, *params)`` computes the contribution ``F'`` sends from
``src`` to ``dst``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Callable, Optional

from repro.datalog import ProgramAnalysis
from repro.engine.common import recursive_rule
from repro.engine.relation import Database
from repro.engine.result import WorkCounters
from repro.engine.rules import (
    aggregate_contributions,
    evaluate_aux_rules,
    evaluate_rule_bodies,
    iter_bindings,
)
from repro.engine.termination import TerminationSpec
from repro.expr import compile_fn


@dataclass
class CompiledPlan:
    """A recursive aggregate program compiled to vertex-centric form."""

    name: str
    analysis: ProgramAnalysis
    #: every key that can ever hold a value
    keys: frozenset
    #: dependency edges: src key -> [(dst key, params tuple, fn), ...]
    #: where ``fn(x, *params)`` is the compiled ``F'`` of the recursive
    #: body that produced the edge (Program-2.b rules have several)
    out_edges: dict
    #: one compiled ``F'`` per recursive body, primary first
    fprime_fns: tuple[Callable, ...]
    param_names: tuple[str, ...]
    #: ``X⁰`` from the base rules
    initial: dict
    #: per-key constant contributions ``C`` (one application's worth)
    constants: dict
    termination: TerminationSpec
    #: columnar edge storage, one ``EdgeColumns`` per recursive body in
    #: ``fprime_fns`` order; the same edges as ``out_edges`` in emission
    #: order, kept as flat parallel columns so vectorized backends can
    #: pack a CSR without walking every edge tuple in Python.  ``None``
    #: for hand-built plans -- consumers must fall back to ``out_edges``.
    edge_columns: Optional[tuple] = None

    @property
    def aggregate(self):
        return self.analysis.aggregate

    @property
    def fprime_fn(self) -> Callable:
        """The primary body's compiled ``F'`` (convenience accessor)."""
        return self.fprime_fns[0]

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self.out_edges.values())

    def edges_from(self, key) -> list:
        return self.out_edges.get(key, ())

    def __repr__(self):
        return (
            f"CompiledPlan({self.name}: {len(self.keys)} keys, "
            f"{self.num_edges} edges, aggregate={self.aggregate.name})"
        )


class EdgeColumns:
    """One recursive body's edges as flat parallel columns.

    ``srcs[j] -> dsts[j]`` with parameters ``tuple(col[j] for col in
    param_cols)`` and the body's compiled ``fn``; ``j`` runs in emission
    order, i.e. the per-source order ``out_edges`` preserves.

    Columns start as C-typed :mod:`array` storage (``'q'`` for keys,
    ``'d'`` for parameters) and demote to plain lists the first time a
    value does not fit (tuple keys, symbolic parameters).  Typed
    columns let vectorized backends pack a CSR via zero-copy buffer
    views instead of touching every edge tuple in Python; this module
    itself never needs numpy for them.
    """

    __slots__ = ("fn", "_cols")

    def __init__(self, fn: Callable, width: int):
        self.fn = fn
        self._cols = [array("q"), array("q")]
        self._cols.extend(array("d") for _ in range(width))

    def append(self, src, dst, params: tuple) -> None:
        for k, value in enumerate((src, dst) + params):
            col = self._cols[k]
            try:
                col.append(value)
            except (TypeError, OverflowError):
                demoted = list(col)
                demoted.append(value)
                self._cols[k] = demoted

    def __len__(self) -> int:
        return len(self._cols[0])

    @property
    def srcs(self):
        return self._cols[0]

    @property
    def dsts(self):
        return self._cols[1]

    @property
    def param_cols(self) -> tuple:
        return tuple(self._cols[2:])


def _scalar(values: tuple):
    return values[0] if len(values) == 1 else values


def compile_plan(
    analysis: ProgramAnalysis,
    db: Database,
    termination: Optional[TerminationSpec] = None,
    counters: Optional[WorkCounters] = None,
) -> CompiledPlan:
    """Compile an analysed program against a database of EDB facts.

    Raises :class:`~repro.datalog.errors.AnalysisError` (carrying the
    RA201 diagnostic) when a head variable is unbound -- the rule could
    never be evaluated, so the plan fails fast instead of producing a
    partial dependency graph.
    """
    from repro.analysis.lints import lint_unbound_head_variables
    from repro.datalog.errors import AnalysisError

    unbound = lint_unbound_head_variables(analysis.program)
    if unbound:
        first = unbound[0]
        raise AnalysisError(first.message, code=first.code, diagnostic=first)

    counters = counters if counters is not None else WorkCounters()
    work_db = db.copy()
    evaluate_aux_rules(analysis, work_db, counters=counters)
    iterated = analysis.head if analysis.iterated else None
    rec_rule = recursive_rule(analysis)

    initial: dict = {}
    for rule in analysis.base_rules:
        contributions = evaluate_rule_bodies(
            rule, work_db, counters=counters, iterated_predicate=iterated
        )
        for key, value in contributions:
            if key in initial:
                initial[key] = analysis.aggregate.combine(initial[key], value)
            else:
                initial[key] = value

    constants: dict = {}
    if analysis.constant_bodies:
        contributions = evaluate_rule_bodies(
            rec_rule,
            work_db,
            bodies=analysis.constant_bodies,
            counters=counters,
            iterated_predicate=iterated,
        )
        constants = aggregate_contributions(analysis.aggregate, contributions)

    out_edges: dict = {}
    keys: set = set(initial) | set(constants)
    fprime_fns = []
    edge_columns: list[EdgeColumns] = []
    for spec in analysis.recursions:
        recursion_var = spec.recursion_var
        param_names = spec.fprime_params
        fn = compile_fn(spec.fprime, (recursion_var, *param_names))
        fprime_fns.append(fn)
        # Comparisons participating in F' (the definition chain of the
        # head variable) mention the recursion variable and are excluded
        # from the compile-time join; pure filters/assignments over join
        # variables stay.
        join_comparisons = [
            comparison
            for comparison in spec.comparisons
            if recursion_var not in comparison.left.free_vars()
            and recursion_var not in comparison.right.free_vars()
        ]

        # Key variables shared between the recursive atom and the head
        # but not bound by any join atom are *broadcast* dimensions
        # (e.g. the source column S of APSP:
        # ``apsp(S,Y,...) :- apsp(S,X,...), edge(X,Y,...)``).  The edge
        # pattern applies for every value of such a variable; we expand
        # it over the values observed in X⁰ and C.
        join_bound: set[str] = set()
        for atom in spec.join_atoms:
            join_bound.update(atom.variables())
        broadcast = [
            name
            for name in spec.source_keys
            if name in analysis.key_vars and name not in join_bound
        ]
        broadcast_values: dict[str, set] = {name: set() for name in broadcast}
        if broadcast:
            for key in set(initial) | set(constants):
                key_tuple = key if isinstance(key, tuple) else (key,)
                for name in broadcast:
                    position = spec.source_keys.index(name)
                    broadcast_values[name].add(key_tuple[position])

        columns = EdgeColumns(fn, len(param_names))
        edge_columns.append(columns)

        def emit(
            binding: dict,
            spec=spec,
            fn=fn,
            param_names=param_names,
            columns=columns,
        ) -> None:
            src = _scalar(tuple(binding[name] for name in spec.source_keys))
            dst = _scalar(tuple(binding[name] for name in analysis.key_vars))
            params = tuple(binding[name] for name in param_names)
            out_edges.setdefault(src, []).append((dst, params, fn))
            keys.add(src)
            keys.add(dst)
            columns.append(src, dst, params)

        for binding in iter_bindings(
            list(spec.join_atoms) + join_comparisons,
            work_db,
            counters=counters,
            iterated_predicate=iterated,
        ):
            if not broadcast:
                emit(binding)
                continue
            expansions = [binding]
            for name in broadcast:
                expansions = [
                    {**b, name: value}
                    for b in expansions
                    for value in sorted(broadcast_values[name])
                ]
            for expanded in expansions:
                emit(expanded)

    return CompiledPlan(
        name=analysis.program.name,
        analysis=analysis,
        keys=frozenset(keys),
        out_edges=out_edges,
        fprime_fns=tuple(fprime_fns),
        param_names=analysis.fprime_params,
        initial=initial,
        constants=constants,
        termination=termination or TerminationSpec.from_analysis(analysis),
        edge_columns=tuple(edge_columns),
    )
