"""Naive evaluation (paper Eq. 2): full recomputation every iteration.

Each iteration rebuilds the recursive predicate's relation from the
previous result and re-joins *everything* -- base rules, constant bodies
and the recursive body over the full ``X^{k-1}`` -- exactly the
"additional rank table join per iteration" cost the paper attributes to
SociaLite/Myria on non-monotonic programs.

``X^k(key) = G(base ∪ C ∪ recursive-body(X^{k-1}))`` uniformly covers
both accumulating programs (SSSP: synchronous Bellman-Ford relaxation)
and iterated/replacement programs (PageRank: power iteration).
"""

from __future__ import annotations

from typing import Optional

from repro.datalog import ProgramAnalysis
from repro.engine.common import (
    initial_values,
    recursive_rule,
    static_contributions,
    values_as_relation,
)
from repro.engine.relation import Database
from repro.engine.result import EvalResult, WorkCounters
from repro.engine.rules import (
    evaluate_aux_rules,
    evaluate_rule_bodies,
)
from repro.engine.termination import TerminationSpec, TerminationTracker
from repro.obs import ensure_obs
from repro.runtime import get_kernel, record_backend_metrics, resolve_backend_for_plan


class NaiveEvaluator:
    """Evaluate a recursive aggregate program with naive evaluation."""

    engine_name = "naive"

    def __init__(
        self,
        analysis: ProgramAnalysis,
        db: Database,
        termination: Optional[TerminationSpec] = None,
        obs=None,
        backend: Optional[str] = None,
    ):
        self.analysis = analysis
        self.db = db.copy()
        self.termination = termination or TerminationSpec.from_analysis(analysis)
        self.obs = ensure_obs(obs)
        self.counters = WorkCounters()
        self.backend = resolve_backend_for_plan(analysis, backend)
        evaluate_aux_rules(analysis, self.db, counters=self.counters)
        self._iterated_predicate = analysis.head if analysis.iterated else None

    def run(self) -> EvalResult:
        analysis = self.analysis
        aggregate = analysis.aggregate
        kernel_cls = get_kernel(self.backend)
        rec_rule = recursive_rule(analysis)
        recursive_bodies = [spec.body for spec in analysis.recursions]

        current = initial_values(
            analysis, self.db, self.counters, self._iterated_predicate
        )
        tracker = TerminationTracker(self.termination)
        stop = None
        while stop is None:
            contributions = static_contributions(
                analysis, self.db, self.counters, self._iterated_predicate
            )
            relation = values_as_relation(analysis, current)
            contributions.extend(
                evaluate_rule_bodies(
                    rec_rule,
                    self.db,
                    bodies=recursive_bodies,
                    overrides={analysis.head: relation},
                    counters=self.counters,
                    iterated_predicate=self._iterated_predicate,
                )
            )
            self.counters.fprime_applications += len(contributions)
            next_values = kernel_cls.fold_contributions(
                aggregate, contributions, self.counters
            )

            changed = 0
            total_delta = 0.0
            for key, value in next_values.items():
                old = current.get(key)
                if old is None:
                    changed += 1
                    total_delta += aggregate.delta_magnitude(value)
                elif value != old:
                    changed += 1
                    total_delta += (
                        abs(value - old)
                        if aggregate.numeric_values
                        else aggregate.change_magnitude(value, old, None)
                    )
            changed += sum(1 for key in current if key not in next_values)
            self.counters.updates += changed
            self.counters.iterations += 1

            current = next_values
            tracker.record(changed, total_delta)
            stop = tracker.stop_reason()
            if self.obs.enabled:
                self.obs.trace.emit(
                    "engine.epoch",
                    engine=self.engine_name,
                    round=self.counters.iterations,
                    changed=changed,
                    delta=total_delta,
                )

        result = EvalResult(
            values=current,
            stop_reason=stop,
            counters=self.counters,
            engine=self.engine_name,
            trace=tracker.history,
            backend=self.backend,
        )
        if self.obs.enabled:
            self.obs.metrics.absorb_work_counters(self.counters, engine=self.engine_name)
            record_backend_metrics(self.obs.metrics, self.engine_name, self.backend)
            result.metrics = self.obs.metrics
        return result
