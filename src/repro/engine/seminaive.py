"""Classic semi-naive evaluation (paper Eq. 3).

``X^k = G(X^{k-1} ∪ F(ΔX^{k-1}))`` with ``ΔX^k = X^k - X^{k-1}``: only
bindings whose recursive atom matches a *changed* key are recomputed.

As in the existing systems the paper surveys (SociaLite, Myria,
BigDatalog), this is only correct for monotonic programs over idempotent
(selective) aggregates -- min/max lattices where re-deriving a fact never
double-counts.  Additive programs (PageRank, Adsorption, Katz, BP) are
rejected here; PowerLog handles them with MRA evaluation instead, which
is the paper's core contribution.
"""

from __future__ import annotations

from typing import Optional

from repro.aggregates import AggregateKind
from repro.datalog import ProgramAnalysis
from repro.engine.common import recursive_rule, static_contributions, values_as_relation
from repro.engine.relation import Database
from repro.engine.result import EvalResult, WorkCounters
from repro.engine.rules import (
    aggregate_contributions,
    evaluate_aux_rules,
    evaluate_rule_bodies,
)
from repro.engine.termination import TerminationSpec, TerminationTracker
from repro.obs import ensure_obs
from repro.runtime import get_kernel, record_backend_metrics, resolve_backend_for_plan


class UnsupportedProgramError(ValueError):
    """The engine cannot evaluate this program correctly."""


class SemiNaiveEvaluator:
    """Semi-naive evaluation for monotonic (selective-aggregate) programs."""

    engine_name = "semi-naive"

    def __init__(
        self,
        analysis: ProgramAnalysis,
        db: Database,
        termination: Optional[TerminationSpec] = None,
        obs=None,
        backend: Optional[str] = None,
    ):
        if analysis.aggregate.kind is not AggregateKind.SELECTIVE:
            raise UnsupportedProgramError(
                f"semi-naive evaluation is only correct for monotonic "
                f"min/max programs; {analysis.program.name!r} aggregates with "
                f"{analysis.aggregate.name!r} (use MRA or naive evaluation)"
            )
        self.analysis = analysis
        self.db = db.copy()
        self.termination = termination or TerminationSpec.from_analysis(analysis)
        self.obs = ensure_obs(obs)
        self.counters = WorkCounters()
        self.backend = resolve_backend_for_plan(analysis, backend)
        evaluate_aux_rules(analysis, self.db, counters=self.counters)
        self._iterated_predicate = analysis.head if analysis.iterated else None

    def run(self) -> EvalResult:
        analysis = self.analysis
        aggregate = analysis.aggregate
        kernel_cls = get_kernel(self.backend)
        rec_rule = recursive_rule(analysis)
        recursive_bodies = [spec.body for spec in analysis.recursions]

        # X⁰ plus the invariant constant-body contributions, folded once.
        current = aggregate_contributions(
            aggregate,
            static_contributions(
                analysis, self.db, self.counters, self._iterated_predicate
            ),
        )
        delta = dict(current)

        tracker = TerminationTracker(self.termination)
        stop = None
        while stop is None:
            relation = values_as_relation(analysis, delta)
            contributions = evaluate_rule_bodies(
                rec_rule,
                self.db,
                bodies=recursive_bodies,
                overrides={analysis.head: relation},
                counters=self.counters,
                iterated_predicate=self._iterated_predicate,
            )
            self.counters.fprime_applications += len(contributions)

            changed = kernel_cls.improve_contributions(
                aggregate, current, contributions, self.counters
            )
            total_delta = 0.0
            for key, value in changed.items():
                old = current.get(key)
                if old is None:
                    total_delta += (
                        abs(value)
                        if aggregate.numeric_values
                        else aggregate.delta_magnitude(value)
                    )
                elif aggregate.numeric_values:
                    total_delta += abs(value - old)
                else:
                    total_delta += aggregate.change_magnitude(value, old, None)
                current[key] = value
            self.counters.updates += len(changed)
            self.counters.iterations += 1

            delta = changed
            tracker.record(len(changed), total_delta)
            stop = tracker.stop_reason()
            if self.obs.enabled:
                self.obs.trace.emit(
                    "engine.epoch",
                    engine=self.engine_name,
                    round=self.counters.iterations,
                    changed=len(changed),
                    delta=total_delta,
                )

        result = EvalResult(
            values=current,
            stop_reason=stop,
            counters=self.counters,
            engine=self.engine_name,
            trace=tracker.history,
            backend=self.backend,
        )
        if self.obs.enabled:
            self.obs.metrics.absorb_work_counters(self.counters, engine=self.engine_name)
            record_backend_metrics(self.obs.metrics, self.engine_name, self.backend)
            result.metrics = self.obs.metrics
        return result
