"""The MonoTable data structure (paper Figure 7, section 5.2).

Each key row holds an **accumulation** entry ``x`` (the running aggregate
result) and an **intermediate** entry ``g(Δx)`` (pending deltas already
combined with ``g``).  The three-step update of Figure 7 is:

1. fetch the intermediate entry into a local ``tmp`` and combine it into
   the accumulation entry (:meth:`fetch_and_reset` + :meth:`accumulate`);
2. reset the intermediate entry to the identity element so a delta is
   never aggregated twice (done atomically inside
   :meth:`fetch_and_reset`);
3. apply ``f`` to ``tmp`` and combine the result into intermediate
   entries of dependent rows (:meth:`push`) -- the cross-row step that
   needs communication when rows live on other workers.

For aggregates whose ``⊕`` is idempotent (min/max/or/topk), a fetched
``tmp`` that does not improve the accumulation entry is dropped without
propagation; for invertible-``⊕`` (additive) aggregates every
non-identity ``tmp`` propagates.  The magnitude accounting is delegated
to :meth:`Aggregate.change_magnitude`, which keeps the historical float
arithmetic for numeric semirings and defers to the semiring's declared
measure otherwise.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.aggregates import Aggregate


class MonoTable:
    """A (shard of a) MonoTable for one compiled plan."""

    def __init__(self, aggregate: Aggregate, initial: dict, keys: Optional[Iterable] = None):
        self.aggregate = aggregate
        if keys is None:
            self.accumulated: dict = dict(initial)
        else:
            keyset = set(keys)
            self.accumulated = {
                key: value for key, value in initial.items() if key in keyset
            }
        self.intermediate: dict = {}

    # -- step 3 of Figure 7 (receiving side) ------------------------------------
    def push(self, key, value) -> None:
        """Combine a delta into a row's intermediate entry."""
        current = self.intermediate.get(key)
        if current is None:
            self.intermediate[key] = value
        else:
            self.intermediate[key] = self.aggregate.combine(current, value)

    def push_many(self, deltas: Iterable[tuple]) -> None:
        for key, value in deltas:
            self.push(key, value)

    # -- steps 1 and 2 of Figure 7 ------------------------------------------------
    def fetch_and_reset(self, key):
        """Atomically take a row's intermediate entry (identity afterwards)."""
        return self.intermediate.pop(key, None)

    def drain_all(self) -> dict:
        """Atomically take *all* pending intermediate entries.

        The synchronous engines use this to realise strict rounds: every
        delta of round ``k`` is fetched before any propagation of round
        ``k`` lands in the table.
        """
        drained = self.intermediate
        self.intermediate = {}
        return drained

    def accumulate(self, key, tmp) -> tuple[bool, float]:
        """Combine ``tmp`` into the accumulation entry.

        Returns ``(changed, delta_magnitude)``; for idempotent aggregates
        ``changed`` being False tells the caller to skip propagation.
        """
        old = self.accumulated.get(key)
        if old is None:
            self.accumulated[key] = tmp
            return True, self.aggregate.delta_magnitude(tmp)
        new = self.aggregate.combine(old, tmp)
        if new == old:
            return False, 0.0
        self.accumulated[key] = new
        return True, self.aggregate.change_magnitude(new, old, tmp)

    # -- inspection ------------------------------------------------------------
    def pending_keys(self) -> list:
        """Keys whose intermediate entry is non-identity."""
        return list(self.intermediate)

    def has_pending(self) -> bool:
        return bool(self.intermediate)

    def pending_magnitude(self) -> float:
        """Total magnitude of pending deltas (termination reporting)."""
        return sum(
            self.aggregate.delta_magnitude(v) for v in self.intermediate.values()
        )

    def result(self) -> dict:
        return dict(self.accumulated)

    def __len__(self):
        return len(self.accumulated)

    def __repr__(self):
        return (
            f"MonoTable({self.aggregate.name}: {len(self.accumulated)} rows, "
            f"{len(self.intermediate)} pending)"
        )
