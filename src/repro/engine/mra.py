"""MRA evaluation (paper Eq. 4) on a single-node MonoTable.

``ΔX^k = G ∘ F'(ΔX^{k-1})`` and ``X^k = G(X^{k-1} ∪ ΔX^k)``: deltas are
computed from deltas; the accumulated result is only ever *combined
with*, never recomputed.  The start point ``ΔX¹`` is determined
automatically via the aggregate's inverse ``G⁻`` (section 3.3):
one naive step produces ``X¹`` and ``ΔX¹ = G⁻(X¹, X⁰)``.

This evaluator processes rounds synchronously (all pending deltas of a
round before any of the next); it is the single-node reference that the
distributed sync/async/unified engines are validated against.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.monotable import MonoTable
from repro.engine.plan import CompiledPlan
from repro.engine.result import EvalResult, WorkCounters
from repro.engine.termination import TerminationSpec, TerminationTracker
from repro.obs import ensure_obs


def compute_initial_delta(plan: CompiledPlan) -> dict:
    """Determine ``ΔX¹`` such that ``X¹ = G(ΔX¹ ∪ X⁰)`` (section 3.3).

    One naive step computes ``X¹ = G(X⁰ ∪ C ∪ F'(X⁰))`` and the
    aggregate's predefined inverse ``G⁻`` extracts the delta
    (``min``: keep the new value when it improves; ``sum``: pairwise
    subtraction).
    """
    aggregate = plan.aggregate
    combine = aggregate.combine
    x1: dict = dict(plan.initial)

    def merge(key, value):
        old = x1.get(key)
        x1[key] = value if old is None else combine(old, value)

    for key, value in plan.constants.items():
        merge(key, value)
    for src, value in plan.initial.items():
        for dst, params, fn in plan.edges_from(src):
            merge(dst, fn(value, *params))

    delta: dict = {}
    for key, value in x1.items():
        d = aggregate.subtract(value, plan.initial.get(key))
        if d is not None:
            delta[key] = d
    return delta


class MRAEvaluator:
    """Single-node synchronous MRA evaluation over a compiled plan."""

    engine_name = "mra"

    def __init__(
        self,
        plan: CompiledPlan,
        termination: Optional[TerminationSpec] = None,
        obs=None,
    ):
        self.plan = plan
        self.termination = termination or plan.termination
        self.obs = ensure_obs(obs)
        self.counters = WorkCounters()

    def run(self) -> EvalResult:
        plan = self.plan
        aggregate = plan.aggregate
        table = MonoTable(aggregate, plan.initial)
        table.push_many(compute_initial_delta(plan).items())

        tracker = TerminationTracker(self.termination)
        stop = None
        while stop is None:
            round_deltas = table.drain_all()
            changed = 0
            total_delta = 0.0
            for key, tmp in round_deltas.items():
                did_change, magnitude = table.accumulate(key, tmp)
                self.counters.combines += 1
                if not did_change:
                    continue  # idempotent aggregate: nothing improved
                changed += 1
                total_delta += magnitude
                self.counters.updates += 1
                edges = plan.edges_from(key)
                self.counters.fprime_applications += len(edges)
                for dst, params, fn in edges:
                    table.push(dst, fn(tmp, *params))
                    self.counters.combines += 1
            self.counters.iterations += 1
            tracker.record(changed, total_delta)
            stop = tracker.stop_reason()
            if self.obs.enabled:
                self.obs.trace.emit(
                    "engine.epoch",
                    engine=self.engine_name,
                    round=self.counters.iterations,
                    changed=changed,
                    delta=total_delta,
                )

        result = EvalResult(
            values=table.result(),
            stop_reason=stop,
            counters=self.counters,
            engine=self.engine_name,
            trace=tracker.history,
        )
        if self.obs.enabled:
            self.obs.metrics.absorb_work_counters(self.counters, engine=self.engine_name)
            result.metrics = self.obs.metrics
        return result
