"""MRA evaluation (paper Eq. 4) on a single-node MonoTable.

``ΔX^k = G ∘ F'(ΔX^{k-1})`` and ``X^k = G(X^{k-1} ∪ ΔX^k)``: deltas are
computed from deltas; the accumulated result is only ever *combined
with*, never recomputed.  The start point ``ΔX¹`` is determined
automatically via the aggregate's inverse ``G⁻`` (section 3.3):
one naive step produces ``X¹`` and ``ΔX¹ = G⁻(X¹, X⁰)``.

This evaluator processes rounds synchronously (all pending deltas of a
round before any of the next); it is the single-node reference that the
distributed sync/async/unified engines are validated against.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.plan import CompiledPlan
from repro.engine.result import EvalResult, WorkCounters
from repro.engine.termination import TerminationSpec, TerminationTracker
from repro.obs import ensure_obs
from repro.runtime import get_kernel, record_backend_metrics, resolve_backend_for_plan


def compute_initial_delta(plan: CompiledPlan) -> dict:
    """Determine ``ΔX¹`` such that ``X¹ = G(ΔX¹ ∪ X⁰)`` (section 3.3).

    One naive step computes ``X¹ = G(X⁰ ∪ C ∪ F'(X⁰))`` and the
    aggregate's predefined inverse ``G⁻`` extracts the delta
    (``min``: keep the new value when it improves; ``sum``: pairwise
    subtraction).
    """
    aggregate = plan.aggregate
    combine = aggregate.combine
    x1: dict = dict(plan.initial)

    def merge(key, value):
        old = x1.get(key)
        x1[key] = value if old is None else combine(old, value)

    for key, value in plan.constants.items():
        merge(key, value)
    for src, value in plan.initial.items():
        for dst, params, fn in plan.edges_from(src):
            merge(dst, fn(value, *params))

    delta: dict = {}
    for key, value in x1.items():
        d = aggregate.subtract(value, plan.initial.get(key))
        if d is not None:
            delta[key] = d
    return delta


class MRAEvaluator:
    """Single-node synchronous MRA evaluation over a compiled plan."""

    engine_name = "mra"

    def __init__(
        self,
        plan: CompiledPlan,
        termination: Optional[TerminationSpec] = None,
        obs=None,
        backend: Optional[str] = None,
    ):
        self.plan = plan
        self.termination = termination or plan.termination
        self.obs = ensure_obs(obs)
        self.counters = WorkCounters()
        self.backend = resolve_backend_for_plan(plan, backend)

    def run(self) -> EvalResult:
        plan = self.plan
        kernel_cls = get_kernel(self.backend)
        kernel = kernel_cls.from_plan(plan, counters=self.counters)
        kernel.push_many(kernel_cls.initial_delta(plan).items())

        tracker = TerminationTracker(self.termination)
        stop = None
        while stop is None:
            round_result = kernel.step()
            self.counters.iterations += 1
            tracker.record(round_result.changed, round_result.magnitude)
            stop = tracker.stop_reason()
            if self.obs.enabled:
                self.obs.trace.emit(
                    "engine.epoch",
                    engine=self.engine_name,
                    round=self.counters.iterations,
                    changed=round_result.changed,
                    delta=round_result.magnitude,
                )

        result = EvalResult(
            values=kernel.result(),
            stop_reason=stop,
            counters=self.counters,
            engine=self.engine_name,
            trace=tracker.history,
            backend=self.backend,
        )
        if self.obs.enabled:
            self.obs.metrics.absorb_work_counters(self.counters, engine=self.engine_name)
            record_backend_metrics(self.obs.metrics, self.engine_name, self.backend)
            result.metrics = self.obs.metrics
        return result
