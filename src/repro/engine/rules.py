"""Rule-body evaluation: joins, assignments, filters, head construction.

This is the relational workhorse shared by naive and semi-naive
evaluation.  Bodies are evaluated by backtracking over their predicate
atoms -- using lazily built hash indexes on the already-bound columns --
while comparison atoms are applied as soon as their variables are bound
(``=`` with an unbound left variable acts as an assignment, everything
else as a filter).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Iterator, Mapping, Optional

from repro.datalog.ast import (
    ComparisonAtom,
    NumberConstant,
    PredicateAtom,
    Rule,
    RuleBody,
    SymbolConstant,
    Variable,
    Wildcard,
)
from repro.datalog.errors import AnalysisError
from repro.engine.relation import Database, Relation
from repro.engine.result import WorkCounters
from repro.expr import Var, compile_fn


def to_number(value):
    """Convert parser Fractions to engine numbers (int when integral)."""
    if isinstance(value, Fraction):
        return value.numerator if value.denominator == 1 else float(value)
    return value


def _strip_iteration(atom: PredicateAtom, iterated_predicate: Optional[str]) -> PredicateAtom:
    """Drop the iteration-index argument of an iterated predicate's atoms.

    Only atoms of the iterated head predicate carry the index (e.g.
    ``rank(i, X, rx)``); ``edge``/``degree`` atoms are untouched.
    """
    if atom.name != iterated_predicate:
        return atom
    return PredicateAtom(atom.name, atom.terms[1:])


class _CompiledComparison:
    """A comparison atom prepared for repeated evaluation."""

    __slots__ = ("atom", "assign_to", "needs", "fn", "argnames")

    def __init__(self, atom: ComparisonAtom):
        self.atom = atom
        left_is_var = isinstance(atom.left, Var)
        left_vars = atom.left.free_vars()
        right_vars = atom.right.free_vars()
        if atom.op == "=" and left_is_var:
            # may act as assignment when the left variable is unbound
            self.assign_to = atom.left.name
            self.argnames = tuple(sorted(right_vars))
            self.fn = compile_fn(atom.right, self.argnames)
            self.needs = set(self.argnames)
        else:
            self.assign_to = None
            self.argnames = tuple(sorted(left_vars | right_vars))
            expr_pair = (atom.left, atom.right)
            left_fn = compile_fn(expr_pair[0], self.argnames)
            right_fn = compile_fn(expr_pair[1], self.argnames)
            op = atom.op
            comparators: dict[str, Callable] = {
                "=": lambda a, b: a == b,
                "!=": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }
            compare = comparators[op]
            self.fn = lambda **kw: compare(left_fn(**kw), right_fn(**kw))
            self.needs = set(self.argnames)

    def try_apply(self, binding: dict) -> Optional[bool]:
        """Apply if evaluable: returns True/False (keep/drop) or None (defer)."""
        if self.assign_to is not None and self.assign_to not in binding:
            if not self.needs <= binding.keys():
                return None
            binding[self.assign_to] = self.fn(
                **{name: binding[name] for name in self.argnames}
            )
            return True
        # filter: both sides must be bound (an assigned var counts as bound)
        required = self.needs | ({self.assign_to} if self.assign_to else set())
        if not required <= binding.keys():
            return None
        if self.assign_to is not None:
            return binding[self.assign_to] == self.fn(
                **{name: binding[name] for name in self.argnames}
            )
        return bool(self.fn(**{name: binding[name] for name in self.argnames}))


def iter_bindings(
    atoms: Iterable,
    db: Database,
    overrides: Optional[Mapping[str, Relation]] = None,
    counters: Optional[WorkCounters] = None,
    iterated_predicate: Optional[str] = None,
) -> Iterator[dict]:
    """Enumerate all variable bindings satisfying a conjunction of atoms.

    ``overrides`` maps predicate names to replacement relations -- this is
    how semi-naive evaluation binds the recursive atom to the delta
    relation instead of the full one.
    """
    overrides = overrides or {}
    predicates = [
        _strip_iteration(a, iterated_predicate)
        for a in atoms
        if isinstance(a, PredicateAtom)
    ]
    comparisons = [
        _CompiledComparison(a) for a in atoms if isinstance(a, ComparisonAtom)
    ]

    def relation_for(atom: PredicateAtom) -> Relation:
        if atom.name in overrides:
            return overrides[atom.name]
        return db.relation(atom.name)

    def apply_comparisons(binding: dict, pending: list) -> Optional[list]:
        """Apply every evaluable comparison; None signals a failed filter."""
        remaining = pending
        progressed = True
        while progressed:
            progressed = False
            still: list = []
            for comp in remaining:
                outcome = comp.try_apply(binding)
                if outcome is None:
                    still.append(comp)
                elif outcome is False:
                    return None
                else:
                    progressed = True
            remaining = still
        return remaining

    def match(index: int, binding: dict, pending: list) -> Iterator[dict]:
        applied = apply_comparisons(binding, pending)
        if applied is None:
            return
        if index == len(predicates):
            if applied:
                unresolved = [c.atom for c in applied]
                raise AnalysisError(
                    f"comparisons with unbound variables: {unresolved}"
                )
            yield binding
            return
        atom = predicates[index]
        relation = relation_for(atom)
        bound_positions: list[int] = []
        bound_values: list = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable) and term.name in binding:
                bound_positions.append(position)
                bound_values.append(binding[term.name])
            elif isinstance(term, NumberConstant):
                bound_positions.append(position)
                bound_values.append(to_number(term.value))
            elif isinstance(term, SymbolConstant):
                bound_positions.append(position)
                bound_values.append(term.value)
        rows = relation.lookup(bound_positions, tuple(bound_values))
        if counters is not None:
            counters.tuples_scanned += len(rows)
        for row in rows:
            extended = dict(binding)
            ok = True
            for position, term in enumerate(atom.terms):
                if isinstance(term, (Wildcard, NumberConstant, SymbolConstant)):
                    continue
                if isinstance(term, Variable):
                    if term.name in extended:
                        if extended[term.name] != row[position]:
                            ok = False
                            break
                    else:
                        extended[term.name] = row[position]
                else:
                    raise AnalysisError(f"unsupported body term {term!r}")
            if ok:
                yield from match(index + 1, extended, list(applied))

    yield from match(0, {}, list(comparisons))


def _head_key_and_value(rule: Rule, binding: dict, iterated_predicate: Optional[str]):
    """Build (key, value) from a rule head under a binding.

    The last head position carries the value (the aggregate variable for
    aggregate heads); earlier positions are the group-by key.  ``count``
    heads contribute 1 per binding (standard counting semantics).
    """
    from repro.datalog.ast import AggregateSpec, IterationNext

    terms = list(rule.head.terms)
    strip = (
        rule.head.name == iterated_predicate
        and terms
        and isinstance(terms[0], (IterationNext, NumberConstant, Variable))
    )
    if strip:
        terms = terms[1:]
    key_parts = []
    for term in terms[:-1]:
        if isinstance(term, Variable):
            key_parts.append(binding[term.name])
        elif isinstance(term, NumberConstant):
            key_parts.append(to_number(term.value))
        elif isinstance(term, SymbolConstant):
            key_parts.append(term.value)
        else:
            raise AnalysisError(f"unsupported head term {term!r}")
    last = terms[-1]
    if isinstance(last, AggregateSpec):
        if last.op == "count":
            value = 1
        else:
            value = binding[last.variable]
    elif isinstance(last, Variable):
        value = binding[last.name]
    elif isinstance(last, NumberConstant):
        value = to_number(last.value)
    else:
        raise AnalysisError(f"unsupported head value term {last!r}")
    key = key_parts[0] if len(key_parts) == 1 else tuple(key_parts)
    return key, value


def evaluate_rule_bodies(
    rule: Rule,
    db: Database,
    bodies: Optional[Iterable[RuleBody]] = None,
    overrides: Optional[Mapping[str, Relation]] = None,
    counters: Optional[WorkCounters] = None,
    iterated_predicate: Optional[str] = None,
) -> list[tuple]:
    """Evaluate (some of) a rule's bodies, returning raw (key, value) pairs.

    Aggregation is *not* applied here -- callers group and combine, which
    lets naive evaluation aggregate the union of many sources in one pass.
    Facts (rules without bodies) yield their head directly.
    """
    contributions: list[tuple] = []
    selected = list(bodies) if bodies is not None else list(rule.bodies)
    if not selected:
        contributions.append(_head_key_and_value(rule, {}, iterated_predicate))
        return contributions
    for body in selected:
        atoms = [a for a in body.atoms if not _is_termination(a)]
        for binding in iter_bindings(
            atoms,
            db,
            overrides=overrides,
            counters=counters,
            iterated_predicate=iterated_predicate,
        ):
            if counters is not None:
                counters.bindings_produced += 1
            contributions.append(
                _head_key_and_value(rule, binding, iterated_predicate)
            )
    return contributions


def _is_termination(atom) -> bool:
    from repro.datalog.ast import TerminationAtom

    return isinstance(atom, TerminationAtom)


def aggregate_contributions(aggregate, contributions: Iterable[tuple]) -> dict:
    """Group (key, value) pairs by key and fold with the aggregate."""
    grouped: dict = {}
    combine = aggregate.combine
    for key, value in contributions:
        if key in grouped:
            grouped[key] = combine(grouped[key], value)
        else:
            grouped[key] = value
    return grouped


def evaluate_aux_rules(analysis, db: Database, counters: Optional[WorkCounters] = None):
    """Materialise auxiliary (non-recursive, non-head) rules into ``db``.

    Auxiliary rules may only depend on the EDB and earlier auxiliaries
    (checked); aggregate heads are grouped with their operator.
    """
    from repro.aggregates import get_aggregate
    from repro.datalog.ast import AggregateSpec

    materialised: set[str] = set()
    for rule in analysis.aux_rules:
        for body in rule.bodies:
            for atom in body.predicate_atoms():
                name = atom.name
                if name == analysis.head or (
                    name not in analysis.edb_predicates
                    and name not in materialised
                    and name != rule.head.name
                ):
                    raise AnalysisError(
                        f"auxiliary rule {rule!r} depends on {name!r} before it is "
                        "materialised"
                    )
        contributions = evaluate_rule_bodies(rule, db, counters=counters)
        last = rule.head.terms[-1]
        if isinstance(last, AggregateSpec):
            grouped = aggregate_contributions(get_aggregate(last.op), contributions)
            rows = [
                (key if isinstance(key, tuple) else (key,)) + (value,)
                for key, value in grouped.items()
            ]
        else:
            rows = [
                (key if isinstance(key, tuple) else (key,)) + (value,)
                for key, value in contributions
            ]
        arity = len(rule.head.terms)
        relation = db.relation(rule.head.name, arity)
        relation.extend(rows)
        materialised.add(rule.head.name)
