"""Tokenizer for the Datalog dialect.

Handles the interaction between decimal numbers (``0.85``) and the
rule-terminating period, strips ``%``/``//``/``#`` comments, and removes
the cosmetic rule labels (``r1.``) the paper prefixes to rules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction

from repro.datalog.errors import LexError

#: token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
PUNCT = "PUNCT"
EOF = "EOF"

_PUNCTUATION = [
    ":-",
    "<=",
    ">=",
    "!=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ".",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "_",
]

_IDENT_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\d+\.\d+|\d+")
_STRING_RE = re.compile(r'"([^"\\]*)"')
_COMMENT_RE = re.compile(r"(%|//|#)[^\n]*")
_RULE_LABEL_RE = re.compile(r"^\s*r\d+\s*\.\s*", re.MULTILINE)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self):
        return f"{self.kind}:{self.value!r}@{self.line}:{self.column}"


def _strip_labels(source: str) -> str:
    """Remove leading ``r1.`` style rule labels, as in the paper listings."""
    return _RULE_LABEL_RE.sub("", source)


def tokenize(source: str) -> list[Token]:
    """Tokenize Datalog source text into a list ending with an EOF token."""
    source = _strip_labels(source)
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        comment = _COMMENT_RE.match(source, pos)
        if comment:
            pos = comment.end()
            continue
        column = pos - line_start + 1

        string = _STRING_RE.match(source, pos)
        if string:
            tokens.append(Token(STRING, string.group(1), line, column))
            pos = string.end()
            continue

        number = _NUMBER_RE.match(source, pos)
        if number:
            # Disambiguate ``1.`` at end of a rule: the NUMBER regex only
            # consumes the dot when digits follow it, so ``d=0.`` lexes as
            # NUMBER(0) PUNCT(.) as intended.
            tokens.append(Token(NUMBER, number.group(0), line, column))
            pos = number.end()
            continue

        ident = _IDENT_RE.match(source, pos)
        if ident:
            tokens.append(Token(IDENT, ident.group(0), line, column))
            pos = ident.end()
            continue

        for punct in _PUNCTUATION:
            if source.startswith(punct, pos):
                tokens.append(Token(PUNCT, punct, line, column))
                pos += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token(EOF, "", line, length - line_start + 1))
    return tokens


def number_value(token: Token) -> Fraction:
    """Exact rational value of a NUMBER token (``0.85`` -> ``17/20``)."""
    text = token.value
    if "." in text:
        whole, frac = text.split(".")
        denom = 10 ** len(frac)
        return Fraction(int(whole) * denom + int(frac or 0), denom)
    return Fraction(int(text))
