"""Datalog front-end for recursive aggregate programs.

Implements the paper's Datalog dialect (sections 2.1, 3.1 and 6.1):

* rules with multiple ``;``-separated bodies;
* aggregate heads such as ``sssp(Y, min[dy])``;
* iteration-indexed predicates (``rank(i+1, Y, sum[ry]) :- rank(i, X, rx)``)
  expressing replacement semantics for limit programs like PageRank;
* user-level termination clauses ``{sum[delta] < 0.001}`` (the syntax
  extension of section 3.1);
* ``assume`` declarations giving parameter domains for the condition
  checker (the ``(assert (> d 0))`` of the paper's Figure 4).

The pipeline mirrors PowerLog's (Figure 6): :mod:`~repro.datalog.lexer`
and :mod:`~repro.datalog.parser` play the role of the ANTLR front end,
producing the AST of :mod:`~repro.datalog.ast`;
:mod:`~repro.datalog.analyzer` traverses it to identify the recursive
rule and extract the aggregate ``G``, the non-aggregate ``F'`` and the
constant part ``C`` (section 5.1).
"""

from repro.datalog.errors import DatalogError, LexError, ParseError, AnalysisError
from repro.datalog.ast import (
    Span,
    Variable,
    NumberConstant,
    SymbolConstant,
    Wildcard,
    IterationCurrent,
    IterationNext,
    AggregateSpec,
    PredicateAtom,
    ComparisonAtom,
    TerminationAtom,
    AssumeDecl,
    RuleHead,
    RuleBody,
    Rule,
    Program,
)
from repro.datalog.lexer import tokenize, Token
from repro.datalog.parser import parse_program
from repro.datalog.analyzer import analyze, ProgramAnalysis, RecursionSpec
from repro.datalog.rewrite import rewrite_to_incremental, incremental_source

__all__ = [
    "DatalogError",
    "LexError",
    "ParseError",
    "AnalysisError",
    "Span",
    "Variable",
    "NumberConstant",
    "SymbolConstant",
    "Wildcard",
    "IterationCurrent",
    "IterationNext",
    "AggregateSpec",
    "PredicateAtom",
    "ComparisonAtom",
    "TerminationAtom",
    "AssumeDecl",
    "RuleHead",
    "RuleBody",
    "Rule",
    "Program",
    "tokenize",
    "Token",
    "parse_program",
    "analyze",
    "ProgramAnalysis",
    "RecursionSpec",
    "rewrite_to_incremental",
    "incremental_source",
]
