"""Error types for the Datalog front-end."""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all Datalog front-end errors."""


class LexError(DatalogError):
    """Invalid character or malformed token in the source text."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(DatalogError):
    """Token stream does not match the grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class AnalysisError(DatalogError):
    """Program is syntactically valid but outside the supported class.

    The paper restricts attention to direct, linear recursion
    (section 2.1, footnote 2): one recursive rule, at most one
    occurrence of the head predicate per body, no mutual recursion.
    Programs outside that class raise this error.

    ``code`` carries the stable ``RAxxx`` diagnostic code of
    :mod:`repro.analysis` when the failure maps to one (the lint
    pipeline converts the exception back into that diagnostic), and
    ``diagnostic`` the full diagnostic object when available.
    """

    def __init__(self, message: str, code=None, diagnostic=None):
        super().__init__(message)
        self.code = code
        self.diagnostic = diagnostic
