"""Abstract syntax tree for the Datalog dialect.

Terms in predicate arguments are deliberately simple -- variables,
constants, wildcards and the two iteration markers ``i`` / ``i+1`` --
while the right-hand sides of comparison atoms are full arithmetic
expressions from :mod:`repro.expr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional, Union

from repro.expr import Expr


# --------------------------------------------------------------------------
# Source spans
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Span:
    """Source position of a syntactic element, from the lexer tokens.

    Spans are carried on rules and declarations (``compare=False``
    fields, so structural AST equality ignores them) and give the static
    analyzer's diagnostics their ``line:column`` anchors.
    """

    line: int
    column: int

    def __repr__(self):
        return f"{self.line}:{self.column}"


# --------------------------------------------------------------------------
# Terms (arguments of predicate atoms)
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Variable:
    """A logic variable, e.g. ``X`` or ``dx``."""

    name: str

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class NumberConstant:
    """A numeric constant appearing as a predicate argument."""

    value: Fraction

    def __repr__(self):
        if self.value.denominator == 1:
            return str(self.value.numerator)
        return f"{float(self.value):g}"


@dataclass(frozen=True)
class SymbolConstant:
    """A quoted symbolic constant, e.g. ``"label_a"``."""

    value: str

    def __repr__(self):
        return f'"{self.value}"'


@dataclass(frozen=True)
class Wildcard:
    """The anonymous term ``_`` (as in ``cc(X, X) :- edge(X, _)``)."""

    def __repr__(self):
        return "_"


@dataclass(frozen=True)
class IterationCurrent:
    """The iteration index in a body atom: ``rank(i, X, rx)``."""

    name: str

    def __repr__(self):
        return self.name


@dataclass(frozen=True)
class IterationNext:
    """The incremented iteration index in a head: ``rank(i+1, Y, ...)``."""

    name: str

    def __repr__(self):
        return f"{self.name}+1"


Term = Union[Variable, NumberConstant, SymbolConstant, Wildcard, IterationCurrent, IterationNext]


# --------------------------------------------------------------------------
# Atoms
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateSpec:
    """An aggregate head position, e.g. ``min[dy]``."""

    op: str
    variable: str

    def __repr__(self):
        return f"{self.op}[{self.variable}]"


@dataclass(frozen=True)
class PredicateAtom:
    """A table predicate in a rule body, e.g. ``edge(X, Y, dxy)``."""

    name: str
    terms: tuple[Term, ...]

    def variables(self) -> list[str]:
        return [t.name for t in self.terms if isinstance(t, Variable)]

    def __repr__(self):
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class ComparisonAtom:
    """An expression atom, e.g. ``dy = dx + dxy`` or ``X = 1``.

    With ``op == '='`` and a bare unbound variable on the left this acts
    as an assignment; otherwise it is a filter.
    """

    left: Expr
    op: str  # one of = != < <= > >=
    right: Expr

    def __repr__(self):
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class TerminationAtom:
    """A user-level termination clause, e.g. ``{sum[delta] < 0.001}``.

    The paper extends Datalog syntax (section 3.1) so the programmer can
    terminate limit programs when the aggregated change between
    consecutive results drops below a threshold.
    """

    op: str  # aggregate applied to deltas, normally "sum"
    variable: str  # name of the delta variable (documentation only)
    comparison: str  # "<" or "<="
    threshold: Fraction

    def __repr__(self):
        return f"{{{self.op}[{self.variable}] {self.comparison} {float(self.threshold):g}}}"


Atom = Union[PredicateAtom, ComparisonAtom, TerminationAtom]


# --------------------------------------------------------------------------
# Declarations, rules, programs
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class AssumeDecl:
    """A parameter-domain declaration, e.g. ``assume d > 0.``

    Mirrors the ``(assert (> d 0))`` constraint in the paper's Figure 4.
    """

    variable: str
    op: str  # < <= > >= =
    bound: Fraction
    span: Optional[Span] = field(default=None, compare=False)

    def __repr__(self):
        return f"assume {self.variable} {self.op} {float(self.bound):g}."


@dataclass(frozen=True)
class RuleHead:
    name: str
    terms: tuple[Union[Term, AggregateSpec], ...]

    @property
    def aggregate(self) -> Optional[AggregateSpec]:
        for term in self.terms:
            if isinstance(term, AggregateSpec):
                return term
        return None

    def __repr__(self):
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class RuleBody:
    atoms: tuple[Atom, ...]

    def predicate_atoms(self) -> list[PredicateAtom]:
        return [a for a in self.atoms if isinstance(a, PredicateAtom)]

    def comparison_atoms(self) -> list[ComparisonAtom]:
        return [a for a in self.atoms if isinstance(a, ComparisonAtom)]

    def termination_atoms(self) -> list[TerminationAtom]:
        return [a for a in self.atoms if isinstance(a, TerminationAtom)]

    def mentions(self, predicate: str) -> bool:
        return any(a.name == predicate for a in self.predicate_atoms())

    def __repr__(self):
        return ", ".join(repr(a) for a in self.atoms)


@dataclass(frozen=True)
class Rule:
    head: RuleHead
    bodies: tuple[RuleBody, ...]
    span: Optional[Span] = field(default=None, compare=False)

    def is_recursive(self) -> bool:
        return any(body.mentions(self.head.name) for body in self.bodies)

    def __repr__(self):
        if not self.bodies:
            return f"{self.head!r}."
        joined = ";\n    :- ".join(repr(b) for b in self.bodies)
        return f"{self.head!r} :- {joined}."


@dataclass(frozen=True)
class Program:
    """A parsed Datalog program: rules plus ``assume`` declarations."""

    rules: tuple[Rule, ...]
    assumptions: tuple[AssumeDecl, ...] = field(default=())
    name: str = "program"

    def rules_for(self, predicate: str) -> list[Rule]:
        return [r for r in self.rules if r.head.name == predicate]

    def head_predicates(self) -> list[str]:
        seen: list[str] = []
        for rule in self.rules:
            if rule.head.name not in seen:
                seen.append(rule.head.name)
        return seen

    def __repr__(self):
        parts = [repr(a) for a in self.assumptions]
        parts.extend(repr(r) for r in self.rules)
        return "\n".join(parts)
