"""Semantic analysis: identify the recursive rule and extract G, F', C.

This module is PowerLog's "Parser and Analyzer" stage (section 5.1): it
traverses the AST, identifies the recursive aggregate rule, and extracts

* the aggregate operation ``G`` (from the rule head),
* the non-aggregate operation ``F'`` (the expression defining the head
  aggregate variable in terms of the recursion variable and join-supplied
  parameters),
* the constant part ``C`` (bodies of the recursive rule that do not
  mention the recursive predicate, e.g. ``ry = 0.15`` in PageRank).

The supported class follows the paper's (section 2.1, footnote 2):
direct, linear recursion -- one recursive rule, each of whose bodies
mentions the head predicate at most once.  A rule may have *several*
recursive bodies (the paper's Program 2.b aggregates a key's previous
value together with neighbour contributions); each body carries its own
``F'``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.aggregates import Aggregate, get_aggregate
from repro.datalog.ast import (
    ComparisonAtom,
    PredicateAtom,
    Program,
    Rule,
    RuleBody,
    TerminationAtom,
    Variable,
    Wildcard,
)
from repro.datalog.errors import AnalysisError
from repro.expr import Expr, Interval, Var


@dataclass(frozen=True)
class RecursionSpec:
    """One recursive body of the recursive aggregate rule, decomposed.

    A rule may have several recursive bodies -- the paper's Program 2.b
    aggregates a key's previous value (``ry = r``) together with
    neighbour contributions -- and each body carries its own ``F'``.
    """

    body: RuleBody
    #: the single atom naming the head predicate, e.g. ``sssp(X, dx)``
    r_atom: PredicateAtom
    #: the remaining table predicates, e.g. ``edge(X, Y, dxy)``
    join_atoms: tuple[PredicateAtom, ...]
    #: expression atoms of the body (definitions and filters)
    comparisons: tuple[ComparisonAtom, ...]
    #: variable bound to the recursive atom's value position
    recursion_var: str
    #: key variables of the recursive atom (iteration index stripped)
    source_keys: tuple[str, ...]
    #: this body's ``F'`` over ``recursion_var`` and join parameters
    fprime: Expr = None  # type: ignore[assignment]
    #: free variables of ``fprime`` other than the recursion variable
    fprime_params: tuple[str, ...] = ()


@dataclass(frozen=True)
class ProgramAnalysis:
    """Everything later stages need to know about a parsed program."""

    program: Program
    head: str
    aggregate: Aggregate
    #: the head aggregate variable, e.g. ``dy`` in ``sssp(Y, min[dy])``
    agg_var: str
    #: head key variables (iteration index and aggregate stripped)
    key_vars: tuple[str, ...]
    #: replacement semantics (``rank(i+1, ...) :- rank(i, ...)``)?
    iterated: bool
    iter_var: Optional[str]
    #: every recursive body (Program 2.b style rules have several), the
    #: *primary* one -- the body with the most join atoms -- first
    recursions: tuple[RecursionSpec, ...]
    #: bodies of the recursive rule without the recursive predicate: ``C``
    constant_bodies: tuple[RuleBody, ...]
    #: non-recursive rules with the head predicate: define ``X⁰``
    base_rules: tuple[Rule, ...]
    #: rules for predicates other than the head (e.g. ``degree``)
    aux_rules: tuple[Rule, ...]
    #: predicates with no defining rule (the EDB: ``edge``, ``node``...)
    edb_predicates: tuple[str, ...]
    termination: Optional[TerminationAtom]
    #: parameter domains from ``assume`` declarations
    domains: dict[str, Interval] = field(default_factory=dict)

    @property
    def recursion(self) -> RecursionSpec:
        """The primary recursive body (most join atoms)."""
        return self.recursions[0]

    @property
    def fprime(self) -> Expr:
        """The primary body's ``F'``."""
        return self.recursion.fprime

    @property
    def fprime_params(self) -> tuple[str, ...]:
        return self.recursion.fprime_params

    @property
    def recursion_var(self) -> str:
        return self.recursion.recursion_var


def _domains_from_assumptions(program: Program) -> dict[str, Interval]:
    domains: dict[str, Interval] = {}
    for decl in program.assumptions:
        bound = float(decl.bound)
        current = domains.get(decl.variable, Interval.unbounded())
        if decl.op == ">":
            update = Interval(bound, math.inf, lo_strict=True)
        elif decl.op == ">=":
            update = Interval(bound, math.inf)
        elif decl.op == "<":
            update = Interval(-math.inf, bound, hi_strict=True)
        elif decl.op == "<=":
            update = Interval(-math.inf, bound)
        elif decl.op == "=":
            update = Interval(bound, bound)
        else:
            raise AnalysisError(
                f"unsupported assume operator {decl.op!r}", code="RA112"
            )
        domains[decl.variable] = _intersect(current, update)
    return domains


def _intersect(a: Interval, b: Interval) -> Interval:
    lo = max(a.lo, b.lo)
    hi = min(a.hi, b.hi)
    lo_strict = (a.lo_strict and a.lo >= b.lo) or (b.lo_strict and b.lo >= a.lo)
    hi_strict = (a.hi_strict and a.hi <= b.hi) or (b.hi_strict and b.hi <= a.hi)
    return Interval(lo, hi, lo_strict, hi_strict)


def _check_structure(program: Program) -> Rule:
    """Delegate the program-class checks to :mod:`repro.analysis.structure`.

    The structure pass is the single source of truth for the supported
    class (it replaced the ad-hoc checks that used to live here; its SCC
    decomposition also catches mutual recursion without self-loops).
    Imported lazily to keep ``repro.datalog`` importable on its own.
    """
    from repro.analysis.diagnostics import Severity
    from repro.analysis.structure import check_structure

    diagnostics, rule = check_structure(program)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        first = errors[0]
        raise AnalysisError(first.message, code=first.code, diagnostic=first)
    assert rule is not None  # no errors implies a unique recursive rule
    return rule


def _split_iteration(rule: Rule) -> tuple[bool, Optional[str]]:
    """Detect ``head(i+1, ...)`` iteration indexing in the head."""
    from repro.datalog.ast import IterationNext

    for position, term in enumerate(rule.head.terms):
        if isinstance(term, IterationNext):
            if position != 0:
                raise AnalysisError(
                    "iteration index must be the first argument", code="RA107"
                )
            return True, term.name
    return False, None


def _strip_iteration_terms(atom: PredicateAtom, iterated: bool) -> tuple:
    return atom.terms[1:] if iterated else atom.terms


def _decompose_recursive_body(
    body: RuleBody, head: str, iterated: bool, iter_var: Optional[str]
) -> RecursionSpec:
    r_atoms = [a for a in body.predicate_atoms() if a.name == head]
    if len(r_atoms) != 1:
        raise AnalysisError(
            f"non-linear recursion: body mentions {head!r} {len(r_atoms)} times",
            code="RA104",
        )
    r_atom = r_atoms[0]
    terms = list(_strip_iteration_terms(r_atom, iterated))
    if iterated:
        first = r_atom.terms[0]
        if not (isinstance(first, Variable) and first.name == iter_var):
            raise AnalysisError(
                f"recursive atom must use iteration index {iter_var!r} as first argument",
                code="RA107",
            )
    if not terms:
        raise AnalysisError(
            f"recursive atom {r_atom!r} has no value position", code="RA109"
        )
    value_term = terms[-1]
    if not isinstance(value_term, Variable):
        raise AnalysisError(
            f"value position of {r_atom!r} must be a variable, found {value_term!r}",
            code="RA109",
        )
    source_keys = []
    for term in terms[:-1]:
        if isinstance(term, Variable):
            source_keys.append(term.name)
        elif not isinstance(term, Wildcard):
            raise AnalysisError(
                f"key positions of {r_atom!r} must be variables, found {term!r}",
                code="RA108",
            )
    join_atoms = tuple(a for a in body.predicate_atoms() if a is not r_atom)
    return RecursionSpec(
        body=body,
        r_atom=r_atom,
        join_atoms=join_atoms,
        comparisons=tuple(body.comparison_atoms()),
        recursion_var=value_term.name,
        source_keys=tuple(source_keys),
    )


def _resolve_fprime(spec: RecursionSpec, agg_var: str) -> Expr:
    """Compute ``F'`` by resolving the definition chain of the head variable.

    Comparisons of the form ``v = expr`` where ``v`` is not bound by any
    predicate atom act as definitions; they are substituted into the head
    variable's definition until it only mentions the recursion variable
    and join-bound parameters.
    """
    bound_by_predicates: set[str] = set(spec.r_atom.variables())
    for atom in spec.join_atoms:
        bound_by_predicates.update(atom.variables())

    definitions: dict[str, Expr] = {}
    for comparison in spec.comparisons:
        if comparison.op != "=":
            continue
        if not isinstance(comparison.left, Var):
            continue
        name = comparison.left.name
        if name in bound_by_predicates:
            continue  # a filter such as ``X = 1`` on a join variable
        if name in definitions:
            raise AnalysisError(
                f"variable {name!r} defined more than once", code="RA121"
            )
        definitions[name] = comparison.right

    if agg_var in definitions:
        fprime = definitions[agg_var]
    elif agg_var == spec.recursion_var:
        # e.g. CC: ``cc(Y, min[v]) :- cc(X, v), edge(X, Y)`` -- identity F'.
        fprime = Var(spec.recursion_var)
    else:
        raise AnalysisError(
            f"aggregate variable {agg_var!r} is not defined in the recursive body",
            code="RA120",
        )

    # Substitute chained definitions, e.g. ``a = b * c, b = x + 1``.
    for _ in range(len(definitions) + 1):
        pending = {
            name: definitions[name]
            for name in fprime.free_vars()
            if name in definitions and name != agg_var
        }
        if not pending:
            break
        fprime = fprime.substitute(pending)
    else:
        raise AnalysisError("cyclic definitions in recursive body", code="RA122")
    return fprime


def analyze(program: Program) -> ProgramAnalysis:
    """Analyze a parsed program, extracting ``G``, ``F'`` and ``C``.

    Raises :class:`~repro.datalog.errors.AnalysisError` when the program
    falls outside the supported class of section 2.1.
    """
    rule = _check_structure(program)
    head = rule.head.name
    agg_spec = rule.head.aggregate
    assert agg_spec is not None  # RA105 checked by the structure pass
    aggregate = get_aggregate(agg_spec.op)

    iterated, iter_var = _split_iteration(rule)
    head_terms = rule.head.terms[1:] if iterated else rule.head.terms
    key_vars = [
        term.name for term in head_terms[:-1] if isinstance(term, Variable)
    ]

    recursive_bodies = [b for b in rule.bodies if b.mentions(head)]
    constant_bodies = tuple(b for b in rule.bodies if not b.mentions(head))
    specs = []
    for body in recursive_bodies:
        spec = _decompose_recursive_body(body, head, iterated, iter_var)
        fprime = _resolve_fprime(spec, agg_spec.variable)
        params = tuple(sorted(fprime.free_vars() - {spec.recursion_var}))
        specs.append(replace(spec, fprime=fprime, fprime_params=params))
    # the primary body is the one with the most joins (the "real" F');
    # self-preserving bodies like Program 2.b's ``ry = r`` sort last
    specs.sort(key=lambda s: len(s.join_atoms), reverse=True)

    base_rules = tuple(
        r for r in program.rules_for(head) if not r.is_recursive()
    )
    aux_rules = tuple(
        r for r in program.rules if r.head.name != head
    )

    defined = set(program.head_predicates())
    referenced: set[str] = set()
    for a_rule in program.rules:
        for body in a_rule.bodies:
            referenced.update(a.name for a in body.predicate_atoms())
    edb = tuple(sorted(referenced - defined))

    termination: Optional[TerminationAtom] = None
    for body in rule.bodies:
        for atom in body.termination_atoms():
            if termination is not None:
                raise AnalysisError("multiple termination clauses", code="RA111")
            termination = atom

    return ProgramAnalysis(
        program=program,
        head=head,
        aggregate=aggregate,
        agg_var=agg_spec.variable,
        key_vars=tuple(key_vars),
        iterated=iterated,
        iter_var=iter_var,
        recursions=tuple(specs),
        constant_bodies=constant_bodies,
        base_rules=base_rules,
        aux_rules=aux_rules,
        edb_predicates=edb,
        termination=termination,
        domains=_domains_from_assumptions(program),
    )
