"""Recursive-descent parser for the Datalog dialect.

The grammar (terminals in quotes)::

    program   := statement*
    statement := assume | rule
    assume    := 'assume' IDENT cmp NUMBER '.'
    rule      := head (':-' body ((';' | ';' ':-') body)*)? '.'
    head      := IDENT '(' headterm (',' headterm)* ')'
    headterm  := AGG '[' IDENT ']' | term
    body      := atom (',' atom)*
    atom      := termination | predicate | comparison
    termination := '{' AGG '[' IDENT ']' cmp NUMBER '}'
    predicate := IDENT '(' term (',' term)* ')'
    comparison := expr cmp expr
    term      := '_' | NUMBER | '-' NUMBER | STRING | IDENT ['+' '1']

Aggregate names double as ordinary identifiers elsewhere; known function
names (``relu`` etc.) are reserved inside expressions.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.aggregates import BUILTIN_AGGREGATES
from repro.datalog.ast import (
    AggregateSpec,
    AssumeDecl,
    ComparisonAtom,
    NumberConstant,
    PredicateAtom,
    Program,
    Rule,
    RuleBody,
    RuleHead,
    Span,
    SymbolConstant,
    TerminationAtom,
    Variable,
    Wildcard,
    IterationNext,
)
from repro.datalog.errors import ParseError
from repro.datalog.lexer import EOF, IDENT, NUMBER, PUNCT, STRING, Token, number_value, tokenize
from repro.expr import Call, Const, Expr, KNOWN_FUNCTIONS, Var

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _match(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # -- grammar ------------------------------------------------------------
    def parse_program(self, name: str) -> Program:
        rules: list[Rule] = []
        assumptions: list[AssumeDecl] = []
        while not self._check(EOF):
            if self._check(IDENT, "assume"):
                assumptions.append(self._parse_assume())
            else:
                rules.append(self._parse_rule())
        return Program(tuple(rules), tuple(assumptions), name=name)

    def _parse_assume(self) -> AssumeDecl:
        start = self._expect(IDENT, "assume")
        variable = self._expect(IDENT).value
        op = self._parse_cmp_op()
        sign = -1 if self._match(PUNCT, "-") else 1
        bound = number_value(self._expect(NUMBER)) * sign
        self._expect(PUNCT, ".")
        return AssumeDecl(variable, op, bound, span=Span(start.line, start.column))

    def _parse_cmp_op(self) -> str:
        token = self._peek()
        if token.kind == PUNCT and token.value in _COMPARISON_OPS:
            return self._advance().value
        raise ParseError(
            f"expected comparison operator, found {token.value!r}",
            token.line,
            token.column,
        )

    def _parse_rule(self) -> Rule:
        start = self._peek()
        head = self._parse_head()
        bodies: list[RuleBody] = []
        if self._match(PUNCT, ":-"):
            bodies.append(self._parse_body())
            while self._match(PUNCT, ";"):
                self._match(PUNCT, ":-")  # the paper writes ``; :- body``
                bodies.append(self._parse_body())
        self._expect(PUNCT, ".")
        return Rule(head, tuple(bodies), span=Span(start.line, start.column))

    def _parse_head(self) -> RuleHead:
        name = self._expect(IDENT).value
        self._expect(PUNCT, "(")
        terms: list[Union[AggregateSpec, object]] = [self._parse_headterm()]
        while self._match(PUNCT, ","):
            terms.append(self._parse_headterm())
        self._expect(PUNCT, ")")
        return RuleHead(name, tuple(terms))

    def _parse_headterm(self):
        token = self._peek()
        if (
            token.kind == IDENT
            and token.value in BUILTIN_AGGREGATES
            and self._peek(1).kind == PUNCT
            and self._peek(1).value == "["
        ):
            op = self._advance().value
            self._expect(PUNCT, "[")
            variable = self._expect(IDENT).value
            self._expect(PUNCT, "]")
            return AggregateSpec(op, variable)
        return self._parse_term()

    def _parse_term(self):
        if self._match(PUNCT, "_"):
            return Wildcard()
        if self._match(PUNCT, "-"):
            value = number_value(self._expect(NUMBER))
            return NumberConstant(-value)
        token = self._peek()
        if token.kind == NUMBER:
            return NumberConstant(number_value(self._advance()))
        if token.kind == STRING:
            return SymbolConstant(self._advance().value)
        if token.kind == IDENT:
            name = self._advance().value
            if self._check(PUNCT, "+"):
                # only ``i+1`` iteration markers are allowed in term position
                save = self._pos
                self._advance()
                one = self._match(NUMBER, "1")
                if one is not None:
                    return IterationNext(name)
                self._pos = save
            return Variable(name)
        raise ParseError(
            f"expected a term, found {token.value!r}", token.line, token.column
        )

    def _parse_body(self) -> RuleBody:
        atoms = [self._parse_atom()]
        while self._match(PUNCT, ","):
            atoms.append(self._parse_atom())
        return RuleBody(tuple(atoms))

    def _parse_atom(self):
        if self._check(PUNCT, "{"):
            return self._parse_termination()
        token = self._peek()
        looks_like_predicate = (
            token.kind == IDENT
            and token.value not in KNOWN_FUNCTIONS
            and self._peek(1).kind == PUNCT
            and self._peek(1).value == "("
        )
        if looks_like_predicate:
            return self._parse_predicate()
        return self._parse_comparison()

    def _parse_termination(self) -> TerminationAtom:
        self._expect(PUNCT, "{")
        op = self._expect(IDENT).value
        if op not in BUILTIN_AGGREGATES:
            token = self._peek()
            raise ParseError(
                f"unknown aggregate {op!r} in termination clause",
                token.line,
                token.column,
            )
        self._expect(PUNCT, "[")
        variable = self._expect(IDENT).value
        self._expect(PUNCT, "]")
        comparison = self._parse_cmp_op()
        if comparison not in ("<", "<="):
            raise ParseError("termination clauses must use '<' or '<='")
        threshold = number_value(self._expect(NUMBER))
        self._expect(PUNCT, "}")
        return TerminationAtom(op, variable, comparison, threshold)

    def _parse_predicate(self) -> PredicateAtom:
        name = self._expect(IDENT).value
        self._expect(PUNCT, "(")
        terms = [self._parse_term()]
        while self._match(PUNCT, ","):
            terms.append(self._parse_term())
        self._expect(PUNCT, ")")
        return PredicateAtom(name, tuple(terms))

    def _parse_comparison(self) -> ComparisonAtom:
        left = self._parse_expr()
        op = self._parse_cmp_op()
        right = self._parse_expr()
        return ComparisonAtom(left, op, right)

    # -- arithmetic expressions -----------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_additive()

    def _parse_additive(self) -> Expr:
        node = self._parse_multiplicative()
        while True:
            if self._match(PUNCT, "+"):
                node = node + self._parse_multiplicative()
            elif self._match(PUNCT, "-"):
                node = node - self._parse_multiplicative()
            else:
                return node

    def _parse_multiplicative(self) -> Expr:
        node = self._parse_unary()
        while True:
            if self._match(PUNCT, "*"):
                node = node * self._parse_unary()
            elif self._match(PUNCT, "/"):
                node = node / self._parse_unary()
            else:
                return node

    def _parse_unary(self) -> Expr:
        if self._match(PUNCT, "-"):
            return -self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == NUMBER:
            return Const(number_value(self._advance()))
        if self._match(PUNCT, "("):
            inner = self._parse_expr()
            self._expect(PUNCT, ")")
            return inner
        if token.kind == IDENT:
            name = self._advance().value
            if name in KNOWN_FUNCTIONS:
                self._expect(PUNCT, "(")
                args = [self._parse_expr()]
                while self._match(PUNCT, ","):
                    args.append(self._parse_expr())
                self._expect(PUNCT, ")")
                return Call(name, tuple(args))
            return Var(name)
        raise ParseError(
            f"expected an expression, found {token.value!r}", token.line, token.column
        )


def parse_program(source: str, name: str = "program") -> Program:
    """Parse Datalog source text into a :class:`~repro.datalog.ast.Program`."""
    return _Parser(tokenize(source)).parse_program(name)
