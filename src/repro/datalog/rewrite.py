"""Automatic rewriting into the equivalent incremental program.

Paper section 3.3: "our system can convert it [PageRank] to its
equivalent incremental program automatically and transparently to
users", showing Program 2.b "where the ranking score of each vertex is
monotonically increasing".

Given an analysed *iterated* additive program (the convertible
non-monotonic class: ``rank(i+1, ...) :- rank(i, ...)``), this module
emits the equivalent **accumulating** program: the iteration indexes are
dropped, the constant bodies ``C`` become base rules seeding the
accumulation (``rank(Y, 0.15) :- node(Y)`` -- Program 2.b's ``r2``), and
the recursive bodies keep their ``F'``.  Under MRA evaluation the
rewritten program's scores grow monotonically from the seed, exactly the
behaviour the paper describes; under naive evaluation it reaches the
same fixpoint as the original (Theorem 1's equivalence, which tests
verify on concrete graphs).

The engines never need this textual form -- they operate on the compiled
plan -- but it makes the conversion inspectable: the output is parseable,
passes the condition check, and runs on every engine.
"""

from __future__ import annotations

from repro.aggregates import AggregateKind
from repro.datalog.analyzer import ProgramAnalysis
from repro.datalog.ast import (
    AggregateSpec,
    PredicateAtom,
    Program,
    Rule,
    RuleBody,
    RuleHead,
    Variable,
)


def _strip_iteration_atom(atom: PredicateAtom, head: str) -> PredicateAtom:
    if atom.name != head:
        return atom
    return PredicateAtom(atom.name, atom.terms[1:])


def _strip_iteration_body(body: RuleBody, head: str) -> RuleBody:
    atoms = tuple(
        _strip_iteration_atom(a, head) if isinstance(a, PredicateAtom) else a
        for a in body.atoms
    )
    return RuleBody(atoms)


def rewrite_to_incremental(analysis: ProgramAnalysis) -> Program:
    """Build the Program-2.b-style accumulating equivalent.

    Only meaningful for iterated additive programs; everything else is
    already in incremental form and is returned unchanged.
    """
    if not analysis.iterated or analysis.aggregate.kind is not AggregateKind.ADDITIVE:
        return analysis.program

    head = analysis.head
    key_vars = analysis.key_vars
    agg_var = analysis.agg_var

    # base rules: the constant bodies seed the accumulation (for
    # PageRank: rank(Y, 0.15) :- node(Y), ry = 0.15).
    plain_head = RuleHead(
        head, tuple(Variable(v) for v in key_vars) + (Variable(agg_var),)
    )
    base_rules = [
        Rule(plain_head, (_strip_iteration_body(body, head),))
        for body in analysis.constant_bodies
    ]
    if not base_rules:
        # no constant part: the original (iteration-0) base rules seed it
        base_rules = [
            Rule(
                plain_head,
                tuple(
                    _strip_iteration_body(body, head) for body in rule.bodies
                ),
            )
            for rule in analysis.base_rules
        ]

    # recursive rule: the original recursive bodies, indexes dropped
    aggregate_head = RuleHead(
        head,
        tuple(Variable(v) for v in key_vars)
        + (AggregateSpec(analysis.aggregate.name, agg_var),),
    )
    recursive_rule = Rule(
        aggregate_head,
        tuple(
            _strip_iteration_body(spec.body, head)
            for spec in analysis.recursions
        ),
    )

    return Program(
        rules=tuple(analysis.aux_rules) + tuple(base_rules) + (recursive_rule,),
        assumptions=analysis.program.assumptions,
        name=f"{analysis.program.name}-incremental",
    )


def incremental_source(analysis: ProgramAnalysis) -> str:
    """The rewritten program as Datalog text (Program 2.b)."""
    return repr(rewrite_to_incremental(analysis))
