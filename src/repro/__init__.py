"""PowerLog reproduction: automating incremental and asynchronous
evaluation for recursive aggregate data processing (SIGMOD 2020).

Quickstart::

    from repro import check_source, get_program, PowerLog
    from repro.graphs import load_dataset

    report = check_source('''
        sssp(X, d) :- X = 0, d = 0.
        sssp(Y, min[dy]) :- sssp(X, dx), edge(X, Y, dxy), dy = dx + dxy.
    ''', name="sssp")
    assert report.mra_satisfiable

    system = PowerLog()
    result = system.run(get_program("sssp"), load_dataset("livej"))
    print(result.values[42], result.simulated_seconds)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.datalog` -- parser + analyzer (G / F' / C extraction)
* :mod:`repro.checker` -- automatic MRA condition verification
* :mod:`repro.aggregates` -- min/max/sum/count/mean operators
* :mod:`repro.engine` -- naive, semi-naive and MRA evaluation; MonoTable
* :mod:`repro.distributed` -- simulated cluster: sync/async/unified/AAP
* :mod:`repro.systems` -- SociaLite/Myria/BigDatalog/... baselines + PowerLog
* :mod:`repro.programs` -- the paper's fourteen programs (Table 1)
* :mod:`repro.graphs` -- generators, Table-2 dataset stand-ins, stats
* :mod:`repro.bench` -- regenerates every paper table and figure
* :mod:`repro.reference` -- independent oracles (tests only)
"""

from repro.datalog import parse_program, analyze
from repro.checker import check_source, check_program, check_analysis, CheckReport
from repro.aggregates import get_aggregate
from repro.engine import (
    Database,
    NaiveEvaluator,
    SemiNaiveEvaluator,
    MRAEvaluator,
    MonoTable,
    compile_plan,
    CompiledPlan,
    EvalResult,
    TerminationSpec,
)
from repro.distributed import (
    ClusterConfig,
    CostModel,
    SyncEngine,
    AsyncEngine,
    UnifiedEngine,
    AAPEngine,
)
from repro.programs import PROGRAMS, get_program, program_names
from repro.systems import PowerLog, SYSTEMS, get_system
from repro.graphs import Graph, load_dataset, dataset_names

__version__ = "1.0.0"

__all__ = [
    "parse_program",
    "analyze",
    "check_source",
    "check_program",
    "check_analysis",
    "CheckReport",
    "get_aggregate",
    "Database",
    "NaiveEvaluator",
    "SemiNaiveEvaluator",
    "MRAEvaluator",
    "MonoTable",
    "compile_plan",
    "CompiledPlan",
    "EvalResult",
    "TerminationSpec",
    "ClusterConfig",
    "CostModel",
    "SyncEngine",
    "AsyncEngine",
    "UnifiedEngine",
    "AAPEngine",
    "PROGRAMS",
    "get_program",
    "program_names",
    "PowerLog",
    "SYSTEMS",
    "get_system",
    "Graph",
    "load_dataset",
    "dataset_names",
    "__version__",
]
