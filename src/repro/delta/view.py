"""A versioned mutable view over an immutable :class:`~repro.graphs.Graph`.

``Graph`` stays a frozen value type (plans, engines and datasets all
assume edge lists never change under them).  A
:class:`MutableGraphView` layers versions on top: version 1 is the base
graph (weights materialised, see :mod:`repro.delta.model`), and every
:meth:`apply` produces version ``k+1`` from version ``k`` plus one
validated :class:`~repro.delta.model.GraphDelta`.  All versions and the
deltas that produced them stay addressable, which is what lets the
serving layer repair a fixpoint cached at version ``j`` up to the
current version without replaying the workload.
"""

from __future__ import annotations

from repro.delta.model import GraphDelta
from repro.graphs.graph import Graph


class MutableGraphView:
    """Versioned graph: ``graph_at(1)`` is the base, ``apply`` bumps."""

    def __init__(self, base: Graph, start_version: int = 1):
        if start_version < 1:
            raise ValueError("start_version must be >= 1")
        materialised = base if base.weights is not None else base.with_weights()
        self._start = start_version
        self._graphs: dict[int, Graph] = {start_version: materialised}
        #: version -> the delta that produced it (absent for the base)
        self._deltas: dict[int, GraphDelta] = {}
        self.version = start_version

    # -- accessors ------------------------------------------------------------
    @property
    def base_version(self) -> int:
        return self._start

    @property
    def graph(self) -> Graph:
        """The graph at the current (latest) version."""
        return self._graphs[self.version]

    def graph_at(self, version: int) -> Graph:
        try:
            return self._graphs[version]
        except KeyError:
            raise KeyError(
                f"no graph at version {version} "
                f"(have {self._start}..{self.version})"
            ) from None

    def delta_for(self, version: int) -> GraphDelta:
        """The delta that produced ``version`` from ``version - 1``."""
        try:
            return self._deltas[version]
        except KeyError:
            raise KeyError(
                f"no delta produced version {version} "
                f"(deltas exist for {sorted(self._deltas)})"
            ) from None

    def deltas_between(self, old: int, new: int) -> list:
        """The delta chain turning version ``old`` into version ``new``."""
        if not self._start <= old <= new <= self.version:
            raise KeyError(
                f"version range {old}..{new} outside {self._start}..{self.version}"
            )
        return [self._deltas[v] for v in range(old + 1, new + 1)]

    def history(self) -> list:
        """``(version, delta summary)`` pairs, oldest first."""
        return [
            (version, self._deltas[version].summary())
            for version in sorted(self._deltas)
        ]

    # -- mutation -------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> Graph:
        """Validate ``delta`` against the head, bump the version, return
        the new head graph.  On validation failure nothing changes."""
        mutated = delta.apply_to(self.graph)
        renamed = Graph(
            mutated.num_vertices,
            mutated.edges,
            mutated.weights,
            name=self._graphs[self._start].name,
            seed=mutated.seed,
        )
        self.version += 1
        self._graphs[self.version] = renamed
        self._deltas[self.version] = delta
        return renamed

    def advance_to(self, version: int, make_delta) -> Graph:
        """Apply ``make_delta(view, next_version)`` until ``version``.

        The callback builds the delta for each intermediate bump; used by
        the serving layer to lazily materialise versions on demand.
        """
        if version < self._start:
            raise KeyError(f"version {version} predates base {self._start}")
        while self.version < version:
            self.apply(make_delta(self, self.version + 1))
        return self.graph_at(version)

    def __repr__(self):
        return (
            f"MutableGraphView({self.graph.name}: versions "
            f"{self._start}..{self.version}, head {self.graph.num_vertices}v/"
            f"{self.graph.num_edges}e)"
        )


def view_of(graph: Graph, start_version: int = 1) -> MutableGraphView:
    """Convenience constructor mirroring :func:`repro.graphs` factories."""
    return MutableGraphView(graph, start_version=start_version)


__all__ = ["MutableGraphView", "view_of"]
