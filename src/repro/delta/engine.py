"""Fixpoint repair under graph deltas (the incremental engine).

Instead of diffing raw edge lists, the engine diffs *compiled plans*:
the old and new graphs are compiled through the ordinary
:func:`~repro.engine.plan.compile_plan` path and the repair works off
the multiset difference of their dependency edges plus the diff of
their base facts (``X⁰``) and constants (``C``).  That way every EDB
builder quirk -- symmetrised edges (CC), degree-normalised parameters,
auxiliary joins -- is handled by the same code that from-scratch
evaluation uses, and the repair is provably against the same plan the
oracle would run.

Three strategies, picked per delta by :func:`choose_strategy`:

* ``frontier`` -- pure growth (no plan edge removed, no base fact
  regressed).  The kernel is built over the *new* plan with the prior
  fixpoint as its accumulation column; the pending queue is seeded with
  the improved base facts and one ``F'(x_src)`` contribution per added
  plan edge, then the ordinary MRA round loop runs to convergence.
  Exact for selective aggregates (the fixpoint of a monotone ``F'``
  under min/max is order-independent) and for additive ones (``F'``
  linear-homogeneous by the Theorem-1 pre-screen, so contributions sum
  path-by-path in any order).

* ``rederive`` -- bounded re-derivation for deletions under *selective*
  aggregates.  The affected set is the forward closure, over the union
  of old and new plan edges, of every key that lost a derivation (the
  destinations of removed plan edges and the keys whose base fact
  regressed).  The closure is forward-closed, so no plan edge leaves
  it: values outside it keep their exact justification and are carried
  over; values inside are recomputed from their base facts plus the
  boundary in-edges ``F'(x_src)`` from surviving keys.

* ``recompute`` -- everything else (additive deletions, non-monotone or
  iterated programs): delegate to the plain
  :class:`~repro.engine.mra.MRAEvaluator` on the new plan.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.delta.model import GraphDelta
from repro.delta.view import MutableGraphView
from repro.engine.mra import MRAEvaluator
from repro.engine.plan import CompiledPlan
from repro.engine.result import EvalResult, WorkCounters
from repro.engine.termination import TerminationTracker
from repro.obs import ensure_obs
from repro.runtime import get_kernel, record_backend_metrics, resolve_backend, resolve_backend_for_plan

ENGINE_NAME = "incremental"

#: strategy names, cheapest first
STRATEGIES = ("frontier", "rederive", "recompute")


# -- plan diffing --------------------------------------------------------------


def plan_signature(plan: CompiledPlan) -> Counter:
    """Multiset of ``(src, dst, params, body)`` dependency edges.

    Compiled ``F'`` closures are fresh objects on every compile, so the
    *index* of the recursive body (stable across compiles of the same
    analysed program) identifies which ``F'`` an edge applies.
    """
    body_of = {id(fn): index for index, fn in enumerate(plan.fprime_fns)}
    signature: Counter = Counter()
    for src, edges in plan.out_edges.items():
        for dst, params, fn in edges:
            signature[(src, dst, params, body_of[id(fn)])] += 1
    return signature


@dataclass
class PlanDiff:
    """What changed between two compiles of the same program."""

    #: plan edges present in the new compile only (multiset)
    added: Counter
    #: plan edges present in the old compile only (multiset)
    removed: Counter
    #: base-fact / constant seeds to push (full value for selective
    #: aggregates, exact additive delta for additive ones)
    improved: dict
    #: keys whose base facts got worse or disappeared -- a lost
    #: derivation the frontier fast path cannot express
    regressed: set

    @property
    def is_pure_growth(self) -> bool:
        return not self.removed and not self.regressed

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.improved or self.regressed)


def _diff_values(aggregate, old: dict, new: dict, improved: dict, regressed: set) -> None:
    """Diff one base-fact map (``initial`` or ``constants``) into seeds.

    Which semiring law the aggregate's ``⊕`` satisfies decides how a
    changed base value turns into a seed: under idempotent ``⊕`` an
    improving value can simply be re-folded (``x ⊕ x = x`` absorbs the
    overlap), while under invertible ``⊕`` the seed must be the exact
    difference ``G⁻(new, old)`` so the old contribution is retracted.
    A change that is neither (a regression under idempotent ``⊕``)
    cannot be expressed as a seed at all and marks the key regressed.
    """
    combine = aggregate.combine
    for key, value in new.items():
        prior = old.get(key)
        if prior is None:
            seed = value
        elif value == prior:
            continue
        elif aggregate.plus_idempotent:
            if combine(prior, value) != prior:
                seed = value
            else:
                regressed.add(key)
                continue
        else:
            seed = aggregate.subtract(value, prior)
            if seed is None:
                continue
        current = improved.get(key)
        improved[key] = seed if current is None else combine(current, seed)
    for key in old:
        if key not in new:
            regressed.add(key)


def diff_plans(old_plan: CompiledPlan, new_plan: CompiledPlan) -> PlanDiff:
    old_signature = plan_signature(old_plan)
    new_signature = plan_signature(new_plan)
    improved: dict = {}
    regressed: set = set()
    aggregate = new_plan.aggregate
    _diff_values(aggregate, old_plan.initial, new_plan.initial, improved, regressed)
    _diff_values(aggregate, old_plan.constants, new_plan.constants, improved, regressed)
    return PlanDiff(
        added=new_signature - old_signature,
        removed=old_signature - new_signature,
        improved=improved,
        regressed=regressed,
    )


def choose_strategy(mode: str, diff: PlanDiff) -> str:
    """Pick the repair strategy for one delta.

    ``mode`` is the static verdict of
    :func:`repro.analysis.incremental.classify_incremental`, which is a
    statement about the aggregate's semiring ``⊕``: ``"full"`` needs an
    idempotent ``⊕`` over a natural order (re-deriving the deletion cone
    re-folds surviving contributions without double counting, which is
    exactly ``x ⊕ x = x``), ``"insert-only"`` needs an invertible ``⊕``
    (new edges fold in exactly, but a deletion would have to retract
    derived mass through ``G⁻`` along every path -- so pure growth
    only), and ``"none"`` means neither law holds or exactness is
    unproven.
    """
    if mode not in ("full", "insert-only"):
        return "recompute"
    if diff.is_pure_growth:
        return "frontier"
    if mode == "full":
        return "rederive"
    return "recompute"


# -- the repair ---------------------------------------------------------------


@dataclass
class RepairResult:
    """One repaired fixpoint plus how (and how hard) it was repaired."""

    result: EvalResult
    strategy: str
    edges_added: int = 0
    edges_removed: int = 0
    #: seed pushes that started the repair (frontier/rederive)
    frontier_size: int = 0
    #: keys whose value was discarded and re-derived (rederive only)
    reset_keys: int = 0
    #: cost-model currency of the repair rounds (accumulate attempts +
    #: edge applications); 0 for the recompute strategy, which is priced
    #: by the full run it delegates to
    ops: int = 0

    @property
    def values(self) -> dict:
        return self.result.values

    @property
    def counters(self) -> WorkCounters:
        return self.result.counters

    @property
    def stop_reason(self) -> str:
        return self.result.stop_reason

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "stop_reason": self.stop_reason,
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "frontier_size": self.frontier_size,
            "reset_keys": self.reset_keys,
            "ops": self.ops,
            "rounds": self.counters.iterations,
            "keys": len(self.values),
        }


def _added_edge_seeds(new_plan: CompiledPlan, added: Counter, values: dict) -> list:
    """One ``F'(x_src)`` contribution per added plan edge with a valued
    source.  Sources without a prior value need no seed: the added edge
    lives in the kernel's plan, so any value they later gain propagates
    through it during the repair rounds."""
    if not added:
        return []
    remaining = Counter(added)
    body_of = {id(fn): index for index, fn in enumerate(new_plan.fprime_fns)}
    seeds: list = []
    for src, edges in new_plan.out_edges.items():
        value = values.get(src)
        for dst, params, fn in edges:
            signature = (src, dst, params, body_of[id(fn)])
            if remaining.get(signature, 0) > 0:
                remaining[signature] -= 1
                if value is not None:
                    seeds.append((dst, fn(value, *params)))
    return seeds


def _forward_closure(seeds, old_plan: CompiledPlan, new_plan: CompiledPlan) -> set:
    """Forward closure of ``seeds`` over the union of both plans' edges."""
    adjacency: dict = {}
    for plan in (old_plan, new_plan):
        for src, edges in plan.out_edges.items():
            adjacency.setdefault(src, set()).update(dst for dst, _, _ in edges)
    affected = set(seeds)
    stack = list(affected)
    while stack:
        key = stack.pop()
        for dst in adjacency.get(key, ()):
            if dst not in affected:
                affected.add(dst)
                stack.append(dst)
    return affected


def _run_rounds(kernel, termination, counters: WorkCounters, obs) -> tuple:
    tracker = TerminationTracker(termination)
    stop = None
    ops = 0
    while stop is None:
        round_result = kernel.step()
        counters.iterations += 1
        ops += round_result.ops
        tracker.record(round_result.changed, round_result.magnitude)
        stop = tracker.stop_reason()
        if obs.enabled:
            obs.trace.emit(
                "delta.epoch",
                engine=ENGINE_NAME,
                round=counters.iterations,
                changed=round_result.changed,
                delta=round_result.magnitude,
            )
    return stop, tracker, ops


def repair_plan(
    old_plan: CompiledPlan,
    new_plan: CompiledPlan,
    prior_values: dict,
    *,
    mode: str,
    backend: Optional[str] = None,
    obs=None,
    program: str = "",
) -> RepairResult:
    """Repair ``prior_values`` (the fixpoint of ``old_plan``) into the
    fixpoint of ``new_plan``; see the module docstring for strategies."""
    obs = ensure_obs(obs)
    backend = resolve_backend_for_plan(new_plan, backend)
    diff = diff_plans(old_plan, new_plan)
    strategy = choose_strategy(mode, diff)
    label = program or new_plan.name

    if strategy == "recompute":
        full = MRAEvaluator(new_plan, obs=obs, backend=backend).run()
        repair = RepairResult(
            result=full,
            strategy="recompute",
            edges_added=sum(diff.added.values()),
            edges_removed=sum(diff.removed.values()),
        )
        _record_repair(obs, repair, label, backend, absorb=False)
        return repair

    counters = WorkCounters()
    kernel_cls = get_kernel(backend)

    if strategy == "frontier":
        kernel = kernel_cls.from_plan(
            new_plan, counters=counters, initial=dict(prior_values)
        )
        seeds = list(diff.improved.items())
        seeds.extend(_added_edge_seeds(new_plan, diff.added, prior_values))
        reset_keys = 0
    else:  # rederive
        lost = {key for (_, key, _, _) in diff.removed}
        lost.update(diff.regressed)
        lost.update(key for key in prior_values if key not in new_plan.keys)
        affected = _forward_closure(lost, old_plan, new_plan)
        surviving = {
            key: value
            for key, value in prior_values.items()
            if key not in affected and key in new_plan.keys
        }
        kernel = kernel_cls.from_plan(new_plan, counters=counters, initial=surviving)
        seeds = []
        for key in affected:
            if key in new_plan.initial:
                seeds.append((key, new_plan.initial[key]))
            if key in new_plan.constants:
                seeds.append((key, new_plan.constants[key]))
        # boundary: every new-plan in-edge from a surviving valued source
        for src, edges in new_plan.out_edges.items():
            value = surviving.get(src)
            if value is None:
                continue
            for dst, params, fn in edges:
                if dst in affected:
                    seeds.append((dst, fn(value, *params)))
        # growth outside the affected region (mixed insert+delete batches);
        # duplicates with the boundary seeds are absorbed by idempotence
        seeds.extend(_added_edge_seeds(new_plan, diff.added, surviving))
        seeds.extend(
            (key, value)
            for key, value in diff.improved.items()
            if key not in affected
        )
        reset_keys = len(affected)

    kernel.push_many(seeds)
    stop, tracker, ops = _run_rounds(kernel, new_plan.termination, counters, obs)

    result = EvalResult(
        values=kernel.result(),
        stop_reason=stop,
        counters=counters,
        engine=ENGINE_NAME,
        trace=tracker.history,
        backend=backend,
    )
    repair = RepairResult(
        result=result,
        strategy=strategy,
        edges_added=sum(diff.added.values()),
        edges_removed=sum(diff.removed.values()),
        frontier_size=len(seeds),
        reset_keys=reset_keys,
        ops=ops,
    )
    _record_repair(obs, repair, label, backend, absorb=True)
    return repair


def _record_repair(obs, repair: RepairResult, program: str, backend: str, absorb: bool) -> None:
    if not obs.enabled:
        return
    metrics = obs.metrics
    metrics.inc("delta.repairs", strategy=repair.strategy, program=program)
    if repair.edges_added:
        metrics.inc("delta.plan_edges_added", repair.edges_added, program=program)
    if repair.edges_removed:
        metrics.inc("delta.plan_edges_removed", repair.edges_removed, program=program)
    if repair.frontier_size:
        metrics.inc("delta.frontier_seeds", repair.frontier_size, program=program)
    if repair.reset_keys:
        metrics.inc("delta.keys_reset", repair.reset_keys, program=program)
    if absorb:
        metrics.absorb_work_counters(repair.counters, engine=ENGINE_NAME)
        record_backend_metrics(metrics, ENGINE_NAME, backend)
    obs.trace.emit(
        "delta.repair",
        program=program,
        strategy=repair.strategy,
        stop=repair.stop_reason,
        rounds=repair.counters.iterations,
        frontier=repair.frontier_size,
        reset=repair.reset_keys,
        edges_added=repair.edges_added,
        edges_removed=repair.edges_removed,
    )


# -- the engine facade --------------------------------------------------------


class IncrementalEngine:
    """Maintain one program's fixpoint over a :class:`MutableGraphView`.

    ``bootstrap()`` establishes the initial fixpoint with the plain MRA
    evaluator; every ``apply(delta)`` mutates the view and repairs the
    fixpoint in place.  The engine consults
    :func:`repro.analysis.incremental.classify_incremental` once to
    learn which strategies the program is certified for.
    """

    engine_name = ENGINE_NAME

    def __init__(
        self,
        program,
        graph=None,
        *,
        view: Optional[MutableGraphView] = None,
        backend: Optional[str] = None,
        obs=None,
    ):
        from repro.analysis.incremental import classify_incremental
        from repro.programs import get_program

        self.spec = get_program(program) if isinstance(program, str) else program
        if view is None:
            if graph is None:
                raise ValueError("IncrementalEngine needs a graph or a view")
            view = MutableGraphView(graph)
        self.view = view
        self.backend = resolve_backend(backend)
        self.obs = ensure_obs(obs)
        self.verdict = classify_incremental(self.spec.analysis())
        self._plan: Optional[CompiledPlan] = None
        self._values: Optional[dict] = None
        self._fixpoint_version: Optional[int] = None

    @property
    def values(self) -> dict:
        if self._values is None:
            raise RuntimeError("call bootstrap() (or apply a delta) first")
        return self._values

    @property
    def fixpoint_version(self) -> Optional[int]:
        """View version the maintained fixpoint corresponds to."""
        return self._fixpoint_version

    def bootstrap(self) -> EvalResult:
        """Full from-scratch evaluation at the view's current version."""
        plan = self.spec.plan(self.view.graph)
        result = MRAEvaluator(plan, obs=self.obs, backend=self.backend).run()
        self._plan = plan
        self._values = result.values
        self._fixpoint_version = self.view.version
        if self.obs.enabled:
            self.obs.trace.emit(
                "delta.bootstrap",
                program=self.spec.name,
                version=self.view.version,
                keys=len(result.values),
            )
        return result

    def apply(self, delta: GraphDelta) -> RepairResult:
        """Apply one delta to the view and repair the fixpoint."""
        if self._plan is None:
            self.bootstrap()
        self.view.apply(delta)
        return self.refresh()

    def refresh(self) -> RepairResult:
        """Re-align the fixpoint with the view's current head version
        (covers views mutated externally, possibly by several deltas)."""
        if self._plan is None or self._values is None:
            self.bootstrap()
        assert self._plan is not None and self._values is not None
        new_plan = self.spec.plan(self.view.graph)
        repair = repair_plan(
            self._plan,
            new_plan,
            self._values,
            mode=self.verdict.mode,
            backend=self.backend,
            obs=self.obs,
            program=self.spec.name,
        )
        self._plan = new_plan
        self._values = repair.result.values
        self._fixpoint_version = self.view.version
        return repair
