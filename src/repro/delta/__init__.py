"""Delta ingestion and incremental fixpoint repair.

The subsystem that turns the repo's from-scratch evaluators into an
incrementally maintained service:

* :mod:`repro.delta.model`  -- :class:`GraphDelta` batches (validated
  edge/vertex inserts, deletes, weight updates) and the seeded
  :func:`random_delta` generator;
* :mod:`repro.delta.view`   -- :class:`MutableGraphView`, the versioned
  mutable facade over the immutable :class:`~repro.graphs.Graph`;
* :mod:`repro.delta.engine` -- plan diffing and the
  :class:`IncrementalEngine` with its ``frontier`` / ``rederive`` /
  ``recompute`` repair strategies.

Which strategies a program is certified for is decided statically by
:func:`repro.analysis.incremental.classify_incremental` (diagnostics
RA320/RA321/RA322).
"""

from repro.delta.engine import (
    ENGINE_NAME,
    STRATEGIES,
    IncrementalEngine,
    PlanDiff,
    RepairResult,
    choose_strategy,
    diff_plans,
    plan_signature,
    repair_plan,
)
from repro.delta.model import (
    DEFAULT_WEIGHT,
    DeltaValidationError,
    GraphDelta,
    random_delta,
)
from repro.delta.view import MutableGraphView, view_of

__all__ = [
    "ENGINE_NAME",
    "STRATEGIES",
    "IncrementalEngine",
    "PlanDiff",
    "RepairResult",
    "choose_strategy",
    "diff_plans",
    "plan_signature",
    "repair_plan",
    "DEFAULT_WEIGHT",
    "DeltaValidationError",
    "GraphDelta",
    "random_delta",
    "MutableGraphView",
    "view_of",
]
