"""The :class:`GraphDelta` batch model and its validation policy.

A delta is one *atomic* batch of graph mutations: edge inserts (with
optional weights), edge deletes, weight updates, appended vertices and
vertex removals.  Validation is strict -- a malformed batch raises
:class:`DeltaValidationError` before anything is applied, so a
:class:`~repro.delta.view.MutableGraphView` can never end up in a
half-mutated state:

* an inserted edge must not already exist (use ``update_weights``), must
  not be duplicated inside the batch, and must not be a self loop unless
  ``allow_self_loops`` is set;
* deletes and weight updates must name existing edges (dangling deletes
  are errors, not no-ops), and an edge cannot be both deleted and
  updated in one batch;
* ``remove_vertices`` uses tombstone semantics: incident edges are
  dropped but the vertex id is never reused and ``num_vertices`` does
  not shrink, so keys remain stable across versions.

Weights are always materialised before the first mutation:
``Graph.generate_weights`` derives weights from the *edge list* and the
seed, so mutating an unweighted graph lazily would silently re-roll
every weight.  :meth:`GraphDelta.apply_to` therefore pins the base
weights first and only then edits the edge list.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.graphs.graph import Graph


class DeltaValidationError(ValueError):
    """A :class:`GraphDelta` batch is inconsistent with its base graph."""


#: default weight for inserts that do not specify one
DEFAULT_WEIGHT = 1


@dataclass(frozen=True)
class GraphDelta:
    """One batch of graph mutations, validated against a base graph."""

    #: ``(src, dst, weight)`` triples; ``weight=None`` means
    #: :data:`DEFAULT_WEIGHT`
    insert_edges: tuple = ()
    #: ``(src, dst)`` pairs that must exist in the base graph
    delete_edges: tuple = ()
    #: ``(src, dst, weight)`` for existing edges
    update_weights: tuple = ()
    #: number of fresh vertices appended after ``num_vertices``
    add_vertices: int = 0
    #: tombstoned vertices: incident edges dropped, id slot kept
    remove_vertices: tuple = ()
    allow_self_loops: bool = False

    def __post_init__(self):
        object.__setattr__(
            self,
            "insert_edges",
            tuple(
                (int(s), int(d), w if w is None else float(w))
                for s, d, w in (
                    e if len(e) == 3 else (*e, None) for e in self.insert_edges
                )
            ),
        )
        object.__setattr__(
            self, "delete_edges", tuple((int(s), int(d)) for s, d in self.delete_edges)
        )
        object.__setattr__(
            self,
            "update_weights",
            tuple((int(s), int(d), float(w)) for s, d, w in self.update_weights),
        )
        object.__setattr__(self, "remove_vertices", tuple(int(v) for v in self.remove_vertices))

    # -- shape ----------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not (
            self.insert_edges
            or self.delete_edges
            or self.update_weights
            or self.add_vertices
            or self.remove_vertices
        )

    @property
    def is_insert_only(self) -> bool:
        """Pure growth: no facts are retracted and no weights change.

        Insert-only deltas are the fast path of the incremental engine --
        the prior fixpoint stays a valid lower (min) / upper (max) bound
        and additive contributions only ever gain terms.
        """
        return not (self.delete_edges or self.update_weights or self.remove_vertices)

    def summary(self) -> dict:
        return {
            "insert_edges": len(self.insert_edges),
            "delete_edges": len(self.delete_edges),
            "update_weights": len(self.update_weights),
            "add_vertices": self.add_vertices,
            "remove_vertices": len(self.remove_vertices),
            "insert_only": self.is_insert_only,
        }

    # -- validation -----------------------------------------------------------
    def validate(self, graph: Graph) -> None:
        """Raise :class:`DeltaValidationError` unless the batch is applicable."""
        bound = graph.num_vertices + self.add_vertices
        existing = set(graph.edges)
        removed_vertices = set(self.remove_vertices)

        if self.add_vertices < 0:
            raise DeltaValidationError("add_vertices must be non-negative")

        seen_removed: set = set()
        for vertex in self.remove_vertices:
            if not 0 <= vertex < graph.num_vertices:
                raise DeltaValidationError(
                    f"remove_vertices: vertex {vertex} is not in the graph "
                    f"(0..{graph.num_vertices - 1})"
                )
            if vertex in seen_removed:
                raise DeltaValidationError(
                    f"remove_vertices: vertex {vertex} listed twice"
                )
            seen_removed.add(vertex)

        deletes = set()
        for pair in self.delete_edges:
            if pair in deletes:
                raise DeltaValidationError(f"delete_edges: edge {pair} listed twice")
            if pair not in existing:
                raise DeltaValidationError(
                    f"delete_edges: edge {pair} does not exist (dangling delete)"
                )
            deletes.add(pair)

        seen_updates: set = set()
        for src, dst, _ in self.update_weights:
            pair = (src, dst)
            if pair in seen_updates:
                raise DeltaValidationError(
                    f"update_weights: edge {pair} listed twice"
                )
            if pair not in existing:
                raise DeltaValidationError(
                    f"update_weights: edge {pair} does not exist"
                )
            if pair in deletes:
                raise DeltaValidationError(
                    f"update_weights: edge {pair} is also deleted in this batch"
                )
            seen_updates.add(pair)

        seen_inserts: set = set()
        for src, dst, _ in self.insert_edges:
            pair = (src, dst)
            if not (0 <= src < bound and 0 <= dst < bound):
                raise DeltaValidationError(
                    f"insert_edges: edge {pair} is out of range "
                    f"(graph has {graph.num_vertices} vertices, "
                    f"{self.add_vertices} added)"
                )
            if src == dst and not self.allow_self_loops:
                raise DeltaValidationError(
                    f"insert_edges: self loop {pair} "
                    "(set allow_self_loops to permit)"
                )
            if pair in seen_inserts:
                raise DeltaValidationError(
                    f"insert_edges: edge {pair} listed twice in one batch"
                )
            if pair in existing and pair not in deletes:
                raise DeltaValidationError(
                    f"insert_edges: edge {pair} already exists "
                    "(use update_weights to change its weight)"
                )
            if src in removed_vertices or dst in removed_vertices:
                raise DeltaValidationError(
                    f"insert_edges: edge {pair} touches a vertex removed "
                    "in the same batch"
                )
            seen_inserts.add(pair)

    # -- application ----------------------------------------------------------
    def apply_to(self, graph: Graph) -> Graph:
        """Validate, then return the mutated graph (the base is untouched).

        The result always carries materialised weights (see module
        docstring); surviving edges keep their original order, inserts
        are appended in batch order, so the mutation is deterministic.
        """
        self.validate(graph)
        base = graph if graph.weights is not None else graph.with_weights()

        removed_pairs = set(self.delete_edges)
        removed_vertices = set(self.remove_vertices)
        updates = {(src, dst): weight for src, dst, weight in self.update_weights}

        edges: list = []
        weights: list = []
        for (src, dst), weight in zip(base.edges, base.weights):
            if (src, dst) in removed_pairs:
                continue
            if src in removed_vertices or dst in removed_vertices:
                continue
            edges.append((src, dst))
            weights.append(updates.get((src, dst), weight))
        for src, dst, weight in self.insert_edges:
            edges.append((src, dst))
            weights.append(DEFAULT_WEIGHT if weight is None else weight)

        return Graph(
            base.num_vertices + self.add_vertices,
            edges,
            weights,
            name=base.name,
            seed=base.seed,
        )

    # -- serialisation (the ``repro delta`` CLI file format) -------------------
    def to_dict(self) -> dict:
        return {
            "insert_edges": [list(edge) for edge in self.insert_edges],
            "delete_edges": [list(edge) for edge in self.delete_edges],
            "update_weights": [list(edge) for edge in self.update_weights],
            "add_vertices": self.add_vertices,
            "remove_vertices": list(self.remove_vertices),
            "allow_self_loops": self.allow_self_loops,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GraphDelta":
        known = {
            "insert_edges",
            "delete_edges",
            "update_weights",
            "add_vertices",
            "remove_vertices",
            "allow_self_loops",
        }
        unknown = set(payload) - known
        if unknown:
            raise DeltaValidationError(
                f"unknown delta fields: {sorted(unknown)} (known: {sorted(known)})"
            )
        return cls(
            insert_edges=tuple(tuple(e) for e in payload.get("insert_edges", ())),
            delete_edges=tuple(tuple(e) for e in payload.get("delete_edges", ())),
            update_weights=tuple(tuple(e) for e in payload.get("update_weights", ())),
            add_vertices=int(payload.get("add_vertices", 0)),
            remove_vertices=tuple(payload.get("remove_vertices", ())),
            allow_self_loops=bool(payload.get("allow_self_loops", False)),
        )

    @classmethod
    def from_json(cls, text: str) -> "GraphDelta":
        return cls.from_dict(json.loads(text))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def random_delta(
    graph: Graph,
    seed: int,
    insert_edges: int = 0,
    delete_edges: int = 0,
    update_weights: int = 0,
    acyclic: bool = False,
    weight_range: tuple = (1, 9),
) -> GraphDelta:
    """A deterministic random mutation batch over ``graph``.

    Uses ``random.Random`` (not numpy) so delta streams are reproducible
    on numpy-less installs.  ``acyclic=True`` restricts inserts to
    ``src < dst`` -- the invariant :func:`repro.graphs.random_dag`
    guarantees -- so path-counting programs stay well-defined.
    """
    rng = random.Random(seed)
    existing = set(graph.edges)
    n = graph.num_vertices
    low, high = weight_range

    inserts: list = []
    chosen: set = set()
    attempts = 0
    while len(inserts) < insert_edges and attempts < 50 * max(1, insert_edges):
        attempts += 1
        src = rng.randrange(n)
        dst = rng.randrange(n)
        if acyclic and src >= dst:
            src, dst = dst, src
        if src == dst:
            continue
        if (src, dst) in existing or (src, dst) in chosen:
            continue
        chosen.add((src, dst))
        inserts.append((src, dst, rng.randint(low, high)))

    deletable = sorted(existing)
    deletes = (
        [tuple(pair) for pair in rng.sample(deletable, min(delete_edges, len(deletable)))]
        if delete_edges
        else []
    )
    deleted = set(deletes)

    updatable = [pair for pair in deletable if pair not in deleted]
    updates = (
        [
            (src, dst, rng.randint(low, high))
            for src, dst in rng.sample(updatable, min(update_weights, len(updatable)))
        ]
        if update_weights
        else []
    )

    return GraphDelta(
        insert_edges=tuple(inserts),
        delete_edges=tuple(deletes),
        update_weights=tuple(updates),
    )
