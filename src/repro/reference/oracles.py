"""Ground-truth implementations (see package docstring)."""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable, Mapping

from repro.runtime.compat import np

from repro.graphs.graph import Graph


# --------------------------------------------------------------------------
# shortest paths and components
# --------------------------------------------------------------------------
def dijkstra_sssp(graph: Graph, source: int = 0) -> dict[int, float]:
    """Single-source shortest paths by Dijkstra (binary heap)."""
    adjacency: list[list[tuple[int, object]]] = [[] for _ in range(graph.num_vertices)]
    for src, dst, weight in graph.weighted_edges():
        adjacency[src].append((dst, weight))
    distances: dict[int, float] = {source: 0}
    frontier: list[tuple[float, int]] = [(0, source)]
    visited: set[int] = set()
    while frontier:
        distance, vertex = heapq.heappop(frontier)
        if vertex in visited:
            continue
        visited.add(vertex)
        for neighbour, weight in adjacency[vertex]:
            candidate = distance + weight
            if neighbour not in distances or candidate < distances[neighbour]:
                distances[neighbour] = candidate
                heapq.heappush(frontier, (candidate, neighbour))
    return distances


def union_find_components(graph: Graph) -> dict[int, int]:
    """Minimum vertex id of each weakly connected component (union-find)."""
    parent = list(range(graph.num_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for src, dst in graph.edges:
        union(src, dst)
    return {v: find(v) for v in range(graph.num_vertices)}


# --------------------------------------------------------------------------
# spectral programs: exact linear solves
# --------------------------------------------------------------------------
def _normalized_matrix(graph: Graph, factor: float) -> np.ndarray:
    """``M[dst, src] = factor / outdeg(src)`` for each edge (dense)."""
    n = graph.num_vertices
    degrees = graph.out_degrees()
    matrix = np.zeros((n, n))
    for src, dst in graph.edges:
        matrix[dst, src] += factor / degrees[src]
    return matrix


def dense_pagerank(
    graph: Graph, damping: float = 0.85, constant: float = 0.15
) -> dict[int, float]:
    """Exact fixpoint of ``r = constant + damping * M r`` by linear solve."""
    n = graph.num_vertices
    matrix = _normalized_matrix(graph, damping)
    solution = np.linalg.solve(np.eye(n) - matrix, np.full(n, constant))
    return {v: float(solution[v]) for v in range(n)}


def dense_adsorption(
    graph: Graph,
    continue_prob: float = 0.9,
    damping: float = 0.7,
    injection: float = 0.25,
) -> dict[int, float]:
    """Exact fixpoint of the Program-4 recursion by linear solve."""
    n = graph.num_vertices
    matrix = _normalized_matrix(graph, damping * continue_prob)
    solution = np.linalg.solve(np.eye(n) - matrix, np.full(n, injection))
    return {v: float(solution[v]) for v in range(n)}


def dense_katz(
    graph: Graph, alpha: float = 0.5, source: int = 0, score: float = 1000.0
) -> dict[int, float]:
    """Exact fixpoint of the (normalised) Katz recursion by linear solve."""
    n = graph.num_vertices
    matrix = _normalized_matrix(graph, alpha)
    constant = np.zeros(n)
    constant[source] = score
    solution = np.linalg.solve(np.eye(n) - matrix, constant)
    return {v: float(solution[v]) for v in range(n)}


def dense_belief_propagation(
    graph: Graph,
    beliefs0: Mapping[tuple[int, int], float],
    coupling: Mapping[tuple[int, int], float],
    damping: float = 0.8,
    num_classes: int = 2,
) -> dict[tuple[int, int], float]:
    """Exact fixpoint of the Program-6 recursion over (vertex, class) keys."""
    n = graph.num_vertices
    size = n * num_classes
    degrees = graph.out_degrees()
    matrix = np.zeros((size, size))
    for src, dst in graph.edges:
        weight = 1.0 / degrees[src]
        for c1 in range(num_classes):
            for c2 in range(num_classes):
                row = dst * num_classes + c2
                col = src * num_classes + c1
                matrix[row, col] += damping * weight * coupling[(c1, c2)]
    base = np.zeros(size)
    for (vertex, cls), value in beliefs0.items():
        base[vertex * num_classes + cls] = value
    solution = np.linalg.solve(np.eye(size) - matrix, base)
    return {
        (v, c): float(solution[v * num_classes + c])
        for v in range(n)
        for c in range(num_classes)
    }


# --------------------------------------------------------------------------
# DAG programs: dynamic programming in topological order
# --------------------------------------------------------------------------
def _topological_order(graph: Graph) -> list[int]:
    indegree = [0] * graph.num_vertices
    adjacency = graph.out_adjacency()
    for _, dst in graph.edges:
        indegree[dst] += 1
    queue = deque(v for v in range(graph.num_vertices) if indegree[v] == 0)
    order = []
    while queue:
        vertex = queue.popleft()
        order.append(vertex)
        for neighbour in adjacency[vertex]:
            indegree[neighbour] -= 1
            if indegree[neighbour] == 0:
                queue.append(neighbour)
    if len(order) != graph.num_vertices:
        raise ValueError("graph is not a DAG")
    return order


def dag_path_counts(graph: Graph, source: int = 0) -> dict[int, int]:
    """Number of distinct paths from ``source`` to each reachable vertex."""
    counts = {source: 1}
    adjacency = graph.out_adjacency()
    for vertex in _topological_order(graph):
        if vertex not in counts:
            continue
        for neighbour in adjacency[vertex]:
            counts[neighbour] = counts.get(neighbour, 0) + counts[vertex]
    # the source's own base fact persists under the program's semantics
    return counts


def dag_path_costs(graph: Graph, source: int = 0) -> dict[int, float]:
    """Sum over source paths of the product of edge probabilities."""
    weights = {
        (src, dst): weight / 10.0 for src, dst, weight in graph.weighted_edges()
    }
    costs = {source: 1.0}
    adjacency = graph.out_adjacency()
    for vertex in _topological_order(graph):
        if vertex not in costs:
            continue
        for neighbour in adjacency[vertex]:
            costs[neighbour] = costs.get(neighbour, 0.0) + costs[vertex] * weights[
                (vertex, neighbour)
            ]
    return costs


def bfs_reachability(graph: Graph, source: int = 0) -> dict[int, float]:
    """Boolean reachability from ``source`` by plain BFS (1.0 = reachable)."""
    adjacency = graph.out_adjacency()
    reached = {source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbour in adjacency[vertex]:
            if neighbour not in reached:
                reached.add(neighbour)
                queue.append(neighbour)
    return {v: 1.0 for v in reached}


def dag_weighted_path_counts(graph: Graph, source: int = 0) -> dict[int, float]:
    """Multiplicity-weighted walk counts from ``source`` (counting semiring).

    Uses the same deterministic ``[1, 3]`` multiplicities as
    :func:`repro.programs.builders.multiplicity_dag_db`.
    """
    multiplicities = (
        graph.weights if graph.weights is not None else graph.generate_weights(1, 3)
    )
    weight_of = {
        (src, dst): m for (src, dst), m in zip(graph.edges, multiplicities)
    }
    counts = {source: 1.0}
    adjacency = graph.out_adjacency()
    for vertex in _topological_order(graph):
        if vertex not in counts:
            continue
        for neighbour in adjacency[vertex]:
            counts[neighbour] = counts.get(neighbour, 0.0) + counts[
                vertex
            ] * weight_of[(vertex, neighbour)]
    return counts


def k_shortest_path_lengths(
    graph: Graph, k: int = 3, source: int = 0
) -> dict[int, tuple[float, ...]]:
    """The ``k`` smallest *distinct* path lengths from ``source`` per vertex.

    Label-setting generalisation of Dijkstra (positive weights): each
    vertex keeps a sorted list of at most ``k`` distinct lengths; a
    popped label that was truncated out in the meantime is stale and
    skipped.  Independent of the engines' KTuple merge/shift algebra.
    """
    adjacency: list[list[tuple[int, float]]] = [
        [] for _ in range(graph.num_vertices)
    ]
    for src, dst, weight in graph.weighted_edges():
        adjacency[src].append((dst, float(weight)))
    labels: dict[int, list[float]] = {source: [0.0]}
    frontier: list[tuple[float, int]] = [(0.0, source)]
    while frontier:
        length, vertex = heapq.heappop(frontier)
        if length not in labels.get(vertex, ()):
            continue  # truncated while parked: stale
        for neighbour, weight in adjacency[vertex]:
            candidate = length + weight
            known = labels.setdefault(neighbour, [])
            if candidate in known:
                continue
            if len(known) < k or candidate < known[-1]:
                known.append(candidate)
                known.sort()
                del known[k:]
                heapq.heappush(frontier, (candidate, neighbour))
    return {vertex: tuple(lengths) for vertex, lengths in labels.items()}


def max_path_probability(graph: Graph, source: int = 0) -> dict[int, float]:
    """Maximum product of edge probabilities over ``source`` paths.

    Best-first search with a max-heap -- exact on cyclic graphs because
    probabilities lie in (0, 1], so extending a path never increases its
    product (the Viterbi analogue of Dijkstra's invariant).
    """
    adjacency: list[list[tuple[int, float]]] = [
        [] for _ in range(graph.num_vertices)
    ]
    for src, dst, weight in graph.weighted_edges():
        adjacency[src].append((dst, weight / 10.0))
    best: dict[int, float] = {source: 1.0}
    frontier: list[tuple[float, int]] = [(-1.0, source)]
    settled: set[int] = set()
    while frontier:
        negated, vertex = heapq.heappop(frontier)
        if vertex in settled:
            continue
        settled.add(vertex)
        probability = -negated
        for neighbour, edge_probability in adjacency[vertex]:
            candidate = probability * edge_probability
            if candidate > best.get(neighbour, 0.0):
                best[neighbour] = candidate
                heapq.heappush(frontier, (-candidate, neighbour))
    return best


def viterbi_best_path(graph: Graph, source: int = 0) -> dict[int, float]:
    """Maximum path probability from ``source`` (DP over the DAG)."""
    weights = {
        (src, dst): weight / 10.0 for src, dst, weight in graph.weighted_edges()
    }
    best = {source: 1.0}
    adjacency = graph.out_adjacency()
    for vertex in _topological_order(graph):
        if vertex not in best:
            continue
        for neighbour in adjacency[vertex]:
            candidate = best[vertex] * weights[(vertex, neighbour)]
            if candidate > best.get(neighbour, -1.0):
                best[neighbour] = candidate
    return best


# --------------------------------------------------------------------------
# pair-key programs
# --------------------------------------------------------------------------
def floyd_warshall_apsp(graph: Graph) -> dict[tuple[int, int], float]:
    """All-pairs shortest paths (Floyd-Warshall on a dense matrix)."""
    n = graph.num_vertices
    dist = np.full((n, n), np.inf)
    np.fill_diagonal(dist, 0.0)
    for src, dst, weight in graph.weighted_edges():
        dist[src, dst] = min(dist[src, dst], float(weight))
    for k in range(n):
        dist = np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :])
    return {
        (s, t): float(dist[s, t])
        for s in range(n)
        for t in range(n)
        if np.isfinite(dist[s, t])
    }


def lca_ancestor_distances(
    parent_of: Mapping[int, int], queries: Iterable[int]
) -> dict[tuple[int, int], int]:
    """Hop distance from each query vertex to each of its ancestors.

    Walks the parent chain directly -- independent of the engines' min
    propagation.  The LCA of two queries is the common ancestor
    minimising the distance sum.
    """
    distances: dict[tuple[int, int], int] = {}
    for query in queries:
        vertex = query
        hops = 0
        distances[(query, vertex)] = 0
        while vertex in parent_of:
            vertex = parent_of[vertex]
            hops += 1
            distances[(query, vertex)] = hops
    return distances


def simrank_series(
    graph: Graph, decay: float = 0.8, tolerance: float = 1e-10, max_rounds: int = 500
) -> dict[tuple[int, int], float]:
    """Fixpoint of the linearised SimRank recursion by matrix iteration.

    ``S = I + decay * Pᵀ S P`` with ``P[x, a] = 1/|I(a)|`` for in-edges
    ``x -> a`` -- the same series the Datalog program accumulates.
    """
    n = graph.num_vertices
    p = np.zeros((n, n))
    in_adjacency = graph.in_adjacency()
    for vertex, in_neighbours in enumerate(in_adjacency):
        if not in_neighbours:
            continue
        weight = 1.0 / len(in_neighbours)
        for u in in_neighbours:
            p[u, vertex] = weight
    s = np.eye(n)
    for _ in range(max_rounds):
        updated = np.eye(n) + decay * (p.T @ s @ p)
        if np.max(np.abs(updated - s)) < tolerance:
            s = updated
            break
        s = updated
    return {(a, b): float(s[a, b]) for a in range(n) for b in range(n)}
