"""Independent ground-truth oracles.

Used exclusively by tests: each evaluated algorithm gets a second,
structurally different implementation (Dijkstra instead of Bellman-Ford
relaxation, union-find instead of label propagation, dense linear
algebra instead of delta accumulation, dynamic programming instead of
fixpoint iteration) so that agreement is meaningful evidence of engine
correctness rather than a shared-bug tautology.
"""

from repro.reference.oracles import (
    dijkstra_sssp,
    union_find_components,
    dense_pagerank,
    dense_adsorption,
    dense_katz,
    dense_belief_propagation,
    dag_path_counts,
    dag_path_costs,
    viterbi_best_path,
    floyd_warshall_apsp,
    lca_ancestor_distances,
    simrank_series,
    bfs_reachability,
    dag_weighted_path_counts,
    k_shortest_path_lengths,
    max_path_probability,
)

__all__ = [
    "dijkstra_sssp",
    "union_find_components",
    "dense_pagerank",
    "dense_adsorption",
    "dense_katz",
    "dense_belief_propagation",
    "dag_path_counts",
    "dag_path_costs",
    "viterbi_best_path",
    "floyd_warshall_apsp",
    "lca_ancestor_distances",
    "simrank_series",
    "bfs_reachability",
    "dag_weighted_path_counts",
    "k_shortest_path_lengths",
    "max_path_probability",
]
