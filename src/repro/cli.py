"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``lint TARGETS...``     -- run the static analyzer (structure checks,
  lints, Theorem-1 pre-screen, Theorem-3 async certificate,
  communication shape) over Datalog files / library programs;
  ``--format json`` emits machine-readable reports, ``--gate async``
  fails uncertified programs, ``--gate overflow`` fails programs with a
  proven RA351 overflow risk; library programs compile against their
  default graph so the RA35x range certificate, the ``cost`` section
  and the cross-worker census are concrete;
* ``check FILE|PROGRAM``  -- run the automatic MRA condition checker on a
  Datalog source file (or a library program name); ``--smt2`` also emits
  the Figure-4 Z3 script;
* ``run PROGRAM``         -- execute a library program on a dataset
  stand-in under a chosen engine;
* ``experiment NAME``     -- regenerate a paper table/figure
  (``table1``, ``table2``, ``figure1``, ``figure9``, ``figure10``,
  ``figure11``, ``buffers``, ``priority``, ``micro``, ``scaling``,
  ``kernels``, ``delta``);
* ``delta PROGRAM``       -- apply a :class:`~repro.delta.GraphDelta`
  (a JSON file or a seeded random batch) to a dataset stand-in, repair
  the program's fixpoint incrementally, verify exactness against a
  from-scratch run and report the repair statistics;

Engine-running commands accept ``--backend`` to pick the vertex-runtime
kernel (default: ``REPRO_BACKEND``, else ``python``); ``--backend auto``
defers to the static cost model, which routes predicted sparse-frontier
plans to ``sparse`` and dense ones to ``numpy``.
* ``chaos``               -- run the fault-injection recovery harness:
  chaotic executions (crashes, drops, duplicates, reordering) must
  reach the same fixpoint as fault-free references;
* ``trace PROGRAM``       -- run with structured trace events enabled,
  print per-kind event counts, optionally write JSONL (``--out``) and
  inject faults (``--chaos``); under chaos the aggregated ``fault.*``
  events are checked against ``EvalResult.faults`` exactly;
* ``metrics PROGRAM``     -- run with the metrics registry enabled and
  render counters, histograms and per-worker time-series (e.g. the
  unified engine's ``beta(i,j)`` buffer sizes over simulated time);
  ``--chaos`` injects faults so the ``EvalResult.faults`` counters in
  the summary are populated;
* ``serve``               -- play a seeded multi-tenant workload through
  the serving layer (admission control, deadlines, retries, circuit
  breakers, stale-but-certified degradation); ``--chaos`` adds the
  default chaos plan, ``--acceptance`` runs the SLO acceptance harness,
  ``--format json`` emits the deterministic SLO report;
* ``programs``            -- list the fourteen Table-1 programs;
* ``datasets``            -- list the Table-2 dataset stand-ins.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.checker import check_analysis, emit_property2_script
from repro.datalog import analyze, parse_program
from repro.distributed import (
    AAPEngine,
    AsyncEngine,
    ClusterConfig,
    SyncEngine,
    UnifiedEngine,
)
from repro.graphs import compute_stats, dataset_names, load_dataset
from repro.programs import PROGRAMS, get_program
from repro.runtime import (
    BACKEND_ENV_VAR,
    KERNELS,
    KernelUnavailableError,
    resolve_backend,
)
from repro.systems import PowerLog

_ENGINES = {
    "sync": lambda plan, cluster, obs=None, backend=None: SyncEngine(
        plan, cluster, obs=obs, backend=backend
    ),
    "naive": lambda plan, cluster, obs=None, backend=None: SyncEngine(
        plan, cluster, mode="naive", obs=obs, backend=backend
    ),
    "async": lambda plan, cluster, obs=None, backend=None: AsyncEngine(
        plan, cluster, obs=obs, backend=backend
    ),
    "unified": lambda plan, cluster, obs=None, backend=None: UnifiedEngine(
        plan, cluster, obs=obs, backend=backend
    ),
    "aap": lambda plan, cluster, obs=None, backend=None: AAPEngine(
        plan, cluster, obs=obs, backend=backend
    ),
}

def _build_engine(engine: str, plan, cluster, obs=None, backend=None):
    """Construct an engine, rendering Theorem-3 refusals as diagnostics."""
    from repro.analysis import AsyncIneligibleError

    try:
        return _ENGINES[engine](plan, cluster, obs=obs, backend=backend)
    except AsyncIneligibleError as exc:
        raise SystemExit(f"error: {exc.diagnostic.render()}")


_EXPERIMENTS = {
    "table1": ("run_table1", {}),
    "table2": ("run_table2", {}),
    "figure1": ("run_figure1", {}),
    "figure9": ("run_figure9", {}),
    "figure10": ("run_figure10", {}),
    "figure11": ("run_figure11", {}),
    "buffers": ("run_buffer_ablation", {}),
    "priority": ("run_priority_ablation", {}),
    "micro": ("run_engine_micro", {}),
    "scaling": ("run_worker_scaling", {}),
    "kernels": ("run_kernel_bench", {}),
    "delta": ("run_delta_bench", {}),
}


def _load_analysis(target: str):
    """A Datalog file path or a library program name."""
    if os.path.exists(target):
        with open(target, "r", encoding="utf-8") as handle:
            source = handle.read()
        name = os.path.splitext(os.path.basename(target))[0]
        return analyze(parse_program(source, name=name))
    if target in PROGRAMS:
        return PROGRAMS[target].analysis()
    raise SystemExit(
        f"error: {target!r} is neither a file nor a library program "
        f"(library programs: {', '.join(PROGRAMS)})"
    )


def _lint_target(target: str) -> tuple[str, str]:
    """Resolve a lint target to ``(name, source)``."""
    if os.path.exists(target):
        with open(target, "r", encoding="utf-8") as handle:
            return os.path.splitext(os.path.basename(target))[0], handle.read()
    if target in PROGRAMS:
        return target, PROGRAMS[target].source
    raise SystemExit(
        f"error: {target!r} is neither a file nor a library program "
        f"(library programs: {', '.join(PROGRAMS)})"
    )


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import analyze_source

    worst = 0
    payloads = []
    for target in args.targets:
        name, source = _lint_target(target)
        plan = None
        if name in PROGRAMS:
            # library programs always lint against their default graph:
            # the RA35x range certificate and the cost section need a
            # compiled plan to be concrete (file targets stay symbolic)
            from repro.distributed.chaos_harness import default_graph

            plan = PROGRAMS[name].plan(default_graph(name, seed=args.seed))
        report = analyze_source(source, name=name, workers=args.workers, plan=plan)
        if args.format == "json":
            payloads.append(report.to_dict())
        else:
            print(report.render_text())
        worst = max(worst, report.exit_code(gate=args.gate))
    if args.format == "json":
        document = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(document, indent=2))
    return worst


def cmd_check(args: argparse.Namespace) -> int:
    analysis = _load_analysis(args.target)
    report = check_analysis(analysis)
    print(report.summary())
    print(f"  F' = {analysis.fprime!r}   (recursion variable {analysis.recursion_var!r})")
    print(f"  property 1: {report.property1.detail}")
    print(f"  property 2: {report.property2.detail}")
    if args.smt2:
        script = emit_property2_script(
            analysis.aggregate,
            analysis.fprime,
            analysis.recursion_var,
            analysis.domains,
            program_name=analysis.program.name,
        )
        with open(args.smt2, "w", encoding="utf-8") as handle:
            handle.write(script)
        print(f"  Z3 script written to {args.smt2}")
    return 0 if report.mra_satisfiable else 1


def cmd_run(args: argparse.Namespace) -> int:
    from repro.graphs import read_edge_list

    spec = get_program(args.program)
    if args.graph:
        graph = read_edge_list(args.graph)
    else:
        graph = load_dataset(args.dataset, args.scale)
    cluster = ClusterConfig(num_workers=args.workers)
    if resolve_backend(args.backend) in ("sparse", "jit"):
        from repro.analysis.frontier import classify_frontier

        frontier = classify_frontier(spec.analysis())
        if not frontier.delta_stepping:
            print(
                f"note[{frontier.code}]: {args.program} runs the sparse "
                f"frontier compaction-only ({frontier.detail})"
            )
    if args.engine == "powerlog":
        system = PowerLog()
        print(system.decide(spec).summary())
        result = system.run(spec, graph, cluster, backend=args.backend)
    else:
        plan = spec.plan(graph)
        result = _build_engine(
            args.engine, plan, cluster, backend=args.backend
        ).run()
    print(
        f"{spec.title} on {graph.name} ({graph.num_vertices} vertices, "
        f"{graph.num_edges} edges), engine={result.engine or args.engine}, "
        f"backend={result.backend}"
    )
    print(
        f"  {len(result.values)} result keys, stop={result.stop_reason}, "
        f"simulated {result.simulated_seconds:.3f}s"
    )
    counters = result.counters.snapshot()
    print(
        f"  work: {counters['fprime_applications']} F' applications, "
        f"{counters['messages']} messages, {counters['barriers']} barriers"
    )
    if args.top:
        ranked = sorted(result.values.items(), key=lambda kv: kv[1])
        if spec.analysis().aggregate.name in ("sum", "max", "count"):
            ranked = ranked[::-1]
        print(f"  top {args.top}:")
        for key, value in ranked[: args.top]:
            print(f"    {key}: {value}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    import repro.bench as bench

    runner_name, kwargs = _EXPERIMENTS[args.name]
    runner = getattr(bench, runner_name)
    report = runner(**kwargs)
    print(report.text)
    if args.save:
        path = bench.write_report(report.name, report.text)
        print(f"[saved to {path}]")
    return 0


def cmd_rewrite(args: argparse.Namespace) -> int:
    from repro.datalog import incremental_source

    analysis = _load_analysis(args.target)
    if not analysis.iterated:
        print(f"{analysis.program.name} is already in incremental form")
        return 0
    print("% equivalent incremental program (paper Program 2.b, section 3.3)")
    print(incremental_source(analysis))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis import AsyncIneligibleError
    from repro.distributed.chaos_harness import (
        DEFAULT_PROGRAMS,
        format_matrix,
        run_matrix,
    )

    programs = args.programs or list(DEFAULT_PROGRAMS)
    engines = args.engines or ["sync", "async"]
    schedule_kwargs = {}
    if args.drop is not None:
        schedule_kwargs["drop_rate"] = args.drop
    if args.duplicate is not None:
        schedule_kwargs["duplicate_rate"] = args.duplicate
    if args.crash_at:
        schedule_kwargs["crash_fractions"] = tuple(args.crash_at)
    try:
        reports = run_matrix(
            programs=tuple(programs),
            engines=tuple(engines),
            num_workers=args.workers,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            schedule_kwargs=schedule_kwargs or None,
            backend=args.backend,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    except AsyncIneligibleError as exc:
        raise SystemExit(f"error: {exc.diagnostic.render()}")
    agreed = all(report.agreed for report in reports)
    if args.format == "json":
        import json

        document = {
            "agreed": agreed,
            "seed": args.seed,
            "reports": [report.to_dict() for report in reports],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0 if agreed else 1
    print(format_matrix(reports))
    if args.verbose:
        for report in reports:
            print(f"\n{report.program} / {report.engine}: {report.schedule}")
            for key, value in sorted(report.stats.items()):
                if value:
                    print(f"  {key}: {value}")
    return 0 if agreed else 1


def _observed_graph(args: argparse.Namespace):
    """The graph a ``trace``/``metrics`` run uses.

    Defaults to the chaos harness's small per-program graph so a trace
    stays readable; ``--dataset`` switches to the Table-2 stand-ins.
    """
    from repro.distributed.chaos_harness import default_graph

    if args.dataset:
        return load_dataset(args.dataset, args.scale)
    return default_graph(args.program, seed=args.seed)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.distributed.chaos_harness import schedule_for
    from repro.obs import Observability, aggregate_fault_events

    spec = get_program(args.program)
    graph = _observed_graph(args)
    cluster = ClusterConfig(num_workers=args.workers)
    if args.chaos:
        reference = _build_engine(
            args.engine, spec.plan(graph), cluster, backend=args.backend
        ).run()
        schedule = schedule_for(
            reference.simulated_seconds, cluster.num_workers, seed=args.seed
        )
        cluster = cluster.with_faults(schedule)
        print(f"fault schedule: {schedule.describe()}")
    with Observability(trace_path=args.out) as obs:
        result = _build_engine(
            args.engine, spec.plan(graph), cluster, obs, backend=args.backend
        ).run()
    events = obs.trace.events
    print(
        f"{spec.title} on {graph.name}, engine={result.engine}, "
        f"stop={result.stop_reason}, simulated {result.simulated_seconds:.3f}s: "
        f"{len(events)} trace events"
    )
    for kind, count in sorted(obs.trace.counts_by_kind().items()):
        print(f"  {kind:24s} {count}")
    if args.out:
        print(f"[trace written to {args.out}]")
    if result.faults is not None:
        observed = aggregate_fault_events(events)
        expected = result.faults.snapshot()
        mismatched = {
            key: (observed.get(key, 0), value)
            for key, value in expected.items()
            if observed.get(key, 0) != value
        }
        if mismatched:
            print("FAULT EVENT MISMATCH (trace events vs EvalResult.faults):")
            for key, (got, want) in sorted(mismatched.items()):
                print(f"  {key}: events={got} counters={want}")
            return 1
        print(
            "fault events agree with EvalResult.faults "
            f"({sum(expected.values())} fault counts)"
        )
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.bench.charts import sparkline
    from repro.obs import Observability

    spec = get_program(args.program)
    graph = _observed_graph(args)
    cluster = ClusterConfig(num_workers=args.workers)
    if args.chaos:
        from repro.distributed.chaos_harness import schedule_for

        reference = _build_engine(
            args.engine, spec.plan(graph), cluster, backend=args.backend
        ).run()
        schedule = schedule_for(
            reference.simulated_seconds, cluster.num_workers, seed=args.seed
        )
        cluster = cluster.with_faults(schedule)
        print(f"fault schedule: {schedule.describe()}")
    obs = Observability()
    result = _build_engine(
        args.engine, spec.plan(graph), cluster, obs, backend=args.backend
    ).run()
    metrics = result.metrics
    print(
        f"{spec.title} on {graph.name}, engine={result.engine}, "
        f"stop={result.stop_reason}: {metrics!r}"
    )
    snapshot = metrics.snapshot()
    if snapshot["counters"]:
        print("counters (summed over labels):")
        totals: dict = {}
        for key, value in snapshot["counters"].items():
            name = key.split("{", 1)[0]
            totals[name] = totals.get(name, 0) + value
        for name, value in sorted(totals.items()):
            print(f"  {name:24s} {value:g}")
    for key, stats in snapshot["histograms"].items():
        print(
            f"histogram {key}: count={stats['count']} mean={stats['mean']:.2f} "
            f"min={stats['min']:g} max={stats['max']:g}"
        )
    comm = {
        key: value
        for key, value in snapshot["gauges"].items()
        if key.split("{", 1)[0].startswith("comm_")
    }
    if comm:
        print("communication shape (hash-partitioned plan):")
        for key, value in sorted(comm.items()):
            print(f"  {key:28s} {value:g}")
    cost = {
        key: value
        for key, value in snapshot["gauges"].items()
        if key.split("{", 1)[0].startswith("cost_")
    }
    if cost:
        print("static cost estimate (abstract interpretation):")
        for key, value in sorted(cost.items()):
            print(f"  {key:28s} {value:g}")
    series_found = False
    for labels, series in metrics.gauge_series("buffer.beta"):
        if not series_found:
            print("beta(i,j) over simulated time:")
            series_found = True
        pair = dict(labels)
        values = [value for _, value in series]
        print(
            f"  beta({pair.get('worker')},{pair.get('target')}) "
            f"{sparkline(values)}  "
            f"[{values[0]:.0f} -> {values[-1]:.0f}, {len(values)} adaptations]"
        )
    if not series_found and args.engine == "unified":
        print("(no buffer adaptations recorded)")
    faults = result.faults.snapshot() if result.faults is not None else {}
    nonzero = {key: value for key, value in faults.items() if value}
    if nonzero:
        print("fault counters (EvalResult.faults):")
        for key, value in sorted(nonzero.items()):
            print(f"  {key:24s} {value}")
    print(
        f"totals: {len(snapshot['counters'])} counter series, "
        f"{len(snapshot['histograms'])} histograms, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{sum(faults.values())} fault counts"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import (
        ServeConfig,
        ServingService,
        WorkloadSpec,
        build_report,
        default_chaos,
        render_text,
        report_to_json,
        run_serve_acceptance,
    )

    spec = WorkloadSpec(
        num_requests=args.requests,
        arrival_rate=args.rate,
        burst_factor=args.burst_factor,
    )
    config = ServeConfig(
        executors=args.executors,
        workers=args.workers,
        freshness_ttl=args.freshness_ttl,
        backend=args.backend,
    )
    chaos = default_chaos() if args.chaos else None

    if args.acceptance:
        acceptance = run_serve_acceptance(
            spec=spec,
            config=config,
            chaos=chaos,
            seed=args.seed,
            checkpoint_root=args.checkpoint_dir,
        )
        report = dict(acceptance.report)
        report["acceptance"] = {
            "passed": acceptance.passed,
            "deterministic": acceptance.deterministic,
            "no_lost_requests": acceptance.no_lost_requests,
            "answer_agreement": acceptance.all_agreed,
            "breaker_visible": acceptance.breaker_visible,
            "engine_runs_checked": len(acceptance.agreements),
        }
        exit_code = 0 if acceptance.passed else 1
    else:
        service = ServingService(
            config, chaos=chaos, checkpoint_dir=args.checkpoint_dir
        )
        outcome = service.run(spec, seed=args.seed)
        report = build_report(outcome, spec, config, chaos=chaos)
        acceptance = None
        exit_code = 0

    payload = report_to_json(report)
    if args.format == "json":
        sys.stdout.write(payload)
    else:
        print(render_text({k: v for k, v in report.items() if k != "acceptance"}))
        if acceptance is not None:
            print(acceptance.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        if args.format != "json":
            print(f"[SLO report written to {args.out}]")
    return exit_code


def cmd_delta(args: argparse.Namespace) -> int:
    import json

    from repro.delta import GraphDelta, IncrementalEngine, random_delta
    from repro.engine import MRAEvaluator

    spec = get_program(args.program)
    graph = load_dataset(args.dataset, args.scale).with_weights()

    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            delta = GraphDelta.from_json(handle.read())
    else:
        if not (args.inserts or args.deletes or args.updates):
            raise SystemExit(
                "error: give a delta file or at least one of "
                "--inserts/--deletes/--updates"
            )
        delta = random_delta(
            graph,
            seed=args.seed,
            insert_edges=args.inserts,
            delete_edges=args.deletes,
            update_weights=args.updates,
        )

    engine = IncrementalEngine(args.program, graph, backend=args.backend)
    engine.bootstrap()
    repair = engine.apply(delta)
    stats = repair.to_dict()

    scratch = MRAEvaluator(
        spec.plan(engine.view.graph), backend=args.backend
    ).run()
    if engine.values != scratch.values:
        raise SystemExit(
            "error: repaired fixpoint differs from recompute (bug)"
        )

    def work(counters):
        snapshot = counters.snapshot()
        return (
            snapshot["fprime_applications"]
            + snapshot["combines"]
            + snapshot["updates"]
        )

    repair_work = work(repair.counters)
    recompute_work = work(scratch.counters)
    payload = {
        "program": args.program,
        "dataset": args.dataset,
        "scale": args.scale,
        "mode": engine.verdict.mode,
        "code": engine.verdict.code,
        "delta": delta.summary(),
        "repair": stats,
        "repair_work": repair_work,
        "recompute_work": recompute_work,
        "work_ratio": round(repair_work / recompute_work, 4)
        if recompute_work
        else None,
        "exact": True,
    }
    if args.format == "json":
        print(json.dumps(payload, indent=2))
        return 0

    summary = delta.summary()
    print(
        f"{spec.title} on {args.dataset}@{args.scale}: "
        f"incremental mode {engine.verdict.mode} ({engine.verdict.code})"
    )
    print(
        f"  delta: +{summary['insert_edges']} edges, "
        f"-{summary['delete_edges']} edges, "
        f"{summary['update_weights']} reweights, "
        f"+{summary['add_vertices']}/-{summary['remove_vertices']} vertices"
    )
    print(
        f"  repair: strategy={repair.strategy}, "
        f"frontier={repair.frontier_size}, reset={repair.reset_keys}, "
        f"rounds={repair.counters.iterations}, stop={repair.stop_reason}"
    )
    print(
        f"  work: repair {repair_work} vs recompute {recompute_work} "
        f"({payload['work_ratio']:.1%} of from-scratch, exact match verified)"
    )
    return 0


def cmd_programs(_: argparse.Namespace) -> int:
    from repro.aggregates import BUILTIN_AGGREGATES

    print(
        f"{'name':12s} {'title':24s} {'aggregator':10s} {'semiring':11s} "
        f"{'laws':22s} {'MRA sat.':8s} benchmarked"
    )
    for name, spec in PROGRAMS.items():
        semiring = BUILTIN_AGGREGATES[spec.aggregator].semiring
        print(
            f"{name:12s} {spec.title:24s} {spec.aggregator:10s} "
            f"{semiring.name if semiring else '-':11s} "
            f"{semiring.law_summary() if semiring else '-':22s} "
            f"{'yes' if spec.expected_mra else 'no':8s} "
            f"{'yes' if spec.benchmarked else ''}"
        )
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    for name in dataset_names():
        stats = compute_stats(load_dataset(name, args.scale))
        print(stats.row())
    return 0


def _add_backend(subparser) -> None:
    subparser.add_argument(
        "--backend",
        choices=sorted([*KERNELS, "auto"]),
        help=(
            "execution kernel for the vertex runtime (default: the "
            f"{BACKEND_ENV_VAR} environment variable, else 'python'); "
            "'auto' lets the static cost model pick sparse or numpy "
            "per plan"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PowerLog reproduction (SIGMOD 2020)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser(
        "lint", help="run the static analyzer over Datalog programs"
    )
    lint.add_argument(
        "targets",
        nargs="+",
        help="Datalog files and/or library program names",
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json"], dest="format"
    )
    lint.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count for the communication-shape estimate",
    )
    lint.add_argument(
        "--gate",
        default="none",
        choices=["none", "async", "overflow"],
        help=(
            "'async' also fails programs without a Theorem-3 certificate; "
            "'overflow' fails programs with a proven RA351 overflow risk"
        ),
    )
    lint.add_argument(
        "--exact",
        action="store_true",
        help=(
            "kept for compatibility: library programs now always compile "
            "against their default graph (exact cross-worker census, "
            "concrete RA35x range and cost sections)"
        ),
    )
    lint.add_argument("--seed", type=int, default=7)
    lint.set_defaults(func=cmd_lint)

    check = commands.add_parser("check", help="run the MRA condition checker")
    check.add_argument("target", help="Datalog file or library program name")
    check.add_argument("--smt2", help="also write the Figure-4 Z3 script here")
    check.set_defaults(func=cmd_check)

    run = commands.add_parser("run", help="execute a library program")
    run.add_argument("program", choices=sorted(PROGRAMS))
    run.add_argument("--dataset", default="livej", choices=dataset_names())
    run.add_argument(
        "--graph", help="run on a TSV edge-list file instead of a dataset"
    )
    run.add_argument(
        "--engine",
        default="powerlog",
        choices=["powerlog", *sorted(_ENGINES)],
    )
    run.add_argument("--workers", type=int, default=16)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--top", type=int, default=0, help="print the top-N results")
    _add_backend(run)
    run.set_defaults(func=cmd_run)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--save", action="store_true", help="persist under benchmarks/results/"
    )
    experiment.set_defaults(func=cmd_experiment)

    rewrite = commands.add_parser(
        "rewrite", help="emit the equivalent incremental program (Program 2.b)"
    )
    rewrite.add_argument("target", help="Datalog file or library program name")
    rewrite.set_defaults(func=cmd_rewrite)

    delta = commands.add_parser(
        "delta",
        help="apply a graph delta and repair the fixpoint incrementally",
    )
    delta.add_argument("program", choices=sorted(PROGRAMS))
    delta.add_argument("--dataset", default="livej", choices=dataset_names())
    delta.add_argument("--scale", type=float, default=0.25)
    delta.add_argument(
        "--file", help="JSON GraphDelta file (see GraphDelta.to_json)"
    )
    delta.add_argument(
        "--inserts", type=int, default=0, help="random edges to insert"
    )
    delta.add_argument(
        "--deletes", type=int, default=0, help="random edges to delete"
    )
    delta.add_argument(
        "--updates", type=int, default=0, help="random weights to update"
    )
    delta.add_argument("--seed", type=int, default=7)
    delta.add_argument("--format", choices=["text", "json"], default="text")
    _add_backend(delta)
    delta.set_defaults(func=cmd_delta)

    chaos = commands.add_parser(
        "chaos", help="run the fault-injection recovery harness"
    )
    chaos.add_argument(
        "--programs",
        nargs="*",
        choices=sorted(PROGRAMS),
        help="programs to subject to faults (default: sssp dag_paths pagerank)",
    )
    chaos.add_argument(
        "--engines",
        nargs="*",
        choices=["sync", "async", "unified", "aap"],
        help="engines to run (default: sync async)",
    )
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--drop", type=float, help="message drop probability (default 0.02)"
    )
    chaos.add_argument(
        "--duplicate", type=float, help="duplicate-delivery probability (default 0.01)"
    )
    chaos.add_argument(
        "--crash-at",
        type=float,
        nargs="*",
        help="crash times as fractions of the fault-free duration (default 0.35)",
    )
    chaos.add_argument(
        "--checkpoint-dir",
        help="enable disk checkpoints for the chaotic runs in this directory",
    )
    chaos.add_argument(
        "-v", "--verbose", action="store_true", help="print per-run fault counters"
    )
    chaos.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="'json' emits the machine-readable ChaosReport list",
    )
    _add_backend(chaos)
    chaos.set_defaults(func=cmd_chaos)

    def _obs_common(subparser, default_engine):
        subparser.add_argument("program", choices=sorted(PROGRAMS))
        subparser.add_argument(
            "--engine", default=default_engine, choices=sorted(_ENGINES)
        )
        subparser.add_argument(
            "--dataset",
            choices=dataset_names(),
            help="run on a Table-2 stand-in instead of the small default graph",
        )
        subparser.add_argument("--scale", type=float, default=1.0)
        subparser.add_argument("--workers", type=int, default=4)
        subparser.add_argument("--seed", type=int, default=7)
        _add_backend(subparser)

    trace = commands.add_parser(
        "trace", help="run a program with structured trace events enabled"
    )
    _obs_common(trace, "unified")
    trace.add_argument(
        "--chaos",
        action="store_true",
        help="inject faults and check fault events against EvalResult.faults",
    )
    trace.add_argument("--out", help="write the trace as JSONL to this file")
    trace.set_defaults(func=cmd_trace)

    metrics = commands.add_parser(
        "metrics", help="run a program and render its metrics registry"
    )
    _obs_common(metrics, "unified")
    metrics.add_argument(
        "--chaos",
        action="store_true",
        help="inject faults so EvalResult.faults counters are populated",
    )
    metrics.set_defaults(func=cmd_metrics)

    serve = commands.add_parser(
        "serve",
        help="play a multi-tenant workload through the serving layer",
    )
    serve.add_argument(
        "--requests", type=int, default=100, help="workload size (default 100)"
    )
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--rate",
        type=float,
        default=4.0,
        help="mean arrival rate in requests per simulated second",
    )
    serve.add_argument(
        "--burst-factor",
        type=float,
        default=7.0,
        help="arrival-rate multiplier during the burst window",
    )
    serve.add_argument(
        "--executors",
        type=int,
        default=1,
        help="concurrent engine-execution slots",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="simulated workers per execution"
    )
    serve.add_argument(
        "--freshness-ttl",
        type=float,
        default=1.5,
        help="cache entries older than this are recomputed (simulated s)",
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help="serve under the default chaos plan (attempt failures, a "
        "sync-backend outage, engine-level drops and duplicates)",
    )
    serve.add_argument(
        "--acceptance",
        action="store_true",
        help="run the SLO acceptance harness (determinism, no lost "
        "requests, degraded-answer agreement) and fail on violations",
    )
    serve.add_argument(
        "--checkpoint-dir",
        help="persist engine checkpoints here; recomputations resume "
        "from them instead of recomputing cold",
    )
    serve.add_argument(
        "--format", default="text", choices=["text", "json"], dest="format"
    )
    serve.add_argument("--out", help="also write the JSON SLO report here")
    _add_backend(serve)
    serve.set_defaults(func=cmd_serve)

    programs = commands.add_parser("programs", help="list the Table-1 programs")
    programs.set_defaults(func=cmd_programs)

    datasets = commands.add_parser("datasets", help="list dataset stand-ins")
    datasets.add_argument("--scale", type=float, default=1.0)
    datasets.set_defaults(func=cmd_datasets)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KernelUnavailableError as exc:
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":
    sys.exit(main())
