"""Incremental-repair vs recompute benchmark for ``repro.delta``.

Applies insert-only deltas sized at 0.1%, 1% and 10% of the dataset's
edges to the RA320 programs (``sssp``, ``cc``), repairs the standing
fixpoint with :func:`repro.delta.repair_plan` and re-evaluates the
mutated graph from scratch with the MRA evaluator.  Exactness is
asserted *while* measuring -- the repaired fixpoint must equal the
recomputed one bit for bit, otherwise the speedup is meaningless.

The measurement of record is engine work (``fprime_applications +
combines + updates`` from :class:`~repro.engine.result.WorkCounters`),
never wall-clock: work counters are deterministic per (graph, delta,
backend), so the committed baseline
``benchmarks/results/BENCH_delta.json`` is byte-stable across hosts
(ratios rounded to 9 decimals, wall-clock columns dropped).
The guarded claim: at delta sizes <= 1% the repair does at most
``WORK_RATIO_CEILING`` of the recompute work.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Sequence

from repro.analysis.incremental import classify_incremental
from repro.bench.harness import ExperimentReport
from repro.bench.report import format_table
from repro.delta import random_delta, repair_plan
from repro.engine.mra import MRAEvaluator
from repro.graphs import load_dataset
from repro.programs import PROGRAMS

#: insert-only delta sizes as a fraction of the dataset's edge count
DELTA_FRACTIONS = (0.001, 0.01, 0.1)

#: repairs at delta sizes <= 1% must do at most this fraction of the
#: from-scratch work (the "measurably less" acceptance criterion)
WORK_RATIO_CEILING = 0.5

#: RA320 programs exercised by default (insert-only frontier repairs)
DELTA_PROGRAMS = ("sssp", "cc")

BASELINE_PATH = os.path.join("benchmarks", "results", "BENCH_delta.json")


def _work(counters) -> int:
    """The deterministic work measure: F' applications + combines + updates."""
    return (
        counters.fprime_applications + counters.combines + counters.updates
    )


def run_delta_bench(
    scale: float = 0.25,
    dataset: str = "livej",
    programs: Optional[Sequence[str]] = None,
    fractions: Sequence[float] = DELTA_FRACTIONS,
    seed: int = 7,
) -> ExperimentReport:
    """Repair-vs-recompute rows for every (program, delta fraction).

    Each row records both wall times (host-dependent, informational) and
    both work counts (deterministic, the contract) plus their ratio.
    """
    programs = list(programs or DELTA_PROGRAMS)
    graph = load_dataset(dataset, scale).with_weights()
    rows = []
    for program in programs:
        spec = PROGRAMS[program]
        mode = classify_incremental(spec.analysis()).mode
        old_plan = spec.plan(graph)
        prior = MRAEvaluator(old_plan).run().values
        for fraction in fractions:
            inserts = max(1, int(graph.num_edges * fraction))
            delta = random_delta(
                graph, seed=seed, insert_edges=inserts
            )
            mutated = delta.apply_to(graph)
            new_plan = spec.plan(mutated)

            started = time.perf_counter()
            repair = repair_plan(old_plan, new_plan, prior, mode=mode)
            repair_seconds = time.perf_counter() - started

            started = time.perf_counter()
            scratch = MRAEvaluator(spec.plan(mutated)).run()
            scratch_seconds = time.perf_counter() - started

            if repair.values != scratch.values:
                raise AssertionError(
                    f"{program} @ {fraction:.1%}: repaired fixpoint "
                    "differs from recompute -- speedup would be bogus"
                )
            repair_work = _work(repair.counters)
            scratch_work = _work(scratch.counters)
            rows.append(
                {
                    "program": program,
                    "dataset": dataset,
                    "scale": scale,
                    "delta_fraction": fraction,
                    "delta_edges": len(delta.insert_edges),
                    "strategy": repair.strategy,
                    "repair_work": repair_work,
                    "recompute_work": scratch_work,
                    "work_ratio": round(repair_work / scratch_work, 9),
                    "repair_seconds": round(repair_seconds, 6),
                    "recompute_seconds": round(scratch_seconds, 6),
                    "fixpoint_matches": True,
                }
            )
    notes = [
        f"work = fprime_applications + combines + updates (deterministic); "
        f"ceiling {WORK_RATIO_CEILING} applies at fractions <= 1%",
    ]
    for row in rows:
        notes.append(
            f"{row['program']} @ {row['delta_fraction']:.1%} "
            f"({row['delta_edges']} edges): {row['strategy']} repair did "
            f"{row['work_ratio']:.1%} of the recompute work"
        )
    text = (
        "Incremental repair vs recompute -- insert-only deltas\n"
        + format_table(rows)
        + "\n"
        + "\n".join(notes)
    )
    return ExperimentReport("delta", rows, text, notes)


def write_delta_baseline(
    report: ExperimentReport, path: str = BASELINE_PATH
) -> str:
    """Persist the committed JSON baseline for ``make smoke-bench``."""
    # wall times are host noise -- the committed baseline keeps only the
    # deterministic work columns so re-running the bench never dirties it
    stable_rows = [
        {k: v for k, v in row.items() if not k.endswith("_seconds")}
        for row in report.rows
    ]
    payload = {
        "benchmark": "delta",
        "work_ratio_ceiling": WORK_RATIO_CEILING,
        "delta_fractions": list(DELTA_FRACTIONS),
        "programs": list(DELTA_PROGRAMS),
        "rows": stable_rows,
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
