"""Numbers and claims reported by the paper, for side-by-side reports.

Only values that can be read unambiguously from the paper text are
embedded as numbers; bar-chart values whose dataset mapping is uncertain
are represented by the paper's prose speedup claims instead.
"""

from __future__ import annotations

#: Figure 1 -- motivation: SociaLite (sync) vs Myria (async), seconds.
PAPER_FIGURE1: dict[tuple[str, str], dict[str, float]] = {
    ("sssp", "livej"): {"SociaLite": 13.6, "Myria": 110.7},
    ("pagerank", "livej"): {"SociaLite": 477.9, "Myria": 119.5},
    ("sssp", "wiki"): {"SociaLite": 794.9, "Myria": 410.4},
    ("sssp", "arabic"): {"SociaLite": 169.8, "Myria": 983.1},
}

#: Table 2 -- the real datasets' sizes.
PAPER_TABLE2: dict[str, dict] = {
    "flickr": {"paper_name": "Flickr", "vertices": 2_302_925, "edges": 33_140_017},
    "livej": {"paper_name": "LiveJournal", "vertices": 4_847_571, "edges": 68_475_391},
    "orkut": {"paper_name": "Orkut", "vertices": 3_072_441, "edges": 117_184_899},
    "web": {"paper_name": "ClueWeb09", "vertices": 20_000_000, "edges": 243_063_334},
    "wiki": {"paper_name": "Wiki-link", "vertices": 12_150_976, "edges": 378_142_420},
    "arabic": {"paper_name": "Arabic-2005", "vertices": 22_744_080, "edges": 639_999_458},
}

#: Section 6.3 prose -- PowerLog speedups over the other systems
#: (min, max) across the Figure-9 grids.
PAPER_SPEEDUP_CLAIMS: dict[str, tuple[float, float]] = {
    "cc": (1.1, 46.4),
    "sssp": (1.6, 33.2),
    "pagerank": (1.8, 188.3),
    "adsorption": (5.6, 47.8),
    "katz": (6.1, 37.1),
    "bp": (6.2, 60.1),
}

#: Section 6.4 prose -- gains of the PowerLog configurations over
#: Naive+Sync in Figure 10 (min, max).
PAPER_FIGURE10_CLAIMS: dict[str, dict[str, tuple[float, float]]] = {
    "cc": {"mra+sync": (1.1, 5.2), "mra+sync-async": (3.9, 25.2)},
    "sssp": {"mra+sync": (3.1, 4.1), "mra+sync-async": (5.1, 8.5)},
    "pagerank": {"mra+sync-async": (24.7, 188.3)},
    "adsorption": {"mra+sync-async": (19.2, 47.8)},
    "katz": {"mra+sync-async": (13.4, 37.1)},
    "bp": {"mra+sync-async": (26.7, 60.1)},
}

#: Section 6.3 -- known exceptions the paper itself reports.
PAPER_EXCEPTIONS = [
    "SociaLite is 1.7x faster than PowerLog on SSSP/ClueWeb09 "
    "(delta-stepping on a small-diameter graph)",
]
