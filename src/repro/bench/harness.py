"""Experiment runners for every table and figure in the paper.

Each ``run_*`` function executes the experiment on the simulated cluster
and returns an :class:`ExperimentReport` (structured rows + formatted
text).  Results are checked against the single-node MRA reference during
the run; a mismatching cell is reported rather than silently kept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Sequence

from repro.bench.paper_data import (
    PAPER_FIGURE1,
    PAPER_FIGURE10_CLAIMS,
    PAPER_SPEEDUP_CLAIMS,
    PAPER_TABLE2,
)
from repro.bench.charts import grouped_bar_chart, sparkline
from repro.bench.report import format_table
from repro.checker import check_analysis, emit_property2_script
from repro.distributed import (
    AAPEngine,
    AsyncEngine,
    ClusterConfig,
    SyncEngine,
    UnifiedEngine,
)
from repro.distributed.buffers import BufferPolicy
from repro.engine import MRAEvaluator, NaiveEvaluator, SemiNaiveEvaluator, compare_results
from repro.engine.plan import CompiledPlan
from repro.graphs import compute_stats, dataset_names, load_dataset
from repro.graphs.generators import random_dag, rmat
from repro.obs import Observability
from repro.programs import PROGRAMS, benchmark_programs
from repro.systems import SYSTEMS, PowerLog


@dataclass
class ExperimentReport:
    """Rows plus formatted text for one experiment."""

    name: str
    rows: list[dict]
    text: str
    notes: list[str] = field(default_factory=list)

    def __str__(self):
        return self.text


# --------------------------------------------------------------------------
# shared plumbing
# --------------------------------------------------------------------------
@lru_cache(maxsize=128)
def _plan(program: str, dataset: str, scale: float) -> CompiledPlan:
    graph = load_dataset(dataset, scale)
    return PROGRAMS[program].plan(graph)


@lru_cache(maxsize=128)
def _reference_values(program: str, dataset: str, scale: float):
    return MRAEvaluator(_plan(program, dataset, scale)).run().values


def _result_ok(program: str, dataset: str, scale: float, values: dict) -> bool:
    reference = _reference_values(program, dataset, scale)
    aggregate = PROGRAMS[program].analysis().aggregate
    return compare_results(reference, values, aggregate).ok


def _seconds(result) -> float:
    return result.simulated_seconds if result.simulated_seconds is not None else 0.0


# --------------------------------------------------------------------------
# Figure 1 -- motivation: sync vs async flip across workloads
# --------------------------------------------------------------------------
def run_figure1(scale: float = 1.0) -> ExperimentReport:
    """SociaLite (sync) vs Myria (async): neither consistently wins."""
    cases = [
        ("sssp", "livej"),
        ("pagerank", "livej"),
        ("sssp", "wiki"),
        ("sssp", "arabic"),
    ]
    rows = []
    for program, dataset in cases:
        graph = load_dataset(dataset, scale)
        spec = PROGRAMS[program]
        measured = {}
        for system_name in ("SociaLite", "Myria"):
            result = SYSTEMS[system_name].run(spec, graph)
            ok = _result_ok(program, dataset, scale, result.values)
            measured[system_name] = _seconds(result)
            if not ok:
                measured[system_name] = float("nan")
        paper = PAPER_FIGURE1[(program, dataset)]
        rows.append(
            {
                "workload": f"{program}/{dataset}",
                "SociaLite(s)": measured["SociaLite"],
                "Myria(s)": measured["Myria"],
                "winner": min(measured, key=measured.get),
                "paper SociaLite": paper["SociaLite"],
                "paper Myria": paper["Myria"],
                "paper winner": min(paper, key=paper.get),
            }
        )
    matches = sum(1 for r in rows if r["winner"] == r["paper winner"])
    notes = [f"winner agreement with paper: {matches}/{len(rows)} workloads"]
    chart = grouped_bar_chart(
        [
            {"workload": r["workload"], "SociaLite": r["SociaLite(s)"], "Myria": r["Myria(s)"]}
            for r in rows
        ],
        "workload",
        ["SociaLite", "Myria"],
    )
    text = (
        "Figure 1 -- SociaLite (sync) vs Myria (async)\n"
        + format_table(rows)
        + "\n"
        + "\n".join(notes)
        + "\n\n"
        + chart
    )
    return ExperimentReport("figure1", rows, text, notes)


# --------------------------------------------------------------------------
# Table 1 -- automatic condition check on the fourteen programs
# --------------------------------------------------------------------------
def run_table1(emit_scripts: bool = False) -> ExperimentReport:
    """MRA satisfiability of all fourteen programs + engine routing."""
    powerlog = PowerLog()
    rows = []
    scripts: dict[str, str] = {}
    for name, spec in PROGRAMS.items():
        analysis = spec.analysis()
        report = check_analysis(analysis)
        decision = powerlog.decide(spec)
        expected = "yes" if spec.expected_mra else "no"
        verdict = "yes" if report.mra_satisfiable else "no"
        rows.append(
            {
                "program": spec.title,
                "MRA sat.": verdict,
                "paper": expected,
                "aggregator": spec.aggregator,
                "P2 method": report.property2.method,
                "engine": decision.engine,
            }
        )
        if emit_scripts:
            scripts[name] = emit_property2_script(
                analysis.aggregate,
                analysis.fprime,
                analysis.recursion_var,
                analysis.domains,
                program_name=name,
            )
    agreement = sum(1 for r in rows if r["MRA sat."] == r["paper"])
    notes = [f"Table-1 agreement: {agreement}/{len(rows)} programs"]
    text = (
        "Table 1 -- MRA condition check\n"
        + format_table(rows)
        + "\n"
        + "\n".join(notes)
    )
    report = ExperimentReport("table1", rows, text, notes)
    report.scripts = scripts  # type: ignore[attr-defined]
    return report


# --------------------------------------------------------------------------
# Table 2 -- datasets
# --------------------------------------------------------------------------
def run_table2(scale: float = 1.0) -> ExperimentReport:
    """Dataset stand-ins next to the paper's real datasets."""
    rows = []
    for name in dataset_names():
        stats = compute_stats(load_dataset(name, scale))
        paper = PAPER_TABLE2[name]
        rows.append(
            {
                "dataset": paper["paper_name"],
                "paper V": paper["vertices"],
                "paper E": paper["edges"],
                "repro V": stats.num_vertices,
                "repro E": stats.num_edges,
                "avg deg": round(stats.avg_degree, 1),
                "skew": round(stats.degree_skew, 1),
                "ecc(0)": stats.eccentricity_from_0,
            }
        )
    text = "Table 2 -- datasets (paper vs synthetic stand-ins)\n" + format_table(rows)
    return ExperimentReport("table2", rows, text)


# --------------------------------------------------------------------------
# Figure 9 -- overall system comparison
# --------------------------------------------------------------------------
def run_figure9(
    programs: Optional[Sequence[str]] = None,
    datasets: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> ExperimentReport:
    """PowerLog vs SociaLite / Myria / BigDatalog on the six algorithms."""
    programs = list(programs or benchmark_programs())
    datasets = list(datasets or dataset_names())
    system_names = ["SociaLite", "Myria", "BigDatalog", "PowerLog"]
    rows = []
    speedups: dict[str, list[float]] = {p: [] for p in programs}
    for program in programs:
        spec = PROGRAMS[program]
        for dataset in datasets:
            graph = load_dataset(dataset, scale)
            cell: dict = {"program": program, "dataset": dataset}
            times: dict[str, float] = {}
            for system_name in system_names:
                system = SYSTEMS[system_name]
                if not system.supports(spec):
                    cell[system_name] = None
                    continue
                result = system.run(spec, graph)
                seconds = _seconds(result)
                if not _result_ok(program, dataset, scale, result.values):
                    seconds = float("nan")
                cell[system_name] = seconds
                times[system_name] = seconds
            powerlog_time = times.get("PowerLog")
            if powerlog_time:
                for system_name, seconds in times.items():
                    if system_name != "PowerLog" and seconds and not math.isnan(seconds):
                        speedups[program].append(seconds / powerlog_time)
            rows.append(cell)
    notes = []
    for program in programs:
        if not speedups[program]:
            continue
        low, high = min(speedups[program]), max(speedups[program])
        claim = PAPER_SPEEDUP_CLAIMS.get(program)
        claim_text = f" (paper: {claim[0]}x-{claim[1]}x)" if claim else ""
        notes.append(
            f"{program}: PowerLog speedup {low:.1f}x-{high:.1f}x{claim_text}"
        )
    chart = grouped_bar_chart(
        [
            {**row, "cell": f"{row['program']}/{row['dataset']}"}
            for row in rows
        ],
        "cell",
        system_names,
    )
    text = (
        "Figure 9 -- overall comparison (simulated seconds, log-scale bars)\n"
        + format_table(rows)
        + "\n"
        + "\n".join(notes)
        + "\n\n"
        + chart
    )
    return ExperimentReport("figure9", rows, text, notes)


# --------------------------------------------------------------------------
# Figure 10 -- performance gain decomposition
# --------------------------------------------------------------------------
_GRAPH_BASELINE = {
    "cc": "PowerGraph",
    "sssp": "PowerGraph",
    "pagerank": "Maiter",
    "adsorption": "Maiter",
    "katz": "Maiter",
    "bp": "Prom",
}


def run_figure10(
    programs: Optional[Sequence[str]] = None,
    datasets: Sequence[str] = ("wiki", "web", "arabic"),
    scale: float = 1.0,
) -> ExperimentReport:
    """Naive+Sync vs MRA x {sync, async, sync-async} vs graph engines."""
    programs = list(programs or benchmark_programs())
    cluster = ClusterConfig()
    rows = []
    gains: dict[tuple[str, str], list[float]] = {}
    for program in programs:
        spec = PROGRAMS[program]
        baseline_system = SYSTEMS[_GRAPH_BASELINE[program]]
        for dataset in datasets:
            graph = load_dataset(dataset, scale)
            plan = _plan(program, dataset, scale)
            configs = {
                "naive+sync": SyncEngine(plan, cluster, mode="naive"),
                "mra+sync": SyncEngine(plan, cluster, mode="incremental"),
                "mra+async": AsyncEngine(
                    plan,
                    cluster,
                    buffer_policy=BufferPolicy(initial_beta=64, adaptive=False),
                ),
                "mra+sync-async": UnifiedEngine(plan, cluster),
            }
            cell: dict = {"program": program, "dataset": dataset}
            naive_seconds = None
            for label, engine in configs.items():
                result = engine.run()
                seconds = _seconds(result)
                if not _result_ok(program, dataset, scale, result.values):
                    seconds = float("nan")
                cell[label] = seconds
                if label == "naive+sync":
                    naive_seconds = seconds
                elif naive_seconds:
                    gains.setdefault((program, label), []).append(
                        naive_seconds / seconds
                    )
            graph_result = baseline_system.run(spec, graph)
            cell["graph-engine"] = _seconds(graph_result)
            cell["graph-engine sys"] = baseline_system.name
            rows.append(cell)
    notes = []
    for program in programs:
        for label in ("mra+sync", "mra+sync-async"):
            values = gains.get((program, label))
            if not values:
                continue
            claim = PAPER_FIGURE10_CLAIMS.get(program, {}).get(label)
            claim_text = f" (paper: {claim[0]}x-{claim[1]}x)" if claim else ""
            notes.append(
                f"{program} {label}: gain over naive+sync "
                f"{min(values):.1f}x-{max(values):.1f}x{claim_text}"
            )
    chart = grouped_bar_chart(
        [
            {**row, "cell": f"{row['program']}/{row['dataset']}"}
            for row in rows
        ],
        "cell",
        ["naive+sync", "mra+sync", "mra+async", "mra+sync-async", "graph-engine"],
    )
    text = (
        "Figure 10 -- gain from MRA evaluation and sync-async execution\n"
        + format_table(rows)
        + "\n"
        + "\n".join(notes)
        + "\n\n"
        + chart
    )
    return ExperimentReport("figure10", rows, text, notes)


# --------------------------------------------------------------------------
# Figure 11 -- unified sync-async vs AAP
# --------------------------------------------------------------------------
def run_figure11(
    datasets: Sequence[str] = ("wiki", "web", "arabic"),
    scale: float = 1.0,
) -> ExperimentReport:
    """Sync / Async / AAP / Sync-Async on SSSP and PageRank."""
    cluster = ClusterConfig()
    rows = []
    wins = 0
    cells = 0
    for program in ("sssp", "pagerank"):
        for dataset in datasets:
            plan = _plan(program, dataset, scale)
            configs = {
                "sync": SyncEngine(plan, cluster, mode="incremental"),
                "async": AsyncEngine(
                    plan,
                    cluster,
                    buffer_policy=BufferPolicy(initial_beta=64, adaptive=False),
                ),
                "aap": AAPEngine(plan, cluster),
                "sync-async": UnifiedEngine(plan, cluster),
            }
            cell: dict = {"program": program, "dataset": dataset}
            for label, engine in configs.items():
                result = engine.run()
                seconds = _seconds(result)
                if not _result_ok(program, dataset, scale, result.values):
                    seconds = float("nan")
                cell[label] = seconds
            best = min(
                (label for label in configs if not math.isnan(cell[label])),
                key=lambda label: cell[label],
            )
            cell["best"] = best
            cells += 1
            wins += best == "sync-async"
            rows.append(cell)
    notes = [f"sync-async best on {wins}/{cells} cells (paper: all)"]
    chart = grouped_bar_chart(
        [
            {**row, "cell": f"{row['program']}/{row['dataset']}"}
            for row in rows
        ],
        "cell",
        ["sync", "async", "aap", "sync-async"],
    )
    text = (
        "Figure 11 -- unified sync-async vs AAP\n"
        + format_table(rows)
        + "\n"
        + "\n".join(notes)
        + "\n\n"
        + chart
    )
    return ExperimentReport("figure11", rows, text, notes)


# --------------------------------------------------------------------------
# Extension: adaptive buffer ablation (section 5.3)
# --------------------------------------------------------------------------
def run_buffer_ablation(
    programs: Sequence[str] = ("sssp", "pagerank"),
    datasets: Sequence[str] = ("livej", "arabic"),
    scale: float = 1.0,
    observe: bool = False,
) -> ExperimentReport:
    """Fixed small / fixed large / adaptive message buffers.

    With ``observe=True`` the adaptive run carries an
    :class:`repro.obs.Observability` and the report appends per-worker
    ``beta(i,j)`` time-series sparklines -- the paper's section 5.3 knob
    made visible.  Observability never touches the simulation's RNG or
    clock, so the measured seconds are identical either way.
    """
    cluster = ClusterConfig()
    rows = []
    beta_sections: list[str] = []
    for program in programs:
        for dataset in datasets:
            plan = _plan(program, dataset, scale)
            configs = {
                "beta=4": BufferPolicy(initial_beta=4, adaptive=False),
                "beta=64": BufferPolicy(initial_beta=64, adaptive=False),
                "beta=1024": BufferPolicy(initial_beta=1024, adaptive=False),
                "adaptive": BufferPolicy(adaptive=True),
            }
            cell: dict = {"program": program, "dataset": dataset}
            for label, policy in configs.items():
                obs = Observability() if observe and label == "adaptive" else None
                result = UnifiedEngine(
                    plan, cluster, buffer_policy=policy, obs=obs
                ).run()
                seconds = _seconds(result)
                if not _result_ok(program, dataset, scale, result.values):
                    seconds = float("nan")
                cell[label] = seconds
                cell[f"{label} msgs"] = result.counters.messages
                if obs is not None and result.metrics is not None:
                    lines = [f"beta(i,j) over time -- {program}/{dataset}:"]
                    for labels, series in result.metrics.gauge_series("buffer.beta"):
                        pair = dict(labels)
                        values = [value for _, value in series]
                        lines.append(
                            f"  beta({pair.get('worker')},{pair.get('target')}) "
                            f"{sparkline(values)}  "
                            f"[{values[0]:.0f} -> {values[-1]:.0f}, "
                            f"{len(values)} adaptations]"
                        )
                    if len(lines) > 1:
                        beta_sections.append("\n".join(lines))
            rows.append(cell)
    text = "Adaptive buffer ablation (section 5.3)\n" + format_table(rows)
    if beta_sections:
        text += "\n\n" + "\n\n".join(beta_sections)
    return ExperimentReport("buffer_ablation", rows, text)


# --------------------------------------------------------------------------
# Extension: importance-threshold ablation (section 5.4)
# --------------------------------------------------------------------------
def run_priority_ablation(
    programs: Sequence[str] = ("pagerank", "katz", "adsorption"),
    datasets: Sequence[str] = ("livej", "arabic"),
    scale: float = 1.0,
) -> ExperimentReport:
    """The section 5.4 sum optimisation: with vs without the threshold."""
    cluster = ClusterConfig()
    rows = []
    for program in programs:
        for dataset in datasets:
            plan = _plan(program, dataset, scale)
            with_threshold = UnifiedEngine(plan, cluster).run()
            without = UnifiedEngine(plan, cluster, importance_threshold=0.0).run()
            rows.append(
                {
                    "program": program,
                    "dataset": dataset,
                    "with(s)": _seconds(with_threshold),
                    "without(s)": _seconds(without),
                    "with F'": with_threshold.counters.fprime_applications,
                    "without F'": without.counters.fprime_applications,
                    "work saved": (
                        f"{100 * (1 - with_threshold.counters.fprime_applications / max(1, without.counters.fprime_applications)):.0f}%"
                    ),
                }
            )
    text = "Importance-threshold ablation (section 5.4)\n" + format_table(rows)
    return ExperimentReport("priority_ablation", rows, text)


# --------------------------------------------------------------------------
# Extension: worker-count scaling
# --------------------------------------------------------------------------
def run_worker_scaling(
    programs: Sequence[str] = ("sssp", "pagerank"),
    dataset: str = "livej",
    worker_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    scale: float = 1.0,
) -> ExperimentReport:
    """Simulated-time scaling of the unified engine with cluster size.

    Not a paper figure (the paper fixes 16 workers); a reproduction
    extension that doubles as a regression guard on the simulator's
    scaling behaviour (compute divides across workers, coordination
    costs do not).
    """
    rows = []
    for program in programs:
        plan = _plan(program, dataset, scale)
        row: dict = {"program": program, "dataset": dataset}
        base = None
        for workers in worker_counts:
            cluster = ClusterConfig(num_workers=workers)
            result = UnifiedEngine(plan, cluster).run()
            seconds = _seconds(result)
            if not _result_ok(program, dataset, scale, result.values):
                seconds = float("nan")
            row[f"{workers}w"] = seconds
            if base is None:
                base = seconds
        row["speedup"] = f"{base / row[f'{worker_counts[-1]}w']:.1f}x"
        rows.append(row)
    text = "Worker-count scaling (unified engine)\n" + format_table(rows)
    return ExperimentReport("worker_scaling", rows, text)


# --------------------------------------------------------------------------
# Extension: single-node engine micro-comparison on all programs
# --------------------------------------------------------------------------
def run_engine_micro() -> ExperimentReport:
    """Naive vs semi-naive vs MRA work counters on every program."""
    vertex_graph = rmat(80, 400, seed=21, name="micro")
    dag = random_dag(60, 200, seed=22, name="micro-dag")
    pair_graph = rmat(16, 48, seed=23, name="micro-pair")
    graph_for = {
        "sssp": vertex_graph,
        "cc": vertex_graph,
        "pagerank": vertex_graph,
        "adsorption": vertex_graph,
        "katz": vertex_graph,
        "bp": pair_graph,
        "dag_paths": dag,
        "cost": dag,
        "viterbi": dag,
        "simrank": pair_graph,
        "lca": vertex_graph,
        "apsp": pair_graph,
    }
    rows = []
    for program, graph in graph_for.items():
        spec = PROGRAMS[program]
        analysis = spec.analysis()
        db = spec.build_database(graph)
        naive = NaiveEvaluator(analysis, db).run()
        plan = spec.plan(graph)
        mra = MRAEvaluator(plan).run()
        row = {
            "program": program,
            "naive bindings": naive.counters.bindings_produced,
            "naive iters": naive.counters.iterations,
            "mra F'": mra.counters.fprime_applications,
            "mra iters": mra.counters.iterations,
        }
        if analysis.aggregate.is_idempotent:
            semi = SemiNaiveEvaluator(analysis, db).run()
            row["semi-naive bindings"] = semi.counters.bindings_produced
        rows.append(row)
    text = "Single-node engine micro-comparison\n" + format_table(rows)
    return ExperimentReport("engine_micro", rows, text)
