"""Paper-style table formatting and report persistence."""

from __future__ import annotations

import os
from typing import Mapping, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results")


def format_table(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_cell(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(_cell(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_grid(
    cells: Mapping[tuple[str, str], float],
    row_labels: Sequence[str],
    column_labels: Sequence[str],
    title: str = "",
    unit: str = "s",
) -> str:
    """Render a (row x column) -> value mapping as a matrix table."""
    rows = []
    for row_label in row_labels:
        row: dict = {"": row_label}
        for column_label in column_labels:
            value = cells.get((row_label, column_label))
            row[column_label] = f"{value:.2f}{unit}" if value is not None else "-"
        rows.append(row)
    table = format_table(rows, columns=[""] + list(column_labels))
    return f"{title}\n{table}" if title else table


def write_report(name: str, content: str) -> str:
    """Persist a report under ``benchmarks/results/`` and return its path."""
    directory = os.path.abspath(RESULTS_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
        if not content.endswith("\n"):
            handle.write("\n")
    return path
