"""Kernel backend benchmark: pure-Python vs vectorized NumPy runtime.

Times the MRA inner loop (the hot path every engine now delegates to a
:class:`repro.runtime.Kernel`) under both registered backends on the
same compiled plans, asserts the fixpoints agree *bit for bit* while
timing, and records the rows -- backend and numpy version included --
as the committed baseline ``benchmarks/results/BENCH_kernels.json``.

Wall-clock seconds vary with the host; the structure of the claim does
not: the vectorized backend must beat the reference loop by >= 3x on
the dense-frontier programs at scale >= 0.5 (``SPEEDUP_FLOOR``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Sequence

from repro.bench.harness import ExperimentReport
from repro.bench.report import format_table
from repro.engine.mra import MRAEvaluator
from repro.graphs import load_dataset
from repro.programs import PROGRAMS
from repro.runtime import available_backends, numpy_version

#: acceptance floor for the vectorized backend on dense-frontier MRA
SPEEDUP_FLOOR = 3.0

#: programs whose frontiers stay dense enough for vectorization to pay;
#: sparse-frontier programs (sssp) ride along for honest reporting but
#: are not held to the floor
DENSE_PROGRAMS = ("pagerank", "katz", "adsorption")
SPARSE_PROGRAMS = ("sssp", "cc")

BASELINE_PATH = os.path.join("benchmarks", "results", "BENCH_kernels.json")


def _time_run(plan_factory, backend: str, repeats: int):
    """Best-of-``repeats`` wall time of one full MRA run; fresh plan each
    time so per-plan kernel caches (CSR packing) are paid, not hidden."""
    best = None
    result = None
    for _ in range(repeats):
        plan = plan_factory()
        started = time.perf_counter()
        result = MRAEvaluator(plan, backend=backend).run()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_kernel_bench(
    scale: float = 0.25,
    speedup_scale: float = 0.5,
    dataset: str = "livej",
    programs: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> ExperimentReport:
    """Both backends on every program at ``scale`` and ``speedup_scale``.

    Returns an :class:`ExperimentReport` whose rows carry the backend
    and numpy version (the bench result JSON contract); the report's
    ``speedups`` attribute maps dense-frontier programs to their
    python/numpy ratio at the larger scale.
    """
    programs = list(programs or (*DENSE_PROGRAMS, *SPARSE_PROGRAMS))
    backends = available_backends()
    scales = sorted({scale, max(scale, speedup_scale)})
    rows = []
    timings: dict[tuple, float] = {}
    for current_scale in scales:
        graph = load_dataset(dataset, current_scale)
        for program in programs:
            spec = PROGRAMS[program]
            reference_values = None
            for backend in backends:
                seconds, result = _time_run(
                    lambda: spec.plan(graph), backend, repeats
                )
                if reference_values is None:
                    reference_values = result.values
                elif result.values != reference_values:
                    raise AssertionError(
                        f"{program}@{current_scale}: backend {backend!r} "
                        "fixpoint differs from the reference backend"
                    )
                timings[(program, current_scale, backend)] = seconds
                rows.append(
                    {
                        "program": program,
                        "dataset": dataset,
                        "scale": current_scale,
                        "backend": backend,
                        "numpy": numpy_version() if backend == "numpy" else None,
                        "seconds": round(seconds, 6),
                        "iterations": result.counters.iterations,
                        "fprime": result.counters.fprime_applications,
                        "fixpoint_matches": True,
                    }
                )
    speedups = {}
    if "numpy" in backends:
        check_scale = max(scales)
        for program in programs:
            python_seconds = timings[(program, check_scale, "python")]
            numpy_seconds = timings[(program, check_scale, "numpy")]
            speedups[program] = round(python_seconds / numpy_seconds, 2)
    notes = [
        f"backends: {', '.join(backends)}; numpy {numpy_version() or 'absent'}",
    ]
    for program, ratio in speedups.items():
        floor = (
            f" (floor {SPEEDUP_FLOOR:.0f}x)" if program in DENSE_PROGRAMS else ""
        )
        notes.append(
            f"{program}@{max(scales)}: numpy {ratio:.1f}x over python{floor}"
        )
    text = (
        "Kernel backends -- MRA inner loop, python vs numpy\n"
        + format_table(rows)
        + "\n"
        + "\n".join(notes)
    )
    report = ExperimentReport("kernels", rows, text, notes)
    report.speedups = speedups  # type: ignore[attr-defined]
    return report


def write_kernel_baseline(report: ExperimentReport, path: str = BASELINE_PATH) -> str:
    """Persist the committed JSON baseline for ``make smoke-bench``."""
    payload = {
        "benchmark": "kernels",
        "backends": available_backends(),
        "numpy_version": numpy_version(),
        "speedup_floor": SPEEDUP_FLOOR,
        "dense_programs": list(DENSE_PROGRAMS),
        "speedups": getattr(report, "speedups", {}),
        "rows": report.rows,
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
