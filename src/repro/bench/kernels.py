"""Kernel backend benchmark: python vs numpy vs sparse (vs jit) runtime.

Times the MRA inner loop (the hot path every engine now delegates to a
:class:`repro.runtime.Kernel`) under every registered backend on the
same compiled plans, asserts the fixpoints agree *bit for bit* while
timing, and records the deterministic work rows as the committed
baseline ``benchmarks/results/BENCH_kernels.json``.

Two acceptance floors are guarded:

* the vectorized numpy backend beats the pure-Python reference loop by
  >= ``SPEEDUP_FLOOR`` on the dense-frontier programs at scale >= 0.5;
* the sparse-frontier backend beats numpy by >= ``SPARSE_FLOOR`` on the
  selective-aggregate programs (``sssp``, ``cc``) at scale >=
  ``SPARSE_FLOOR_SCALE`` -- frontier compaction plus columnar CSR
  packing must pay off exactly where per-superstep frontiers are small.

The committed baseline is **byte-stable**: wall-clock seconds and host
library versions never enter it, only work counters (deterministic per
graph/program/backend) and the boolean floor verdicts; floats are
rounded to 9 decimals.  Re-running the bench on any host therefore
never dirties the checked-in file unless the work actually changed.
The wall-clock ratios live in the report text and in the bench-gate's
fresh measurement, not in git.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional, Sequence

from repro.bench.harness import ExperimentReport
from repro.bench.report import format_table
from repro.engine.mra import MRAEvaluator
from repro.graphs import load_dataset
from repro.programs import PROGRAMS
from repro.runtime import available_backends, get_kernel, numpy_version

#: acceptance floor for the vectorized backend on dense-frontier MRA
SPEEDUP_FLOOR = 3.0

#: acceptance floor for the sparse backend over numpy on the
#: selective-aggregate (sparse-frontier) programs ...
SPARSE_FLOOR = 3.0
#: ... asserted from this scale upward (small graphs are all fixed cost)
SPARSE_FLOOR_SCALE = 1.0

#: programs whose frontiers stay dense enough for vectorization to pay
DENSE_PROGRAMS = ("pagerank", "katz", "adsorption")
#: selective-aggregate programs whose frontiers collapse after the first
#: supersteps -- the sparse backend's home turf
SPARSE_PROGRAMS = ("sssp", "cc")
#: the four semiring families (boolean, counting, k-tropical, Viterbi)
#: ride along at their fixture graphs rather than the scaled dataset:
#: path counting needs an acyclic input whose multiplicity products stay
#: below 2^53 (float64 exactness), so their rows pin work counters and
#: per-backend agreement, not speedup floors
SEMIRING_PROGRAMS = ("why_reach", "path_count", "kpaths", "reach_prob")
#: scale recorded on the fixture-graph semiring rows (they do not vary
#: with the dataset scale knob)
SEMIRING_ROW_SCALE = 1.0

BASELINE_PATH = os.path.join("benchmarks", "results", "BENCH_kernels.json")


def _round9(value):
    """Round floats (recursively) to 9 decimals for byte-stable JSON."""
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, dict):
        return {key: _round9(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round9(inner) for inner in value]
    return value


def _time_run(plan_factory, backend: str, repeats: int):
    """Best-of-``repeats`` wall time of one full MRA run; fresh plan each
    time so per-plan kernel caches (CSR packing) are paid, not hidden."""
    best = None
    result = None
    for _ in range(repeats):
        plan = plan_factory()
        started = time.perf_counter()
        result = MRAEvaluator(plan, backend=backend).run()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def run_kernel_bench(
    scale: float = 0.25,
    speedup_scale: float = 1.0,
    dataset: str = "livej",
    programs: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> ExperimentReport:
    """Every registered backend on every program at both scales.

    Returns an :class:`ExperimentReport` whose rows carry the backend
    and the deterministic work counters; the report's ``speedups``
    attribute maps programs to their python/numpy ratio at the larger
    scale, ``sparse_speedups`` to their numpy/sparse ratio, and
    ``crossover`` to the full (program, scale) -> numpy/sparse table
    showing where frontier compaction starts to win.
    """
    programs = list(programs or (*DENSE_PROGRAMS, *SPARSE_PROGRAMS))
    backends = available_backends()
    scales = sorted({scale, max(scale, speedup_scale)})
    rows = []
    timings: dict[tuple, float] = {}
    for current_scale in scales:
        graph = load_dataset(dataset, current_scale)
        for program in programs:
            spec = PROGRAMS[program]
            reference_values = None
            reference_counters = None
            for backend in backends:
                seconds, result = _time_run(
                    lambda: spec.plan(graph), backend, repeats
                )
                counters = result.counters.snapshot()
                if reference_values is None:
                    reference_values = result.values
                    reference_counters = counters
                else:
                    if result.values != reference_values:
                        raise AssertionError(
                            f"{program}@{current_scale}: backend {backend!r} "
                            "fixpoint differs from the reference backend"
                        )
                    if counters != reference_counters:
                        raise AssertionError(
                            f"{program}@{current_scale}: backend {backend!r} "
                            "work counters differ from the reference backend"
                        )
                timings[(program, current_scale, backend)] = seconds
                rows.append(
                    {
                        "program": program,
                        "dataset": dataset,
                        "scale": current_scale,
                        "backend": backend,
                        "seconds": round(seconds, 6),
                        "iterations": result.counters.iterations,
                        "work": {
                            "combines": counters["combines"],
                            "updates": counters["updates"],
                            "fprime_applications": counters[
                                "fprime_applications"
                            ],
                        },
                        "fixpoint_matches": True,
                    }
                )
    # semiring-family rows: fixture graphs, every supporting backend,
    # same bit-exactness contract (kpaths' KTuple carrier is refused by
    # the float64 backends via supports_plan, so its rows cover only
    # the object-capable ones)
    from repro.distributed.chaos_harness import default_graph

    for program in SEMIRING_PROGRAMS:
        spec = PROGRAMS[program]
        graph = default_graph(program, seed=7)
        probe_plan = spec.plan(graph)
        reference_values = None
        reference_counters = None
        for backend in backends:
            if not get_kernel(backend).supports_plan(probe_plan):
                continue
            seconds, result = _time_run(
                lambda: spec.plan(graph), backend, repeats
            )
            counters = result.counters.snapshot()
            if reference_values is None:
                reference_values = result.values
                reference_counters = counters
            else:
                if result.values != reference_values:
                    raise AssertionError(
                        f"{program}@fixture: backend {backend!r} "
                        "fixpoint differs from the reference backend"
                    )
                if counters != reference_counters:
                    raise AssertionError(
                        f"{program}@fixture: backend {backend!r} "
                        "work counters differ from the reference backend"
                    )
            rows.append(
                {
                    "program": program,
                    "dataset": graph.name,
                    "scale": SEMIRING_ROW_SCALE,
                    "backend": backend,
                    "seconds": round(seconds, 6),
                    "iterations": result.counters.iterations,
                    "work": {
                        "combines": counters["combines"],
                        "updates": counters["updates"],
                        "fprime_applications": counters[
                            "fprime_applications"
                        ],
                    },
                    "fixpoint_matches": True,
                }
            )

    check_scale = max(scales)
    speedups = {}
    sparse_speedups = {}
    crossover = {}
    if "numpy" in backends:
        for program in programs:
            python_seconds = timings[(program, check_scale, "python")]
            numpy_seconds = timings[(program, check_scale, "numpy")]
            speedups[program] = round(python_seconds / numpy_seconds, 2)
    if "sparse" in backends and "numpy" in backends:
        for current_scale in scales:
            for program in programs:
                ratio = (
                    timings[(program, current_scale, "numpy")]
                    / timings[(program, current_scale, "sparse")]
                )
                crossover[f"{program}@{current_scale}"] = round(ratio, 2)
        for program in programs:
            sparse_speedups[program] = crossover[f"{program}@{check_scale}"]
    notes = [
        f"backends: {', '.join(backends)}; numpy {numpy_version() or 'absent'}",
    ]
    for program, ratio in speedups.items():
        floor = (
            f" (floor {SPEEDUP_FLOOR:.0f}x)" if program in DENSE_PROGRAMS else ""
        )
        notes.append(
            f"{program}@{check_scale}: numpy {ratio:.1f}x over python{floor}"
        )
    if crossover:
        notes.append(
            "sparse-vs-dense crossover (numpy seconds / sparse seconds; "
            ">1 means frontier compaction wins):"
        )
        crossover_rows = [
            {
                "program": program,
                **{
                    f"@{current_scale}": crossover[f"{program}@{current_scale}"]
                    for current_scale in scales
                },
            }
            for program in programs
        ]
        notes.append(format_table(crossover_rows))
        for program in SPARSE_PROGRAMS:
            floor = (
                f" (floor {SPARSE_FLOOR:.0f}x at scale >= {SPARSE_FLOOR_SCALE})"
                if check_scale >= SPARSE_FLOOR_SCALE
                else " (floor not asserted below scale "
                f"{SPARSE_FLOOR_SCALE})"
            )
            notes.append(
                f"{program}@{check_scale}: sparse "
                f"{sparse_speedups[program]:.1f}x over numpy{floor}"
            )
    text = (
        "Kernel backends -- MRA inner loop across registered backends\n"
        + format_table(rows)
        + "\n"
        + "\n".join(notes)
    )
    report = ExperimentReport("kernels", rows, text, notes)
    report.speedups = speedups  # type: ignore[attr-defined]
    report.sparse_speedups = sparse_speedups  # type: ignore[attr-defined]
    report.crossover = crossover  # type: ignore[attr-defined]
    report.check_scale = check_scale  # type: ignore[attr-defined]
    return report


def kernel_floors_met(report: ExperimentReport) -> dict[str, bool]:
    """The two acceptance-floor verdicts for ``report`` (committed)."""
    speedups = getattr(report, "speedups", {})
    sparse_speedups = getattr(report, "sparse_speedups", {})
    check_scale = getattr(report, "check_scale", 0.0)
    return {
        "numpy_dense_3x": bool(speedups)
        and all(
            speedups.get(program, 0.0) >= SPEEDUP_FLOOR
            for program in DENSE_PROGRAMS
        ),
        "sparse_selective_3x": bool(sparse_speedups)
        and check_scale >= SPARSE_FLOOR_SCALE
        and all(
            sparse_speedups.get(program, 0.0) >= SPARSE_FLOOR
            for program in SPARSE_PROGRAMS
        ),
    }


def write_kernel_baseline(report: ExperimentReport, path: str = BASELINE_PATH) -> str:
    """Persist the committed JSON baseline for the CI bench gate.

    Byte-stable by construction: wall-clock columns and library
    versions are dropped, only the deterministic work rows and the
    boolean floor verdicts remain (floats rounded to 9 decimals).
    """
    stable_rows = [
        {key: value for key, value in row.items() if key != "seconds"}
        for row in report.rows
    ]
    payload = {
        "benchmark": "kernels",
        "backends": available_backends(),
        "speedup_floor": SPEEDUP_FLOOR,
        "sparse_floor": SPARSE_FLOOR,
        "sparse_floor_scale": SPARSE_FLOOR_SCALE,
        "dense_programs": list(DENSE_PROGRAMS),
        "sparse_programs": list(SPARSE_PROGRAMS),
        "semiring_programs": list(SEMIRING_PROGRAMS),
        "floors_met": kernel_floors_met(report),
        "rows": stable_rows,
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_round9(payload), handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
