"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment has a runner returning structured rows plus a formatter
that prints them in the paper's layout; the ``benchmarks/`` directory
wires these into pytest-benchmark targets.  ``paper_data`` embeds the
numbers and prose claims from the paper so every report shows
paper-vs-measured side by side.
"""

from repro.bench.report import format_table, format_grid, write_report
from repro.bench.charts import bar_chart, grouped_bar_chart, sparkline, convergence_chart
from repro.bench.paper_data import (
    PAPER_FIGURE1,
    PAPER_SPEEDUP_CLAIMS,
    PAPER_TABLE2,
    PAPER_FIGURE10_CLAIMS,
)
from repro.bench.harness import (
    run_figure1,
    run_table1,
    run_table2,
    run_figure9,
    run_figure10,
    run_figure11,
    run_buffer_ablation,
    run_priority_ablation,
    run_engine_micro,
    run_worker_scaling,
)
from repro.bench.kernels import run_kernel_bench, write_kernel_baseline
from repro.bench.delta import run_delta_bench, write_delta_baseline

__all__ = [
    "format_table",
    "bar_chart",
    "grouped_bar_chart",
    "sparkline",
    "convergence_chart",
    "format_grid",
    "write_report",
    "PAPER_FIGURE1",
    "PAPER_SPEEDUP_CLAIMS",
    "PAPER_TABLE2",
    "PAPER_FIGURE10_CLAIMS",
    "run_figure1",
    "run_table1",
    "run_table2",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_buffer_ablation",
    "run_priority_ablation",
    "run_engine_micro",
    "run_worker_scaling",
    "run_kernel_bench",
    "write_kernel_baseline",
    "run_delta_bench",
    "write_delta_baseline",
]
