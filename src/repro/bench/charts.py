"""Plain-text charts for benchmark reports.

The paper presents its evaluation as bar charts (Figures 1, 9, 10, 11);
this module renders the reproduced numbers in the same visual shape as
ASCII bars, plus convergence curves from the engines' traces -- so a
terminal-only environment still gets figure-like artefacts next to the
tables.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_BAR = "#"
_TICKS = " .:-=+*#%@"


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 48,
    log_scale: bool = False,
    unit: str = "s",
) -> str:
    """Horizontal bars, one per labelled value (NaN rendered as such).

    ``log_scale`` mirrors the paper's log-axis Figures 9 and 10.
    """
    finite = [v for v in values.values() if v is not None and not math.isnan(v)]
    if not finite:
        return f"{title}\n(no data)"
    peak = max(finite)
    floor = min(v for v in finite if v > 0) if any(v > 0 for v in finite) else 1.0
    if log_scale and peak < 10 * floor:
        log_scale = False  # under one decade a log axis just distorts
    label_width = max(len(str(label)) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        if value is None or math.isnan(value):
            lines.append(f"{str(label):<{label_width}}  (wrong result)")
            continue
        if log_scale and value > 0 and peak > floor:
            fraction = (math.log10(value) - math.log10(floor)) / (
                math.log10(peak) - math.log10(floor)
            )
            fraction = max(fraction, 0.02)
        else:
            fraction = value / peak if peak else 0.0
        bar = _BAR * max(1, round(fraction * width))
        lines.append(f"{str(label):<{label_width}}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Sequence[Mapping],
    group_key: str,
    series: Sequence[str],
    title: str = "",
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """One bar block per row (e.g. per dataset), bars for each series.

    This is the shape of the paper's Figure 9/10 panels: datasets along
    the x axis, one bar per system.
    """
    blocks = [title] if title else []
    for row in rows:
        values = {name: row.get(name) for name in series if row.get(name) is not None}
        blocks.append(
            bar_chart(values, title=str(row[group_key]), width=width, log_scale=log_scale)
        )
    return "\n\n".join(blocks)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line log-scale sparkline (for convergence traces)."""
    if not values:
        return "(empty)"
    clean = [max(v, 0.0) for v in values]
    if len(clean) > width:
        # downsample by taking the max of each bucket (keeps spikes)
        bucket = len(clean) / width
        clean = [
            max(clean[int(i * bucket) : max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    positives = [v for v in clean if v > 0]
    if not positives:
        return _TICKS[0] * len(clean)
    lo = math.log10(min(positives))
    hi = math.log10(max(positives))
    span = (hi - lo) or 1.0
    out = []
    for value in clean:
        if value <= 0:
            out.append(_TICKS[0])
            continue
        level = (math.log10(value) - lo) / span
        out.append(_TICKS[1 + round(level * (len(_TICKS) - 2))])
    return "".join(out)


def convergence_chart(
    traces: Mapping[str, Sequence[tuple]],
    title: str = "convergence (total |delta| per round, log scale)",
) -> str:
    """Sparklines of per-round delta magnitude for several engines."""
    label_width = max((len(str(k)) for k in traces), default=0)
    lines = [title]
    for label, trace in traces.items():
        deltas = [delta for _, delta in trace]
        final = deltas[-1] if deltas else float("nan")
        lines.append(
            f"{str(label):<{label_width}}  {sparkline(deltas)}  "
            f"({len(deltas)} rounds, final {final:.2g})"
        )
    return "\n".join(lines)
