"""The vertex-runtime kernel contract.

A :class:`Kernel` owns one partition of MonoTable state (the
accumulation and intermediate columns of paper Figure 7) together with
the recursive inner loop over it: fetch pending deltas, combine them
into the accumulation column with ``G``, apply ``F'`` along the
compiled plan's out-edges, and route the resulting contributions.  The
engines -- single-node MRA and all four distributed modes -- only
*schedule* kernels; they no longer touch per-vertex state themselves.

Two interchangeable backends implement the contract:

* :class:`~repro.runtime.python_kernel.PythonKernel` -- the reference
  dict-based loop (a lift of the original MonoTable code paths);
* :class:`~repro.runtime.numpy_kernel.NumpyKernel` -- CSR-packed edges
  with vectorised batch aggregation.

Both are engineered to be *bit-identical*: same fixpoint values, same
``WorkCounters``, same simulated timing, same fault accounting (see
DESIGN.md, "Runtime layer").  The backend is chosen per engine
(``backend=``), per process (``REPRO_BACKEND``), or per CLI invocation
(``--backend``).  The special name ``auto`` defers the choice to the
static cost model: plans the frontier pass certifies for bucketed
delta-stepping (RA330) resolve to ``sparse``, dense plans to ``numpy``
(matching the BENCH_kernels crossover), with availability and carrier
support still honoured.

Unified work accounting
-----------------------

Historically the sync engine counted ``fprime_applications`` as
*accumulates + edge applications* while MRA and async counted slightly
different mixes.  The kernel is now the single place counters are
incremented, with one meaning everywhere:

* ``fprime_applications`` -- number of ``F'`` edge applications;
* ``combines`` -- number of times the binary ``g`` actually executed
  (accumulating onto an existing entry, folding an outbox, pushing onto
  a non-empty intermediate entry);
* ``updates`` -- accumulation-column entries that changed.

The simulated cost models keep their original currency --
*accumulate attempts + edge applications* -- which every
:meth:`Kernel.apply_batch` returns separately as :attr:`BatchResult.ops`
so unifying the observable metrics does not silently re-price
``simulated_seconds``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, TypeVar

from repro.engine.result import WorkCounters
from repro.runtime.compat import NUMPY_INSTALL_HINT

DEFAULT_BACKEND = "python"

#: environment variable consulted when no explicit backend is given
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: pseudo-backend: resolved per plan by the static cost model
AUTO_BACKEND = "auto"


class KernelUnavailableError(ImportError):
    """The requested backend cannot run in this environment."""


@dataclass
class BatchResult:
    """Outcome of one kernel propagation round over a batch of deltas."""

    #: pre-folded outbound contributions ``dst -> g-combined value``
    #: (round mode only; local mode routes through ``emit`` instead)
    out_deltas: dict = field(default_factory=dict)
    #: accumulation-column entries that changed
    changed: int = 0
    #: total delta magnitude of the changed entries (termination input)
    magnitude: float = 0.0
    #: cost-model currency: accumulate attempts + edge applications
    ops: int = 0


class Kernel:
    """Base class/contract for vertex-runtime execution backends.

    Kernels deliberately keep the MonoTable attribute protocol
    (``aggregate`` / ``accumulated`` / ``intermediate`` plus the
    push/fetch/drain/accumulate methods) so the existing
    :class:`~repro.distributed.fault.Checkpointer` and the chaos
    snapshot machinery work unchanged on every backend.
    """

    backend = "abstract"

    #: shown by :func:`get_kernel` when the backend cannot run here
    install_hint = NUMPY_INSTALL_HINT

    #: the plan's aggregate (semiring ⊕); set by concrete ``__init__``s
    aggregate: Any

    #: unified work accounting (see module docstring)
    counters: WorkCounters

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_plan(
        cls,
        plan: Any,
        keys: Optional[Iterable] = None,
        counters: Optional[WorkCounters] = None,
        initial: Optional[dict] = None,
    ) -> "Kernel":
        """Build per-partition state for ``keys`` (all plan keys if None)."""
        raise NotImplementedError

    @classmethod
    def available(cls) -> bool:
        return True

    @classmethod
    def supports_plan(cls, plan: Any) -> bool:
        """Can this backend execute ``plan``'s semiring carrier?

        The default is universal support.  Backends whose state lives in
        float64 arrays or value-ordered buckets (sparse, jit) override
        this to refuse plans over non-numeric semiring carriers (e.g.
        k-tropical ``KTuple`` values); callers should fall back to an
        object-capable backend for those plans.
        """
        return True

    # -- ΔX¹ (section 3.3) ------------------------------------------------------
    @classmethod
    def initial_delta(cls, plan: Any) -> dict:
        """``ΔX¹`` such that ``X¹ = G(ΔX¹ ∪ X⁰)`` (section 3.3).

        The reference implementation lives in
        :func:`repro.engine.mra.compute_initial_delta`; backends may
        override with a fused equivalent but must return the *same dict
        in the same key order* -- insertion order is observable through
        the pending column (async batch selection, delta-stepping
        takes), so this is part of the bit-exactness contract.
        """
        from repro.engine.mra import compute_initial_delta

        return compute_initial_delta(plan)

    # -- MonoTable protocol (Figure 7) ------------------------------------------
    def push(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def push_many(self, deltas: Iterable[tuple]) -> None:
        for key, value in deltas:
            self.push(key, value)

    def fetch_and_reset(self, key: Any) -> Any:
        raise NotImplementedError

    def drain_all(self) -> dict:
        raise NotImplementedError

    def accumulate(self, key: Any, tmp: Any) -> tuple[bool, float]:
        raise NotImplementedError

    # -- the inner loop ---------------------------------------------------------
    def apply_batch(
        self,
        deltas: Optional[dict] = None,
        *,
        keys: Optional[list] = None,
        emit: Optional[Callable] = None,
    ) -> BatchResult:
        """Run one F'/G propagation round.

        Round mode (``deltas``): accumulate every delta (in canonical
        ascending key order on every backend), apply ``F'`` along the
        changed keys' out-edges and return the contributions pre-folded
        per destination in :attr:`BatchResult.out_deltas` -- the caller
        routes them (BSP outboxes, or a self push for single-node MRA).

        Local mode (``keys`` + ``emit``): process an explicit key list
        *in the given order*, fetching each key's pending entry at its
        turn (so contributions pushed by earlier keys of the same batch
        are visible -- asynchronous semantics).  Contributions for keys
        owned by this kernel are pushed immediately; foreign ones are
        handed to ``emit(dst, value, ops_so_far)`` per edge, preserving
        the caller's buffer-flush timing exactly.
        """
        raise NotImplementedError

    def apply_pending(self) -> BatchResult:
        """Drain everything pending and run one round; the caller routes
        :attr:`BatchResult.out_deltas` (they are *not* re-pushed here)."""
        return self.apply_batch(self.drain_all())

    def step(self) -> BatchResult:
        """Drain everything pending and run one full self-routed round."""
        result = self.apply_pending()
        self.push_many(result.out_deltas.items())
        return result

    # -- whole-table sweep (naive BSP mode) -------------------------------------
    @classmethod
    def full_contributions(cls, plan: Any, values: dict) -> list:
        """``F'(x)`` along every out-edge of every valued key.

        Returns ``(src, dst, value)`` triples in the iteration order of
        ``values`` (per-source edges in plan order) -- the naive engine
        keeps its own routing/fold so worker-pair accounting stays in
        the engine.
        """
        raise NotImplementedError

    # -- relational-path helpers ------------------------------------------------
    @classmethod
    def fold_contributions(
        cls,
        aggregate: Any,
        contributions: list,
        counters: Optional[WorkCounters] = None,
    ) -> dict:
        """Group-and-fold ``(key, value)`` pairs with ``g`` in arrival order."""
        raise NotImplementedError

    @classmethod
    def improve_contributions(
        cls,
        aggregate: Any,
        current: dict,
        contributions: list,
        counters: Optional[WorkCounters] = None,
    ) -> dict:
        """Semi-naive filter+fold: contributions improving ``current``.

        Returns ``key -> improved value`` for keys whose accumulated
        value would change; idempotent aggregates only.
        """
        raise NotImplementedError

    # -- inspection -------------------------------------------------------------
    def pending_keys(self) -> list:
        raise NotImplementedError

    def has_pending(self) -> bool:
        raise NotImplementedError

    def pending_count(self) -> int:
        return len(self.pending_keys())

    def pending_magnitude(self) -> float:
        raise NotImplementedError

    def pending_min(self) -> float:
        """Smallest pending delta value (delta-stepping bucket base)."""
        raise NotImplementedError

    def take_pending_below(self, threshold: float) -> dict:
        """Remove and return pending entries with value <= threshold."""
        raise NotImplementedError

    def enable_delta_stepping(self, width: float) -> None:
        """Hint that the engine will drive bucketed delta-stepping.

        Engines running in ``delta_stepping`` mode call this once per
        kernel so backends that keep bucket structures (the sparse
        kernel) can size them; the default is a no-op because the
        contract methods above already express the protocol.
        """

    def result(self) -> dict:
        raise NotImplementedError

    def global_accumulation(self) -> float:
        """Sum of |value| over the accumulation column (section 5.4)."""
        raise NotImplementedError

    # -- checkpointing / recovery -----------------------------------------------
    def snapshot(self) -> dict:
        """An opaque, self-contained copy of all kernel state."""
        raise NotImplementedError

    def restore(self, snap: dict) -> None:
        raise NotImplementedError

    def merge(self, other: "Kernel") -> None:
        """Fold another kernel's state into this one with ``g``."""
        for key, value in other.result().items():
            self.accumulate(key, value)
        for key, value in other.drain_all().items():
            self.push(key, value)

    def __len__(self) -> int:
        return len(self.result())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.aggregate.name}: "
            f"{len(self)} rows, {self.pending_count()} pending)"
        )


# -- backend registry ---------------------------------------------------------

KERNELS: dict[str, "type[Kernel]"] = {}

_KernelClass = TypeVar("_KernelClass", bound="type[Kernel]")


def register_kernel(cls: _KernelClass) -> _KernelClass:
    KERNELS[cls.backend] = cls
    return cls


def available_backends() -> list[str]:
    return [name for name, cls in KERNELS.items() if cls.available()]


def resolve_backend(backend: Optional[str] = None) -> str:
    """Pick the backend: explicit argument > ``REPRO_BACKEND`` > default.

    The pseudo-name ``auto`` passes through unresolved: it names a
    *policy*, not a kernel, and only :func:`resolve_backend_for_plan`
    can apply it (the choice depends on the plan's frontier class).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    backend = backend.strip().lower()
    if backend == AUTO_BACKEND:
        return AUTO_BACKEND
    if backend not in KERNELS:
        raise ValueError(
            f"unknown backend {backend!r}; known: "
            f"{sorted([*KERNELS, AUTO_BACKEND])}"
        )
    return backend


def auto_backend_for_plan(plan: Any) -> str:
    """The ``--backend auto`` policy: static frontier shape picks the kernel.

    Programs the frontier pass certifies for bucketed delta-stepping
    (RA330: selective idempotent ⊕ over numeric values, prescreen
    eligible) are predicted sparse-frontier and resolve to ``sparse``;
    everything else is predicted dense and resolves to ``numpy`` -- the
    same split the BENCH_kernels crossover table measures.  Unavailable
    or carrier-incompatible choices degrade through ``numpy`` then
    ``python``.  ``plan`` may be a compiled plan or a ``ProgramAnalysis``.
    """
    from repro.analysis.frontier import classify_frontier

    analysis = getattr(plan, "analysis", plan)
    frontier = classify_frontier(analysis)
    preferred = "sparse" if frontier.delta_stepping else "numpy"
    for candidate in (preferred, "numpy", DEFAULT_BACKEND):
        cls = KERNELS.get(candidate)
        if cls is not None and cls.available() and cls.supports_plan(plan):
            return candidate
    return DEFAULT_BACKEND


def resolve_backend_for_plan(plan: Any, backend: Optional[str] = None) -> str:
    """Resolve ``backend`` for one program, honouring its semiring carrier.

    A backend name is a *preference* (CLI flag, ``REPRO_BACKEND``, an
    engine passing its configured backend down); whether a kernel can
    hold a program's carrier is decided per plan by ``supports_plan``.
    A preference the plan's semiring rules out (the float64 sparse/jit
    backends against k-tropical ``KTuple`` values) degrades to the
    first supporting backend in (numpy, python) instead of crashing the
    run; numeric programs always resolve to the preference unchanged.

    ``plan`` may be anything with an ``aggregate`` attribute (a
    compiled plan or a :class:`ProgramAnalysis`).  The pseudo-name
    ``auto`` resolves here through :func:`auto_backend_for_plan`.
    """
    name = resolve_backend(backend)
    if name == AUTO_BACKEND:
        return auto_backend_for_plan(plan)
    cls = KERNELS[name]
    if not cls.available() or cls.supports_plan(plan):
        # unavailable backends are not degraded: the caller's
        # get_kernel/from_plan must raise the install hint, not be
        # silently rerouted
        return name
    for fallback in ("numpy", "python"):
        fallback_cls = KERNELS.get(fallback)
        if (
            fallback_cls is not None
            and fallback_cls.available()
            and fallback_cls.supports_plan(plan)
        ):
            return fallback
    return name


def get_kernel(backend: Optional[str] = None) -> type:
    """Resolve a backend name to its kernel class, checking availability."""
    name = resolve_backend(backend)
    if name == AUTO_BACKEND:
        raise ValueError(
            "backend 'auto' names a per-plan policy; resolve it with "
            "resolve_backend_for_plan(plan, 'auto') before get_kernel"
        )
    cls = KERNELS[name]
    if not cls.available():
        raise KernelUnavailableError(
            f"backend {name!r} is not available: {cls.install_hint}"
        )
    return cls


def record_backend_metrics(metrics: Any, engine: str, backend: str) -> None:
    """Record which backend produced a run in the metrics registry."""
    from repro.runtime.compat import numpy_version

    labels: dict = {"engine": engine, "backend": backend}
    if backend == "numpy":
        labels["numpy_version"] = numpy_version()
    metrics.inc("runtime.backend_runs", **labels)
