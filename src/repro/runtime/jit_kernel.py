"""Optional numba-JIT kernel: compiled fold/accumulate inner loops.

This backend is the sparse kernel with its two hottest per-round
primitives -- the batched accumulate and the per-destination fold --
replaced by ``@njit``-compiled sequential loops.  The win over the
vectorised versions is the elimination of the numpy temporary chain
(``where``/comparison masks/fancy-index round trips): one fused machine
loop reads each element once.

Exactness: the compiled loops perform the *same* IEEE-754 float64
comparisons and additions in the *same* order as the numpy primitives
they replace (``np.bincount`` accumulates sequentially in input order;
``np.minimum.at`` is order-insensitive selection; the accumulate loop
is elementwise), so results, work counters and magnitudes stay
bit-identical to every other backend.  No ``fastmath`` is enabled.

numba is an optional extra (``pip install 'repro[jit]'``); without it
the backend reports itself unavailable and :func:`get_kernel` raises
:class:`KernelUnavailableError` with the install hint.  If JIT
compilation itself fails at first use (unsupported platform, say), the
kernel silently falls back to the inherited sparse implementations.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.engine.result import WorkCounters
from repro.runtime.base import KernelUnavailableError, register_kernel
from repro.runtime.compat import (
    HAVE_NUMBA,
    HAVE_NUMPY,
    NUMBA_INSTALL_HINT,
    np,
    numba,
)
from repro.runtime.sparse_kernel import SparseKernel

#: compiled helper tuple, built lazily on first kernel construction;
#: False means "tried and failed -- use the inherited paths"
_JIT_HELPERS: Any = None

_MODE_SUM, _MODE_MIN, _MODE_MAX = 0, 1, 2


def _build_helpers() -> tuple:
    """Compile the inner loops once per process; None on any failure."""
    njit = numba.njit

    @njit(cache=False)
    def accumulate(
        old: Any,
        has: Any,
        tmp: Any,
        mode: int,
        acc: Any,
        idx: Any,
        new_out: Any,
        changed: Any,
        mags: Any,
    ) -> tuple:
        combines = 0
        updates = 0
        for j in range(len(idx)):
            o = old[j]
            t = tmp[j]
            if has[j]:
                combines += 1
                if mode == _MODE_SUM:
                    n = o + t
                elif mode == _MODE_MIN:
                    n = o if o <= t else t
                else:
                    n = o if o >= t else t
                if n != o:
                    changed[j] = True
                    acc[idx[j]] = n
                    if mode == _MODE_SUM:
                        mags[j] = abs(t)
                    else:
                        mags[j] = abs(n - o)
                    updates += 1
                else:
                    changed[j] = False
            else:
                changed[j] = True
                acc[idx[j]] = t
                new_out[j] = True
                mags[j] = abs(t)
                updates += 1
        return combines, updates

    @njit(cache=False)
    def fold(codes: Any, vals: Any, n_uniq: int, mode: int) -> Any:
        if mode == _MODE_SUM:
            out = np.zeros(n_uniq, dtype=np.float64)
            for j in range(len(codes)):
                out[codes[j]] += vals[j]
        elif mode == _MODE_MIN:
            out = np.full(n_uniq, np.inf)
            for j in range(len(codes)):
                if vals[j] < out[codes[j]]:
                    out[codes[j]] = vals[j]
        else:
            out = np.full(n_uniq, -np.inf)
            for j in range(len(codes)):
                if vals[j] > out[codes[j]]:
                    out[codes[j]] = vals[j]
        return out

    # warm both on tiny inputs so a compile failure surfaces here
    idx = np.asarray([0, 1], dtype=np.int64)
    acc = np.zeros(2, dtype=np.float64)
    accumulate(
        np.zeros(2),
        np.asarray([True, False]),
        np.asarray([1.0, 2.0]),
        _MODE_MIN,
        acc,
        idx,
        np.zeros(2, dtype=np.bool_),
        np.zeros(2, dtype=np.bool_),
        np.zeros(2),
    )
    fold(idx, np.asarray([1.0, 2.0]), 2, _MODE_SUM)
    return accumulate, fold


def _helpers() -> Any:
    global _JIT_HELPERS
    if _JIT_HELPERS is None:
        try:
            _JIT_HELPERS = _build_helpers()
        except Exception:  # pragma: no cover - platform-specific
            _JIT_HELPERS = False
    return _JIT_HELPERS or None


@register_kernel
class JitKernel(SparseKernel):
    """Sparse kernel with numba-compiled accumulate/fold inner loops."""

    backend = "jit"
    install_hint = NUMBA_INSTALL_HINT

    def __init__(
        self,
        plan: Any,
        keys: Optional[Iterable] = None,
        counters: Optional[WorkCounters] = None,
        initial: Optional[dict] = None,
    ) -> None:
        if not self.available():
            raise KernelUnavailableError(f"JitKernel: {NUMBA_INSTALL_HINT}")
        super().__init__(plan, keys=keys, counters=counters, initial=initial)
        self._jit = _helpers()
        self._jit_mode = {"sum": _MODE_SUM, "min": _MODE_MIN, "max": _MODE_MAX}.get(
            self._mode
        )

    @classmethod
    def available(cls) -> bool:
        return HAVE_NUMPY and HAVE_NUMBA

    def _vector_accumulate(self, idx: Any, tmp: Any) -> tuple:
        if self._jit is None or self._jit_mode is None:
            return super()._vector_accumulate(idx, tmp)
        accumulate, _ = self._jit
        m = len(idx)
        changed = np.empty(m, dtype=np.bool_)
        new_out = np.zeros(m, dtype=np.bool_)
        mags = np.zeros(m, dtype=np.float64)
        combines, updates = accumulate(
            self._acc[idx],
            self._acc_has[idx],
            np.ascontiguousarray(tmp, dtype=np.float64),
            self._jit_mode,
            self._acc,
            np.ascontiguousarray(idx, dtype=np.int64),
            new_out,
            changed,
            mags,
        )
        self.counters.combines += int(combines)
        self.counters.updates += int(updates)
        fresh = idx[new_out]
        if len(fresh):
            self._acc_has[fresh] = True
            self._acc_order.extend(fresh.tolist())
        return changed, mags

    def _fold_out(self, dsts: Any, vals: Any) -> dict:
        if self._jit is None or self._jit_mode is None:
            return super()._fold_out(dsts, vals)
        _, fold = self._jit
        uniq, first_pos, inv = np.unique(
            dsts, return_index=True, return_inverse=True
        )
        forder = np.argsort(first_pos, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[forder] = np.arange(len(uniq), dtype=np.int64)
        codes = np.ascontiguousarray(rank[inv], dtype=np.int64)
        folded = fold(
            codes,
            np.ascontiguousarray(vals, dtype=np.float64),
            len(uniq),
            self._jit_mode,
        )
        self.counters.combines += len(vals) - len(uniq)
        keys = self._keys
        out: dict = {}
        for rank_pos, dst_idx in enumerate(uniq[forder].tolist()):
            out[keys[dst_idx]] = float(folded[rank_pos])
        return out
