"""The reference dict-based kernel (lift of the original engine loops).

Semantics notes that the NumpyKernel mirrors bit-for-bit:

* batches handed to :meth:`apply_batch` in round mode are processed in
  canonical ascending key order (the plan-wide sorted-key index), so the
  floating-point fold order is identical on every backend;
* outbound contributions are folded per destination in arrival order
  (source order x plan edge order), with the destination dict keyed in
  first-occurrence order -- downstream message payloads therefore apply
  pushes in the same order on every backend;
* the ``accumulated`` and ``intermediate`` dicts keep insertion order,
  which is observable through ``global_accumulation`` (float sum order),
  async batch selection and delta-stepping bucket takes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.engine.result import WorkCounters
from repro.runtime.base import BatchResult, Kernel, register_kernel


def plan_key_order(plan: Any) -> dict:
    """key -> canonical dense index over ``sorted(plan.keys)`` (cached)."""
    order = getattr(plan, "_kernel_key_order", None)
    if order is None:
        try:
            keys_sorted = sorted(plan.keys)
        except TypeError:  # heterogeneous key types: fall back to repr order
            keys_sorted = sorted(plan.keys, key=repr)
        order = {key: i for i, key in enumerate(keys_sorted)}
        plan._kernel_key_order = order
        plan._kernel_keys_sorted = keys_sorted
    return order


@register_kernel
class PythonKernel(Kernel):
    """Pure-Python vertex runtime; the bit-exactness reference."""

    backend = "python"

    def __init__(
        self,
        plan: Any,
        keys: Optional[Iterable] = None,
        counters: Optional[WorkCounters] = None,
        initial: Optional[dict] = None,
    ) -> None:
        self.plan = plan
        self.aggregate = plan.aggregate
        self.counters = counters if counters is not None else WorkCounters()
        self._order = plan_key_order(plan)
        if initial is None:
            initial = plan.initial
        self._owned: Optional[set]
        if keys is None:
            self._owned = None
            self.accumulated: dict = dict(initial)
        else:
            self._owned = set(keys)
            self.accumulated = {
                key: value for key, value in initial.items() if key in self._owned
            }
        self.intermediate: dict = {}

    @classmethod
    def from_plan(
        cls,
        plan: Any,
        keys: Optional[Iterable] = None,
        counters: Optional[WorkCounters] = None,
        initial: Optional[dict] = None,
    ) -> "PythonKernel":
        return cls(plan, keys=keys, counters=counters, initial=initial)

    # -- MonoTable protocol -----------------------------------------------------
    def push(self, key: Any, value: Any) -> None:
        current = self.intermediate.get(key)
        if current is None:
            self.intermediate[key] = value
        else:
            self.intermediate[key] = self.aggregate.combine(current, value)
            self.counters.combines += 1

    def fetch_and_reset(self, key: Any) -> Any:
        return self.intermediate.pop(key, None)

    def drain_all(self) -> dict:
        drained = self.intermediate
        self.intermediate = {}
        return drained

    def accumulate(self, key: Any, tmp: Any) -> tuple[bool, float]:
        aggregate = self.aggregate
        old = self.accumulated.get(key)
        if old is None:
            self.accumulated[key] = tmp
            self.counters.updates += 1
            return True, aggregate.delta_magnitude(tmp)
        self.counters.combines += 1
        new = aggregate.combine(old, tmp)
        if new == old:
            return False, 0.0
        self.accumulated[key] = new
        self.counters.updates += 1
        return True, aggregate.change_magnitude(new, old, tmp)

    # -- the inner loop ---------------------------------------------------------
    def apply_batch(
        self,
        deltas: Optional[dict] = None,
        *,
        keys: Optional[list] = None,
        emit: Optional[Callable] = None,
    ) -> BatchResult:
        if deltas is not None:
            return self._apply_round(deltas)
        return self._apply_local(keys or [], emit)

    def _apply_round(self, deltas: dict) -> BatchResult:
        plan = self.plan
        combine = self.aggregate.combine
        counters = self.counters
        order = self._order
        out: dict = {}
        changed = 0
        magnitude = 0.0
        ops = 0
        edges_applied = 0
        for key, tmp in sorted(deltas.items(), key=lambda kv: order[kv[0]]):
            did_change, delta_mag = self.accumulate(key, tmp)
            ops += 1
            if not did_change:
                continue
            changed += 1
            magnitude += delta_mag
            for dst, params, fn in plan.edges_from(key):
                value = fn(tmp, *params)
                ops += 1
                edges_applied += 1
                old = out.get(dst)
                if old is None:
                    out[dst] = value
                else:
                    out[dst] = combine(old, value)
                    counters.combines += 1
        counters.fprime_applications += edges_applied
        return BatchResult(out_deltas=out, changed=changed, magnitude=magnitude, ops=ops)

    def _apply_local(self, keys: list, emit: Optional[Callable]) -> BatchResult:
        plan = self.plan
        owned = self._owned
        counters = self.counters
        changed = 0
        magnitude = 0.0
        ops = 0
        edges_applied = 0
        for key in keys:
            tmp = self.fetch_and_reset(key)
            if tmp is None:
                continue
            did_change, delta_mag = self.accumulate(key, tmp)
            ops += 1
            if not did_change:
                continue
            changed += 1
            magnitude += delta_mag
            for dst, params, fn in plan.edges_from(key):
                value = fn(tmp, *params)
                ops += 1
                edges_applied += 1
                if owned is None or dst in owned:
                    self.push(dst, value)
                elif emit is None:
                    raise TypeError("foreign contribution without an emit callback")
                else:
                    emit(dst, value, ops)
        counters.fprime_applications += edges_applied
        return BatchResult(changed=changed, magnitude=magnitude, ops=ops)

    # -- whole-table sweep (naive BSP mode) -------------------------------------
    @classmethod
    def full_contributions(cls, plan: Any, values: dict) -> list:
        triples = []
        for src, value in values.items():
            for dst, params, fn in plan.edges_from(src):
                triples.append((src, dst, fn(value, *params)))
        return triples

    # -- relational-path helpers ------------------------------------------------
    @classmethod
    def fold_contributions(
        cls,
        aggregate: Any,
        contributions: list,
        counters: Optional[WorkCounters] = None,
    ) -> dict:
        combine = aggregate.combine
        out: dict = {}
        for key, value in contributions:
            old = out.get(key)
            if old is None:
                out[key] = value
            else:
                out[key] = combine(old, value)
                if counters is not None:
                    counters.combines += 1
        return out

    @classmethod
    def improve_contributions(
        cls,
        aggregate: Any,
        current: dict,
        contributions: list,
        counters: Optional[WorkCounters] = None,
    ) -> dict:
        combine = aggregate.combine
        changed: dict = {}
        for key, value in contributions:
            old = current.get(key)
            if old is not None:
                if counters is not None:
                    counters.combines += 1
                if combine(old, value) == old:
                    continue  # idempotent aggregate: no improvement, prune
            best = changed.get(key)
            if best is None:
                if old is None:
                    improved = value
                else:
                    improved = combine(old, value)
                    if counters is not None:
                        counters.combines += 1
            else:
                improved = combine(best, value)
                if counters is not None:
                    counters.combines += 1
            changed[key] = improved
        return changed

    # -- inspection -------------------------------------------------------------
    def pending_keys(self) -> list:
        return list(self.intermediate)

    def has_pending(self) -> bool:
        return bool(self.intermediate)

    def pending_count(self) -> int:
        return len(self.intermediate)

    def pending_magnitude(self) -> float:
        return sum(
            self.aggregate.delta_magnitude(v) for v in self.intermediate.values()
        )

    def pending_min(self) -> float:
        return min(self.intermediate.values(), default=float("inf"))

    def take_pending_below(self, threshold: float) -> dict:
        take = {
            key: value
            for key, value in self.intermediate.items()
            if value <= threshold
        }
        for key in take:
            del self.intermediate[key]
        return take

    def result(self) -> dict:
        return dict(self.accumulated)

    def global_accumulation(self) -> float:
        magnitude = self.aggregate.delta_magnitude
        total = 0.0
        for value in self.accumulated.values():
            if value is not None:
                total += magnitude(value)
        return total

    # -- checkpointing / recovery -----------------------------------------------
    def snapshot(self) -> dict:
        return {
            "accumulated": dict(self.accumulated),
            "intermediate": dict(self.intermediate),
        }

    def restore(self, snap: dict) -> None:
        self.accumulated = dict(snap["accumulated"])
        self.intermediate = dict(snap["intermediate"])
