"""Shared vertex-runtime layer: pluggable execution kernels.

See :mod:`repro.runtime.base` for the contract and DESIGN.md
("Runtime layer") for the architecture notes.
"""

from repro.runtime.base import (
    AUTO_BACKEND,
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    KERNELS,
    BatchResult,
    Kernel,
    KernelUnavailableError,
    auto_backend_for_plan,
    available_backends,
    get_kernel,
    record_backend_metrics,
    register_kernel,
    resolve_backend,
    resolve_backend_for_plan,
)
from repro.runtime.compat import HAVE_NUMPY, NUMPY_INSTALL_HINT, numpy_version
from repro.runtime.python_kernel import PythonKernel

# NumpyKernel/SparseKernel register themselves on import; the modules
# import fine without numpy installed (construction raises
# KernelUnavailableError).  JitKernel additionally needs numba.
from repro.runtime.numpy_kernel import NumpyKernel
from repro.runtime.sparse_kernel import SparseKernel
from repro.runtime.jit_kernel import JitKernel

__all__ = [
    "AUTO_BACKEND",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "KERNELS",
    "BatchResult",
    "HAVE_NUMPY",
    "JitKernel",
    "Kernel",
    "KernelUnavailableError",
    "NUMPY_INSTALL_HINT",
    "NumpyKernel",
    "PythonKernel",
    "SparseKernel",
    "auto_backend_for_plan",
    "available_backends",
    "get_kernel",
    "numpy_version",
    "record_backend_metrics",
    "register_kernel",
    "resolve_backend",
    "resolve_backend_for_plan",
]
