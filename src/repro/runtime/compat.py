"""Optional-numpy shim.

numpy is an optional extra (``pip install "repro[fast]"``): the pure
Python backends and the relational engines must keep working without it.
Modules that want numpy import ``np`` from here instead of importing
numpy directly -- when numpy is installed they get the real module
(zero indirection cost beyond one attribute lookup at import time);
when it is absent they get a proxy whose *first use* raises a clean
``ImportError`` that names the extra to install, instead of an opaque
``ModuleNotFoundError`` at import time of an unrelated module.
"""

from __future__ import annotations

from typing import Any, Optional

NUMPY_INSTALL_HINT = (
    "numpy is required for this feature; install the optional extra with "
    "`pip install 'repro[fast]'` (or `pip install numpy`)"
)

try:  # pragma: no cover - exercised implicitly by every numpy-using test
    import numpy as _numpy
except ImportError:  # pragma: no cover - container always has numpy
    _numpy = None


class MissingNumpy:
    """Stand-in for the numpy module that fails loudly on first use."""

    def __init__(self, feature: str = "") -> None:
        self._feature = feature

    def __getattr__(self, name: str) -> Any:
        prefix = f"{self._feature}: " if self._feature else ""
        raise ImportError(prefix + NUMPY_INSTALL_HINT)

    def __bool__(self) -> bool:
        return False


#: the numpy module when installed, else a loud-failing proxy
np = _numpy if _numpy is not None else MissingNumpy()

HAVE_NUMPY = _numpy is not None


def numpy_version() -> Optional[str]:
    """The installed numpy version string, or ``None`` when absent."""
    return str(_numpy.__version__) if _numpy is not None else None


def require_numpy(feature: str) -> Any:
    """Return the real numpy module or raise a clean ImportError."""
    if _numpy is None:
        raise ImportError(f"{feature}: {NUMPY_INSTALL_HINT}")
    return _numpy


NUMBA_INSTALL_HINT = (
    "numba is required for the jit backend; install the optional extra "
    "with `pip install 'repro[jit]'` (or `pip install numba`)"
)

try:  # pragma: no cover - absent in the default environment
    import numba as _numba
except ImportError:
    _numba = None

#: the numba module when installed, else None (the jit kernel gates on it)
numba = _numba

HAVE_NUMBA = _numba is not None


def numba_version() -> Optional[str]:
    """The installed numba version string, or ``None`` when absent."""
    return str(_numba.__version__) if _numba is not None else None
