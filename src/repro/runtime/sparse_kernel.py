"""Sparse-frontier kernel: compacted active sets + bucketed delta-stepping.

The NumPy backend wins big on dense-frontier programs (pagerank, katz)
but barely moves on sparse ones (sssp, cc): every superstep it scans
the full ``n``-wide pending bitmask, scatters through ``O(n)`` scratch
arrays, and pays a per-edge Python loop to pack the plan CSR -- costs
proportional to the *graph*, not the *frontier*.  This backend makes
sparse-delta work cost proportional to the frontier:

* **frontier compaction** -- the kernel maintains a live-count and the
  arrival-order index list as the authoritative frontier; draining a
  round, scattering a round's output and ``pending_min`` all touch
  ``O(frontier)`` state (``np.nonzero`` full scans and ``O(n)`` scatter
  scratch are gone);
* **fused CSR packing** -- single-recursion-body plans (sssp, cc, ...)
  are packed with flat comprehensions instead of the per-edge Python
  loop, producing a content-identical :class:`_PlanCSR`;
* **fused ``ΔX¹``** -- for min/max aggregates the section-3.3 initial
  delta is computed with one vectorised edge sweep instead of the
  per-edge reference loop (see :meth:`SparseKernel.initial_delta`);
* **bucketed delta-stepping** -- when an engine announces
  ``enable_delta_stepping(width)`` (sync engine in ``delta_stepping``
  mode), pending entries are additionally indexed into Meyer--Sanders
  value buckets ``floor(value / width)`` with lazy deletion, so
  ``pending_min`` and ``take_pending_below`` inspect only the candidate
  buckets instead of the whole frontier.

Exactness argument (why this is *bit-identical* to the python/numpy
kernels, not merely close):

* rounds still process batches in canonical ascending key order and
  reuse the NumpyKernel fold/accumulate cores unchanged -- only *which
  indices* are visited is computed differently, and the compacted
  frontier is by construction the same index set ``np.nonzero`` finds;
* the round-output scatter folds per destination over the compacted
  unique-destination codes; ``np.bincount`` accumulates sequentially in
  input order (same left fold) and ``np.minimum.at`` is
  order-insensitive, and the rebuilt ``_pend_order`` (ascending unique
  destinations) equals the ascending ``np.nonzero`` order it replaces;
* insertion order stays observable through the pending column (async
  batch selection, bucket takes), so the kernel stamps every
  no-entry -> entry transition with an arrival sequence number; bucket
  takes collect candidates from the value buckets but *return them
  sorted by that sequence* -- exactly the dict insertion order the
  reference kernel yields.  Value buckets use lazy deletion: a combine
  that moves an entry appends it to its new bucket and the stale
  occurrence is skipped (``floor(value/width)`` no longer matches);
  every live value therefore always has an entry in its current bucket,
  which is the invariant both ``pending_min`` and the take rely on;
* the fused ``ΔX¹`` only runs for min/max, whose merge is an
  order-insensitive selection (the result is always one of the
  inputs bit-for-bit); new-key discovery order is reconstructed from
  first-occurrence positions of the contribution stream, which is the
  same src-order x edge-order stream the reference loop walks.
"""

from __future__ import annotations

import math
from array import array as _array
from typing import Any, Callable, Iterable, Optional

from repro.engine.result import WorkCounters
from repro.runtime.base import (
    BatchResult,
    Kernel,
    KernelUnavailableError,
    register_kernel,
)
from repro.runtime.compat import HAVE_NUMPY, NUMPY_INSTALL_HINT, np
from repro.runtime.numpy_kernel import (
    NumpyKernel,
    _FnGroup,
    _PlanCSR,
    plan_csr,
)
from repro.runtime.python_kernel import plan_key_order

#: bucket id used for non-finite pending values (never taken by a
#: finite threshold; floor() would raise on them)
_FAR_BUCKET = 2**62

#: frontier fraction above which the O(n) dense round paths win; below
#: it the compacted O(frontier) paths are used (see _take_frontier)
_DENSE_DIVISOR = 4


class _ColumnRows:
    """Per-edge parameter tuples materialised lazily over columns.

    :class:`_FnGroup` only touches ``raw_params`` row-wise during the
    3-sample vectorisation probe and on the (rare) per-edge fallback
    apply path; this view serves both without building one tuple per
    edge up front.
    """

    __slots__ = ("_cols", "_perm")

    def __init__(self, cols: Any, perm: Any) -> None:
        self._cols = cols
        self._perm = perm

    def __len__(self) -> int:
        return len(self._perm)

    def __getitem__(self, j: int) -> tuple:
        p = self._perm[j]
        return tuple(col[p] for col in self._cols)


def _fn_group_from_columns(columns: Any, perm: Any) -> _FnGroup:
    """A content-identical :class:`_FnGroup` packed from edge columns.

    The reference constructor materialises each parameter column with a
    per-edge list comprehension over row tuples; converting the plan's
    flat columns and permuting into CSR order produces the same cols
    bit-for-bit without per-edge Python work.  Non-numeric parameter
    columns fail the float64 conversion and fall back to the per-edge
    apply path, exactly like the reference.
    """
    group = _FnGroup.__new__(_FnGroup)
    group.fn = columns.fn
    group.raw_params = _ColumnRows(columns.param_cols, perm)
    group.cols = None
    group.vector_ok = False
    try:
        cols = [
            (
                np.frombuffer(pcol, dtype=np.float64)
                if isinstance(pcol, _array)
                else np.asarray(pcol, dtype=np.float64)
            )[perm]
            for pcol in columns.param_cols
        ]
    except (TypeError, ValueError):
        return group  # non-numeric parameters: per-edge fallback
    group._probe(cols)
    return group


def _sorted_int_keys(keys_sorted: Any, n: int) -> Any:
    """``keys_sorted`` as a sorted int64 array, or None for other keys.

    The all-integer key universe is the vectorizable case: a key column
    stored as a typed array maps to canonical codes by binary search --
    or, when the universe is exactly ``0..n-1`` (vertex programs, pinned
    by pigeonhole on the endpoints), a key *is* its code.
    """
    if not n:
        return None
    try:
        arr = np.asarray(keys_sorted)
    except (TypeError, ValueError):
        return None
    if arr.ndim != 1 or arr.dtype.kind != "i":
        return None
    return arr.astype(np.int64, copy=False)


def _key_codes(col: Any, order: dict, keys_arr: Any, m: int) -> Any:
    """Map a key column to canonical codes (C-speed for typed columns)."""
    if keys_arr is not None and isinstance(col, _array):
        vals = np.frombuffer(col, dtype=np.int64)
        if int(keys_arr[0]) == 0 and int(keys_arr[-1]) == len(keys_arr) - 1:
            return vals  # identity universe: the key is the code
        return np.searchsorted(keys_arr, vals)
    return np.fromiter(map(order.__getitem__, col), dtype=np.int64, count=m)


def fast_plan_csr(plan: Any) -> _PlanCSR:
    """Pack the plan CSR without per-edge Python loops (content-identical).

    Single-recursion-body plans compiled with columnar edge storage
    (:class:`repro.engine.plan.EdgeColumns`) skip the per-edge Python
    loop of :class:`_PlanCSR` entirely: key columns convert to codes at
    C speed, a stable-by-source sort groups edges in canonical key
    order (preserving per-source emission order, exactly the order the
    reference walk produces), ``efn`` is all zeros and ``erow`` is
    ``arange``.  Multi-body or hand-built plans fall back to the
    reference packer.  The result is cached under the same
    ``plan._kernel_csr`` slot, so numpy and sparse kernels on one plan
    share a single CSR.
    """
    csr = getattr(plan, "_kernel_csr", None)
    if csr is not None:
        return csr
    columns = getattr(plan, "edge_columns", None)
    if columns is None or len(columns) != 1:
        return plan_csr(plan)
    (col,) = columns
    order = plan_key_order(plan)
    keys_sorted = plan._kernel_keys_sorted
    n = len(keys_sorted)
    m = len(col.srcs)
    csr = _PlanCSR.__new__(_PlanCSR)
    csr.keys_sorted = keys_sorted
    csr.index = order
    csr.n = n
    csr.efn = np.zeros(m, dtype=np.int64)
    csr.erow = np.arange(m, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    if m == 0:
        csr.indptr = indptr
        csr.edst = np.empty(0, dtype=np.int64)
        csr.groups = []
        plan._kernel_csr = csr
        return csr
    keys_arr = _sorted_int_keys(keys_sorted, n)
    src_codes = _key_codes(col.srcs, order, keys_arr, m)
    dst_codes = _key_codes(col.dsts, order, keys_arr, m)
    # Group by source in canonical order, keeping each source's
    # emission order (the order the reference per-key walk produces).
    # Sorting the unique composite key ``src*m + j`` with the default
    # introsort yields exactly the stable-by-source permutation at a
    # fraction of mergesort's cost; fall back to a stable sort if the
    # composite could overflow int64.
    if n < 2**31 and m < 2**31:
        perm = np.argsort(src_codes * np.int64(m) + np.arange(m, dtype=np.int64))
    else:
        perm = np.argsort(src_codes, kind="stable")
    np.cumsum(np.bincount(src_codes, minlength=n), out=indptr[1:])
    csr.indptr = indptr
    csr.edst = dst_codes[perm]
    csr.groups = [_fn_group_from_columns(col, perm)]
    plan._kernel_csr = csr
    return csr


@register_kernel
class SparseKernel(NumpyKernel):
    """Frontier-compacted vertex runtime with optional value buckets."""

    backend = "sparse"

    @classmethod
    def supports_plan(cls, plan: Any) -> bool:
        """Frontier compaction and value buckets live in float64 arrays,
        so non-numeric semiring carriers (k-tropical ``KTuple``) are
        refused; callers fall back to the python/numpy object paths."""
        return plan.aggregate.numeric_values

    def __init__(
        self,
        plan: Any,
        keys: Optional[Iterable] = None,
        counters: Optional[WorkCounters] = None,
        initial: Optional[dict] = None,
    ) -> None:
        if not HAVE_NUMPY:
            raise KernelUnavailableError(f"SparseKernel: {NUMPY_INSTALL_HINT}")
        if not self.supports_plan(plan):
            raise KernelUnavailableError(
                f"{type(self).__name__}: aggregate {plan.aggregate.name!r} has a "
                "non-numeric semiring carrier; use the python or numpy backend"
            )
        fast_plan_csr(plan)  # prime the shared CSR cache via the fast packer
        super().__init__(plan, keys=keys, counters=counters, initial=initial)
        #: number of live pending entries (the compacted frontier size)
        self._pend_live = 0
        #: arrival sequence per index, stamped on no-entry -> entry
        self._seq = np.zeros(self._csr.n, dtype=np.int64)
        self._seq_next = 0
        #: delta-stepping state; None until an engine enables bucketing
        self._bucket_width: Optional[float] = None
        self._buckets: dict[int, list[int]] = {}

    # -- ΔX¹ (section 3.3), fused for selective aggregates ----------------------
    @classmethod
    def initial_delta(cls, plan: Any) -> dict:
        aggregate = plan.aggregate
        if not HAVE_NUMPY or aggregate.name not in ("min", "max"):
            return super().initial_delta(plan)
        csr = fast_plan_csr(plan)
        index = csr.index
        keys = csr.keys_sorted
        minimum = aggregate.name == "min"
        combine = aggregate.combine
        val = np.zeros(csr.n, dtype=np.float64)
        has = np.zeros(csr.n, dtype=bool)
        x1_order: list[int] = []
        m = len(plan.initial)
        if m:
            init_idx = np.fromiter(
                map(index.__getitem__, plan.initial), dtype=np.int64, count=m
            )
            init_vals = np.fromiter(
                plan.initial.values(), dtype=np.float64, count=m
            )
            val[init_idx] = init_vals
            has[init_idx] = True
            x1_order = init_idx.tolist()
        for key, value in plan.constants.items():
            i = index[key]
            if has[i]:
                val[i] = combine(float(val[i]), value)
            else:
                val[i] = value
                has[i] = True
                x1_order.append(i)
        if m:
            # F'(X⁰) sweeps the *raw* base values, not the C-merged x1
            eids, x_per_edge = csr.gather(init_idx, init_vals)
            if len(eids):
                dsts, contribs = csr.apply_edges(eids, x_per_edge)
                uniq, first_pos, inv = np.unique(
                    dsts, return_index=True, return_inverse=True
                )
                folded = np.full(len(uniq), np.inf if minimum else -np.inf)
                if minimum:
                    np.minimum.at(folded, inv, contribs)
                else:
                    np.maximum.at(folded, inv, contribs)
                u_has = has[uniq]
                merge = np.minimum if minimum else np.maximum
                val[uniq] = np.where(
                    u_has, merge(val[uniq], folded), folded
                )
                fresh = ~u_has
                if fresh.any():
                    forder = np.argsort(first_pos[fresh], kind="stable")
                    fresh_idx = uniq[fresh][forder]
                    has[fresh_idx] = True
                    x1_order.extend(fresh_idx.tolist())
        subtract = aggregate.subtract
        initial = plan.initial
        delta: dict = {}
        for i in x1_order:
            key = keys[i]
            d = subtract(float(val[i]), initial.get(key))
            if d is not None:
                delta[key] = d
        return delta

    # -- compacted frontier bookkeeping -----------------------------------------
    def _pend_indices(self) -> list:
        order = self._pend_order
        if len(order) == self._pend_live:
            return order
        has = self._pend_has
        last = {i: pos for pos, i in enumerate(order)}
        rebuilt = [
            i for pos, i in enumerate(order) if has[i] and last[i] == pos
        ]
        self._pend_order = rebuilt
        return rebuilt

    def _push_idx(self, i: int, value: float) -> None:
        if self._pend_has[i]:
            old = float(self._pend[i])
            new = self.aggregate.combine(old, value)
            self.counters.combines += 1
            self._pend[i] = new
            if self._bucket_width is not None and new != old:
                self._bucket_put(i, new)
        else:
            self._pend[i] = value
            self._pend_has[i] = True
            self._pend_order.append(i)
            self._pend_live += 1
            self._seq[i] = self._seq_next
            self._seq_next += 1
            if self._bucket_width is not None:
                self._bucket_put(i, value)

    def push_many(self, deltas: Iterable[tuple]) -> None:
        """Vectorized seeding: fold a delta batch into the empty table.

        Only the empty-pending selective/additive case vectorizes (the
        ``ΔX¹`` seeding path); anything else falls back to the scalar
        reference loop.  The fold is bit-identical: per-key folds run in
        arrival order (``np.bincount`` left fold / order-insensitive
        min-max selection) and ``_pend_order`` keys are recorded in
        first-occurrence order, exactly as repeated ``push`` calls
        would.
        """
        if self._mode == "other" or self._pend_live or self._pend_order:
            return super().push_many(deltas)
        pairs = deltas if isinstance(deltas, list) else list(deltas)
        m = len(pairs)
        if m < 8:
            return super().push_many(pairs)
        index = self._index
        idx = np.fromiter(
            (index[key] for key, _ in pairs), dtype=np.int64, count=m
        )
        vals = np.fromiter(
            (value for _, value in pairs), dtype=np.float64, count=m
        )
        uniq, first_pos, inv = np.unique(
            idx, return_index=True, return_inverse=True
        )
        if self._mode == "sum":
            folded = np.bincount(inv, weights=vals, minlength=len(uniq))
        elif self._mode == "min":
            folded = np.full(len(uniq), np.inf)
            np.minimum.at(folded, inv, vals)
        else:
            folded = np.full(len(uniq), -np.inf)
            np.maximum.at(folded, inv, vals)
        self.counters.combines += m - len(uniq)
        arrival = uniq[np.argsort(first_pos, kind="stable")]
        self._pend[uniq] = folded
        self._pend_has[uniq] = True
        self._pend_order = arrival.tolist()
        self._pend_live = len(uniq)
        self._seq[arrival] = np.arange(
            self._seq_next, self._seq_next + len(uniq), dtype=np.int64
        )
        self._seq_next += len(uniq)
        if self._bucket_width is not None:
            pend = self._pend
            for i in self._pend_order:
                self._bucket_put(i, float(pend[i]))

    def fetch_and_reset(self, key: Any) -> Any:
        value = super().fetch_and_reset(key)
        if value is not None:
            self._pend_live -= 1
        return value

    def drain_all(self) -> dict:
        keys = self._keys
        pend = self._pend
        live = self._pend_indices()
        drained = {keys[i]: float(pend[i]) for i in live}
        self._pend_has[live] = False
        self._pend_order = []
        self._pend_live = 0
        if self._buckets:
            self._buckets.clear()
        return drained

    def _set_intermediate(self, values: dict) -> None:
        self._pend_has[:] = False
        self._pend_order = []
        self._pend_live = 0
        if self._buckets:
            self._buckets.clear()
        for key, value in values.items():
            i = self._index[key]
            self._pend[i] = float(value)
            self._pend_has[i] = True
            self._pend_order.append(i)
            self._pend_live += 1
            self._seq[i] = self._seq_next
            self._seq_next += 1
            if self._bucket_width is not None:
                self._bucket_put(i, float(value))

    def _scatter_pending(self, dsts: Any, vals: Any) -> None:
        # only reached from step()'s round, where pending is empty
        if self._mode == "other":
            for d, v in zip(dsts.tolist(), vals.tolist()):
                self._push_idx(int(d), v)
            return
        n = self._csr.n
        if len(vals) * _DENSE_DIVISOR >= n:
            # dense round: O(n) scratch scatter beats the O(E_f log E_f)
            # sort inside np.unique (the numpy kernel's strategy)
            if self._mode == "sum":
                folded = np.bincount(dsts, weights=vals, minlength=n)
                touched = np.bincount(dsts, minlength=n).astype(bool)
            else:
                fill = np.inf if self._mode == "min" else -np.inf
                folded = np.full(n, fill)
                if self._mode == "min":
                    np.minimum.at(folded, dsts, vals)
                else:
                    np.maximum.at(folded, dsts, vals)
                touched = np.zeros(n, dtype=bool)
                touched[dsts] = True
            uniq = np.nonzero(touched)[0]
            self._pend[uniq] = folded[uniq]
        else:
            uniq, inv = np.unique(dsts, return_inverse=True)
            if self._mode == "sum":
                folded = np.bincount(inv, weights=vals, minlength=len(uniq))
            elif self._mode == "min":
                folded = np.full(len(uniq), np.inf)
                np.minimum.at(folded, inv, vals)
            else:
                folded = np.full(len(uniq), -np.inf)
                np.maximum.at(folded, inv, vals)
            self._pend[uniq] = folded
        self.counters.combines += len(vals) - len(uniq)
        self._pend_has[uniq] = True
        # ascending unique dsts == the np.nonzero order this replaces
        self._pend_order = uniq.tolist()
        self._pend_live = len(uniq)
        self._seq[uniq] = np.arange(
            self._seq_next, self._seq_next + len(uniq), dtype=np.int64
        )
        self._seq_next += len(uniq)
        if self._bucket_width is not None:
            pend = self._pend
            for i in self._pend_order:
                self._bucket_put(i, float(pend[i]))

    # -- the inner loop over the compacted frontier -----------------------------
    def _take_frontier(self) -> tuple:
        """Drain the frontier as (ascending idx array, values) or None."""
        if not self._pend_live:
            return None, None
        if self._pend_live * _DENSE_DIVISOR >= self._csr.n:
            # dense frontier: a C-speed mask scan beats list compaction
            idx = np.nonzero(self._pend_has)[0]
            tmp = self._pend[idx]
            self._pend_has[:] = False
        else:
            live = self._pend_indices()
            idx = np.fromiter(live, dtype=np.int64, count=len(live))
            idx.sort()  # canonical ascending round order
            tmp = self._pend[idx]
            self._pend_has[idx] = False
        self._pend_order = []
        self._pend_live = 0
        if self._buckets:
            self._buckets.clear()
        return idx, tmp

    def apply_pending(self) -> BatchResult:
        if self._mode == "other":
            return Kernel.apply_pending(self)
        idx, tmp = self._take_frontier()
        if idx is None:
            return BatchResult()
        return self._round_core(idx, tmp, scatter_self=False)

    def step(self) -> BatchResult:
        if self._mode == "other":
            return Kernel.step(self)
        idx, tmp = self._take_frontier()
        if idx is None:
            return BatchResult()
        return self._round_core(idx, tmp, scatter_self=True)

    def _apply_local(self, keys: list, emit: Optional[Callable]) -> BatchResult:
        csr = self._csr
        key_names = self._keys
        owned = self._owned_mask
        counters = self.counters
        pend = self._pend
        pend_has = self._pend_has
        changed = 0
        magnitude = 0.0
        ops = 0
        edges_applied = 0
        for key in keys:
            i = self._index[key]
            if not pend_has[i]:
                continue
            pend_has[i] = False
            self._pend_live -= 1
            tmp = float(pend[i])
            did_change, delta_mag = self._accumulate_idx(i, tmp)
            ops += 1
            if not did_change:
                continue
            changed += 1
            magnitude += delta_mag
            start, end = int(csr.indptr[i]), int(csr.indptr[i + 1])
            if start == end:
                continue
            eids = np.arange(start, end, dtype=np.int64)
            dsts, vals = csr.apply_edges(eids, np.full(end - start, tmp))
            edges_applied += end - start
            for d, v in zip(dsts.tolist(), vals.tolist()):
                ops += 1
                if owned is None or owned[d]:
                    self._push_idx(int(d), v)
                elif emit is None:
                    raise TypeError("foreign contribution without an emit callback")
                else:
                    emit(key_names[d], v, ops)
        counters.fprime_applications += edges_applied
        return BatchResult(changed=changed, magnitude=magnitude, ops=ops)

    # -- inspection over the compacted frontier ---------------------------------
    def has_pending(self) -> bool:
        return self._pend_live > 0

    def pending_count(self) -> int:
        return self._pend_live

    def pending_min(self) -> float:
        if self._bucket_width is not None:
            return self._bucket_min()
        live = self._pend_indices()
        if not live:
            return math.inf
        return float(self._pend[live].min())

    def take_pending_below(self, threshold: float) -> dict:
        if self._bucket_width is not None:
            return self._take_bucketed(threshold)
        take = super().take_pending_below(threshold)
        self._pend_live -= len(take)
        return take

    # -- bucketed delta-stepping -------------------------------------------------
    def enable_delta_stepping(self, width: float) -> None:
        if self._mode not in ("min", "max") or not width > 0:
            return
        self._bucket_width = float(width)
        self._buckets = {}
        pend = self._pend
        for i in self._pend_indices():
            self._bucket_put(i, float(pend[i]))

    def _bucket_put(self, i: int, value: float) -> None:
        bid = self._bucket_bid(value)
        bucket = self._buckets.get(bid)
        if bucket is None:
            self._buckets[bid] = [i]
        else:
            bucket.append(i)

    def _bucket_bid(self, value: float) -> int:
        width = self._bucket_width
        assert width is not None  # callers gate on bucketing being enabled
        q = value / width
        if -math.inf < q < math.inf:
            return math.floor(q)
        return _FAR_BUCKET if not q < 0 else -_FAR_BUCKET

    def _bucket_min(self) -> float:
        has = self._pend_has
        pend = self._pend
        buckets = self._buckets
        while buckets:
            bid = min(buckets)
            best = math.inf
            fresh: list[int] = []
            for i in buckets[bid]:
                # lazy deletion: skip consumed or re-bucketed entries
                if not has[i] or self._bucket_bid(float(pend[i])) != bid:
                    continue
                fresh.append(i)
                value = float(pend[i])
                if value < best:
                    best = value
            if fresh:
                buckets[bid] = fresh
                return best
            del buckets[bid]
        return math.inf

    def _take_bucketed(self, threshold: float) -> dict:
        cap = self._bucket_bid(threshold)
        has = self._pend_has
        pend = self._pend
        buckets = self._buckets
        taken: list[int] = []
        for bid in sorted(b for b in buckets if b <= cap):
            keep: list[int] = []
            for i in buckets.pop(bid):
                if not has[i]:
                    continue  # consumed, or a duplicate already taken
                value = float(pend[i])
                if value <= threshold:
                    has[i] = False
                    taken.append(i)
                elif self._bucket_bid(value) == bid:
                    keep.append(i)
            if keep:
                buckets[bid] = keep
        # dict insertion order == arrival order, like the reference take
        taken.sort(key=self._seq.__getitem__)
        keys = self._keys
        out = {keys[i]: float(pend[i]) for i in taken}
        self._pend_live -= len(taken)
        return out

    # -- checkpointing / recovery -----------------------------------------------
    def restore(self, snap: dict) -> None:
        super().restore(snap)
        self._pend_live = int(self._pend_has.sum())
        live = self._pend_indices()
        self._seq_next = 0
        for i in live:
            self._seq[i] = self._seq_next
            self._seq_next += 1
        if self._bucket_width is not None:
            self._buckets = {}
            pend = self._pend
            for i in live:
                self._bucket_put(i, float(pend[i]))
