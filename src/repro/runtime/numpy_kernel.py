"""Vectorised NumPy kernel: CSR-packed out-edges, batched aggregation.

Exactness engineering (why this backend is bit-identical to
:class:`~repro.runtime.python_kernel.PythonKernel`, not merely close):

* batches are processed in the same canonical ascending key order, and
  per-destination folds run in the same arrival order: additive folds
  use ``np.bincount`` (which accumulates sequentially in input order,
  i.e. the same left fold as the dict loop), selective folds use
  ``np.minimum.at``/``np.maximum.at`` (order-insensitive);
* elementwise float64 ufunc arithmetic is the same IEEE-754 operation
  the Python loop performs one value at a time;
* scalar paths (``push``, ``fetch_and_reset``, ``accumulate``, the
  async local mode) run the combine on Python floats exactly like the
  reference kernel;
* insertion orders observable through the MonoTable protocol (the
  ``accumulated``/``intermediate`` dicts, ``global_accumulation``'s sum
  order, delta-stepping bucket takes) are tracked explicitly in arrival
  order, so order-sensitive float sums and batch selections match too.

Compiled ``F'`` lambdas are probed once per plan: if a lambda evaluates
correctly over arrays (pure arithmetic does), its parameter columns are
packed as float64 and applications are vectorised per batch; otherwise
(e.g. ``math.*`` calls) the kernel falls back to per-edge application
for that recursion body only.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.engine.result import WorkCounters
from repro.runtime.base import (
    BatchResult,
    Kernel,
    KernelUnavailableError,
    register_kernel,
)
from repro.runtime.compat import HAVE_NUMPY, NUMPY_INSTALL_HINT, np
from repro.runtime.python_kernel import PythonKernel, plan_key_order


class _FnGroup:
    """One recursion body's compiled F' and its packed parameter columns."""

    __slots__ = ("fn", "cols", "raw_params", "vector_ok")

    def __init__(self, fn: Callable, param_rows: list) -> None:
        self.fn = fn
        #: row-indexable parameter view (list here; a column view in the
        #: sparse kernel's fused packer)
        self.raw_params: Any = param_rows
        self.cols: Optional[list] = None
        self.vector_ok = False
        if not param_rows:
            return
        width = len(param_rows[0])
        try:
            cols = [
                np.asarray([row[p] for row in param_rows], dtype=np.float64)
                for p in range(width)
            ]
        except (TypeError, ValueError):
            return  # non-numeric parameters: per-edge fallback
        self._probe(cols)

    def _probe(self, cols: list) -> None:
        """Accept ``cols`` as packed parameter columns if F' vectorises."""
        fn = self.fn
        param_rows = self.raw_params
        probe_n = min(len(param_rows), 3)
        xs = np.asarray([1.0, 2.0, 0.5][:probe_n], dtype=np.float64)
        try:
            vec = np.asarray(
                fn(xs, *[col[:probe_n] for col in cols]), dtype=np.float64
            )
            if vec.shape == ():
                vec = np.full(probe_n, float(vec))
            if vec.shape != (probe_n,):
                return
            for j in range(probe_n):
                if float(vec[j]) != float(fn(float(xs[j]), *param_rows[j])):
                    return
        except Exception:
            return  # math.* calls etc.: per-edge fallback
        self.cols = cols
        self.vector_ok = True

    def apply(self, xs: Any, rows: Any) -> Any:
        """F' over ``xs`` for the group-local edge ``rows``; float64 array."""
        if self.vector_ok and self.cols is not None:
            out = np.asarray(self.fn(xs, *[col[rows] for col in self.cols]))
            if out.shape == ():
                return np.full(xs.shape, float(out))
            return out.astype(np.float64, copy=False)
        fn = self.fn
        params = self.raw_params
        return np.asarray(
            [
                fn(float(x), *params[r])
                for x, r in zip(xs.tolist(), rows.tolist())
            ],
            dtype=np.float64,
        )


class _PlanCSR:
    """Immutable CSR view of ``plan.out_edges``, shared by all shards."""

    def __init__(self, plan: Any) -> None:
        order = plan_key_order(plan)
        keys_sorted = plan._kernel_keys_sorted
        n = len(keys_sorted)
        indptr = np.zeros(n + 1, dtype=np.int64)
        edst: list[int] = []
        efn: list[int] = []
        erow: list[int] = []
        fn_ids: dict[int, int] = {}
        fn_objs: list[Callable] = []
        fn_param_rows: list[list[tuple]] = []
        for i, key in enumerate(keys_sorted):
            edges = plan.edges_from(key)
            indptr[i + 1] = indptr[i] + len(edges)
            for dst, params, fn in edges:
                fid = fn_ids.get(id(fn))
                if fid is None:
                    fid = fn_ids[id(fn)] = len(fn_objs)
                    fn_objs.append(fn)
                    fn_param_rows.append([])
                edst.append(order[dst])
                efn.append(fid)
                erow.append(len(fn_param_rows[fid]))
                fn_param_rows[fid].append(params)
        self.keys_sorted = keys_sorted
        self.index = order
        self.n = n
        self.indptr = indptr
        self.edst = np.asarray(edst, dtype=np.int64)
        self.efn = np.asarray(efn, dtype=np.int64)
        self.erow = np.asarray(erow, dtype=np.int64)
        self.groups = [
            _FnGroup(fn, rows) for fn, rows in zip(fn_objs, fn_param_rows)
        ]

    def gather(self, srcs: Any, x: Any) -> tuple:
        """Flat edge ids + per-edge source values for a source batch."""
        starts = self.indptr[srcs]
        counts = self.indptr[srcs + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        cum = np.cumsum(counts)
        offsets = np.repeat(starts - (cum - counts), counts)
        eids = np.arange(total, dtype=np.int64) + offsets
        return eids, np.repeat(x, counts)

    def apply_edges(self, eids: Any, x_per_edge: Any) -> tuple:
        """Evaluate F' for the given flat edge ids; (dsts, values)."""
        if len(self.groups) == 1:
            # single recursion body: efn is uniform, skip the mask pass
            vals = self.groups[0].apply(x_per_edge, self.erow[eids])
            return self.edst[eids], vals.astype(np.float64, copy=False)
        vals = np.empty(len(eids), dtype=np.float64)
        fids = self.efn[eids]
        for fid, group in enumerate(self.groups):
            mask = fids == fid
            if mask.any():
                vals[mask] = group.apply(
                    x_per_edge[mask], self.erow[eids[mask]]
                )
        return self.edst[eids], vals


def _identity(value: Any) -> Any:
    """Object-mode cast: keep semiring carrier values as-is."""
    return value


def plan_csr(plan: Any) -> _PlanCSR:
    csr = getattr(plan, "_kernel_csr", None)
    if csr is None:
        csr = _PlanCSR(plan)
        plan._kernel_csr = csr
    return csr


@register_kernel
class NumpyKernel(Kernel):
    """CSR + dirty-mask vertex runtime over float64 columns."""

    backend = "numpy"

    def __init__(
        self,
        plan: Any,
        keys: Optional[Iterable] = None,
        counters: Optional[WorkCounters] = None,
        initial: Optional[dict] = None,
    ) -> None:
        if not HAVE_NUMPY:
            raise KernelUnavailableError(
                f"NumpyKernel: {NUMPY_INSTALL_HINT}"
            )
        self.plan = plan
        self.aggregate = plan.aggregate
        self.counters = counters if counters is not None else WorkCounters()
        self._csr = plan_csr(plan)
        self._keys = self._csr.keys_sorted
        self._index = self._csr.index
        n = self._csr.n
        # ⊕ dispatch is driven by the aggregate's declared semiring: the
        # ``fold_mode`` hint names the float64 ufunc implementing ⊕
        # (min/max/sum); non-numeric carriers (k-tropical KTuples) run
        # every path scalar over object columns.
        self._object_mode = not self.aggregate.numeric_values
        fold_mode = self.aggregate.fold_mode
        if self._object_mode or fold_mode not in ("min", "max", "sum"):
            self._mode = "other"  # e.g. mean/topk: scalar combine fallback
        else:
            self._mode = fold_mode
        #: scalar-path coercion: ``float`` for numeric semirings (the
        #: historical bit-identical behaviour), identity for object mode
        self._cast = _identity if self._object_mode else float
        value_dtype = object if self._object_mode else np.float64
        self._owned_mask: Optional[Any]
        if keys is None:
            self._owned_mask = None
        else:
            self._owned_mask = np.zeros(n, dtype=bool)
            for key in keys:
                self._owned_mask[self._index[key]] = True
        self._acc = np.zeros(n, dtype=value_dtype)
        self._acc_has = np.zeros(n, dtype=bool)
        self._acc_order: list[int] = []
        self._pend = np.zeros(n, dtype=value_dtype)
        self._pend_has = np.zeros(n, dtype=bool)
        self._pend_order: list[int] = []
        if initial is None:
            initial = plan.initial
        cast = self._cast
        for key, value in initial.items():
            i = self._index[key]
            if self._owned_mask is not None and not self._owned_mask[i]:
                continue
            self._acc[i] = cast(value)
            self._acc_has[i] = True
            self._acc_order.append(i)

    @classmethod
    def from_plan(
        cls,
        plan: Any,
        keys: Optional[Iterable] = None,
        counters: Optional[WorkCounters] = None,
        initial: Optional[dict] = None,
    ) -> "NumpyKernel":
        return cls(plan, keys=keys, counters=counters, initial=initial)

    @classmethod
    def available(cls) -> bool:
        return HAVE_NUMPY

    # -- MonoTable protocol (scalar paths run on Python floats) -----------------
    @property
    def accumulated(self) -> dict:
        keys = self._keys
        acc = self._acc
        cast = self._cast
        return {keys[i]: cast(acc[i]) for i in self._acc_order}

    @accumulated.setter
    def accumulated(self, values: dict) -> None:
        self._acc_has[:] = False
        self._acc_order = []
        cast = self._cast
        for key, value in values.items():
            i = self._index[key]
            self._acc[i] = cast(value)
            self._acc_has[i] = True
            self._acc_order.append(i)

    def _pend_indices(self) -> list:
        """Live pending indices in dict-equivalent arrival order.

        ``fetch_and_reset`` leaves stale entries behind and a re-push of
        a fetched key appends a fresh occurrence; a Python dict would
        re-insert that key at the *end*.  The last occurrence of each
        live index is therefore the authoritative position -- compact
        lazily whenever stale or duplicate entries exist.
        """
        order = self._pend_order
        live = int(self._pend_has.sum())
        if len(order) == live:
            return order
        has = self._pend_has
        last = {i: pos for pos, i in enumerate(order)}
        rebuilt = [
            i for pos, i in enumerate(order) if has[i] and last[i] == pos
        ]
        self._pend_order = rebuilt
        return rebuilt

    @property
    def intermediate(self) -> dict:
        keys = self._keys
        pend = self._pend
        cast = self._cast
        return {keys[i]: cast(pend[i]) for i in self._pend_indices()}

    @intermediate.setter
    def intermediate(self, values: dict) -> None:
        # subclasses hook the overridable method, not the property object
        # (redecorating a base property's setter is invisible to mypy)
        self._set_intermediate(values)

    def _set_intermediate(self, values: dict) -> None:
        self._pend_has[:] = False
        self._pend_order = []
        cast = self._cast
        for key, value in values.items():
            i = self._index[key]
            self._pend[i] = cast(value)
            self._pend_has[i] = True
            self._pend_order.append(i)

    def push(self, key: Any, value: Any) -> None:
        self._push_idx(self._index[key], self._cast(value))

    def _push_idx(self, i: int, value: Any) -> None:
        if self._pend_has[i]:
            self._pend[i] = self.aggregate.combine(self._cast(self._pend[i]), value)
            self.counters.combines += 1
        else:
            self._pend[i] = value
            self._pend_has[i] = True
            self._pend_order.append(i)

    def fetch_and_reset(self, key: Any) -> Any:
        i = self._index[key]
        if not self._pend_has[i]:
            return None
        self._pend_has[i] = False  # stale entry left in _pend_order
        return self._cast(self._pend[i])

    def drain_all(self) -> dict:
        keys = self._keys
        pend = self._pend
        cast = self._cast
        drained = {keys[i]: cast(pend[i]) for i in self._pend_indices()}
        self._pend_has[:] = False
        self._pend_order = []
        return drained

    def accumulate(self, key: Any, tmp: Any) -> tuple[bool, float]:
        return self._accumulate_idx(self._index[key], tmp)

    def _accumulate_idx(self, i: int, tmp: Any) -> tuple[bool, float]:
        aggregate = self.aggregate
        cast = self._cast
        if not self._acc_has[i]:
            self._acc[i] = cast(tmp)
            self._acc_has[i] = True
            self._acc_order.append(i)
            self.counters.updates += 1
            return True, aggregate.delta_magnitude(tmp)
        old = cast(self._acc[i])
        self.counters.combines += 1
        new = aggregate.combine(old, cast(tmp))
        if new == old:
            return False, 0.0
        self._acc[i] = new
        self.counters.updates += 1
        return True, aggregate.change_magnitude(new, old, tmp)

    # -- vectorised core --------------------------------------------------------
    def _vector_accumulate(self, idx: Any, tmp: Any) -> tuple:
        """Batch accumulate; returns (changed_mask, magnitudes)."""
        has = self._acc_has[idx]
        old = self._acc[idx]
        if self._mode == "sum":
            new = np.where(has, old + tmp, tmp)
            changed = ~has | (new != old)
            mags = np.abs(tmp)
        elif self._mode == "min":
            new = np.where(has, np.minimum(old, tmp), tmp)
            changed = ~has | (new != old)
            mags = np.where(has, np.abs(new - old), np.abs(tmp))
        else:  # max
            new = np.where(has, np.maximum(old, tmp), tmp)
            changed = ~has | (new != old)
            mags = np.where(has, np.abs(new - old), np.abs(tmp))
        self.counters.combines += int(has.sum())
        self.counters.updates += int(changed.sum())
        write = idx[changed]
        self._acc[write] = new[changed]
        fresh = idx[changed & ~has]
        if len(fresh):
            self._acc_has[fresh] = True
            self._acc_order.extend(fresh.tolist())
        return changed, mags

    def _round_core(self, idx: Any, tmp: Any, scatter_self: bool) -> BatchResult:
        """One propagation round over an ascending-index batch."""
        counters = self.counters
        changed, mags = self._vector_accumulate(idx, tmp)
        n_changed = int(changed.sum())
        magnitude = float(sum(mags[changed].tolist()))  # left fold, asc order
        ops = len(idx)
        out: dict = {}
        if n_changed:
            eids, x_per_edge = self._csr.gather(idx[changed], tmp[changed])
            ops += len(eids)
            counters.fprime_applications += len(eids)
            if len(eids):
                dsts, vals = self._csr.apply_edges(eids, x_per_edge)
                if scatter_self:
                    self._scatter_pending(dsts, vals)
                else:
                    out = self._fold_out(dsts, vals)
        return BatchResult(
            out_deltas=out, changed=n_changed, magnitude=magnitude, ops=ops
        )

    def _fold_out(self, dsts: Any, vals: Any) -> dict:
        """Per-destination fold in arrival order, first-occurrence keyed."""
        counters = self.counters
        uniq, first_pos, inv = np.unique(
            dsts, return_index=True, return_inverse=True
        )
        forder = np.argsort(first_pos, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[forder] = np.arange(len(uniq), dtype=np.int64)
        codes = rank[inv]
        if self._mode == "sum":
            folded = np.bincount(codes, weights=vals, minlength=len(uniq))
        elif self._mode == "min":
            folded = np.full(len(uniq), np.inf)
            np.minimum.at(folded, codes, vals)
        elif self._mode == "max":
            folded = np.full(len(uniq), -np.inf)
            np.maximum.at(folded, codes, vals)
        else:
            return self._fold_out_scalar(dsts, vals)
        counters.combines += len(vals) - len(uniq)
        keys = self._keys
        out: dict = {}
        for rank_pos, dst_idx in enumerate(uniq[forder].tolist()):
            out[keys[dst_idx]] = float(folded[rank_pos])
        return out

    def _fold_out_scalar(self, dsts: Any, vals: Any) -> dict:
        combine = self.aggregate.combine
        counters = self.counters
        keys = self._keys
        out: dict = {}
        for d, v in zip(dsts.tolist(), vals.tolist()):
            key = keys[d]
            old = out.get(key)
            if old is None:
                out[key] = v
            else:
                out[key] = combine(old, v)
                counters.combines += 1
        return out

    def _scatter_pending(self, dsts: Any, vals: Any) -> None:
        """Scatter a round's contributions into the (empty) pending column."""
        n = self._csr.n
        if self._mode == "sum":
            sums = np.bincount(dsts, weights=vals, minlength=n)
            touched = np.bincount(dsts, minlength=n).astype(bool)
            self._pend[touched] = sums[touched]
        elif self._mode in ("min", "max"):
            fill = np.inf if self._mode == "min" else -np.inf
            scratch = np.full(n, fill)
            if self._mode == "min":
                np.minimum.at(scratch, dsts, vals)
            else:
                np.maximum.at(scratch, dsts, vals)
            touched = np.zeros(n, dtype=bool)
            touched[dsts] = True
            self._pend[touched] = scratch[touched]
        else:
            for d, v in zip(dsts.tolist(), vals.tolist()):
                self._push_idx(int(d), v)
            return
        self.counters.combines += len(vals) - int(touched.sum())
        self._pend_has |= touched
        self._pend_order = np.nonzero(self._pend_has)[0].tolist()

    # -- the inner loop ---------------------------------------------------------
    def apply_batch(
        self,
        deltas: Optional[dict] = None,
        *,
        keys: Optional[list] = None,
        emit: Optional[Callable] = None,
    ) -> BatchResult:
        if deltas is not None:
            return self._apply_round(deltas)
        return self._apply_local(keys or [], emit)

    def _apply_round(self, deltas: dict) -> BatchResult:
        if self._mode == "other":
            return self._apply_round_scalar(deltas)
        m = len(deltas)
        if m == 0:
            return BatchResult()
        idx = np.empty(m, dtype=np.int64)
        vals = np.empty(m, dtype=np.float64)
        index = self._index
        for j, (key, value) in enumerate(deltas.items()):
            idx[j] = index[key]
            vals[j] = value
        srt = np.argsort(idx, kind="stable")
        return self._round_core(idx[srt], vals[srt], scatter_self=False)

    def _apply_round_scalar(self, deltas: dict) -> BatchResult:
        """Generic-aggregate fallback: the reference loop over arrays."""
        plan = self.plan
        combine = self.aggregate.combine
        counters = self.counters
        order = self._index
        out: dict = {}
        changed = 0
        magnitude = 0.0
        ops = 0
        edges_applied = 0
        for key, tmp in sorted(deltas.items(), key=lambda kv: order[kv[0]]):
            did_change, delta_mag = self.accumulate(key, tmp)
            ops += 1
            if not did_change:
                continue
            changed += 1
            magnitude += delta_mag
            for dst, params, fn in plan.edges_from(key):
                value = fn(tmp, *params)
                ops += 1
                edges_applied += 1
                old = out.get(dst)
                if old is None:
                    out[dst] = value
                else:
                    out[dst] = combine(old, value)
                    counters.combines += 1
        counters.fprime_applications += edges_applied
        return BatchResult(out_deltas=out, changed=changed, magnitude=magnitude, ops=ops)

    def apply_pending(self) -> BatchResult:
        """Drain + round in one array pass (no dict round-trip)."""
        if self._mode == "other":
            return super().apply_pending()
        idx = np.nonzero(self._pend_has)[0]
        if len(idx) == 0:
            return BatchResult()
        tmp = self._pend[idx].copy()
        self._pend_has[:] = False
        self._pend_order = []
        return self._round_core(idx, tmp, scatter_self=False)

    def step(self) -> BatchResult:
        """The single-node MRA fast path: full round, array-only."""
        if self._mode == "other":
            return super().step()
        idx = np.nonzero(self._pend_has)[0]
        if len(idx) == 0:
            return BatchResult()
        tmp = self._pend[idx].copy()
        self._pend_has[:] = False
        self._pend_order = []
        return self._round_core(idx, tmp, scatter_self=True)

    def _apply_local_scalar(self, keys: list, emit: Optional[Callable]) -> BatchResult:
        """Object-mode local pass: per-edge F' over the plan, no CSR math."""
        plan = self.plan
        index = self._index
        owned = self._owned_mask
        counters = self.counters
        pend = self._pend
        pend_has = self._pend_has
        changed = 0
        magnitude = 0.0
        ops = 0
        edges_applied = 0
        for key in keys:
            i = index[key]
            if not pend_has[i]:
                continue
            pend_has[i] = False
            tmp = pend[i]
            did_change, delta_mag = self._accumulate_idx(i, tmp)
            ops += 1
            if not did_change:
                continue
            changed += 1
            magnitude += delta_mag
            for dst, params, fn in plan.edges_from(key):
                value = fn(tmp, *params)
                ops += 1
                edges_applied += 1
                d = index[dst]
                if owned is None or owned[d]:
                    self._push_idx(d, value)
                elif emit is None:
                    raise TypeError("foreign contribution without an emit callback")
                else:
                    emit(dst, value, ops)
        counters.fprime_applications += edges_applied
        return BatchResult(changed=changed, magnitude=magnitude, ops=ops)

    def _apply_local(self, keys: list, emit: Optional[Callable]) -> BatchResult:
        if self._object_mode:
            return self._apply_local_scalar(keys, emit)
        csr = self._csr
        key_names = self._keys
        owned = self._owned_mask
        counters = self.counters
        pend = self._pend
        pend_has = self._pend_has
        combine = self.aggregate.combine
        changed = 0
        magnitude = 0.0
        ops = 0
        edges_applied = 0
        for key in keys:
            i = self._index[key]
            if not pend_has[i]:
                continue
            pend_has[i] = False
            tmp = float(pend[i])
            did_change, delta_mag = self._accumulate_idx(i, tmp)
            ops += 1
            if not did_change:
                continue
            changed += 1
            magnitude += delta_mag
            start, end = int(csr.indptr[i]), int(csr.indptr[i + 1])
            if start == end:
                continue
            eids = np.arange(start, end, dtype=np.int64)
            dsts, vals = csr.apply_edges(eids, np.full(end - start, tmp))
            edges_applied += end - start
            for d, v in zip(dsts.tolist(), vals.tolist()):
                ops += 1
                if owned is None or owned[d]:
                    if pend_has[d]:
                        pend[d] = combine(float(pend[d]), v)
                        counters.combines += 1
                    else:
                        pend[d] = v
                        pend_has[d] = True
                        self._pend_order.append(int(d))
                elif emit is None:
                    raise TypeError("foreign contribution without an emit callback")
                else:
                    emit(key_names[d], v, ops)
        counters.fprime_applications += edges_applied
        return BatchResult(changed=changed, magnitude=magnitude, ops=ops)

    # -- whole-table sweep (naive BSP mode) -------------------------------------
    @classmethod
    def full_contributions(cls, plan: Any, values: dict) -> list:
        if not HAVE_NUMPY:
            raise KernelUnavailableError(f"NumpyKernel: {NUMPY_INSTALL_HINT}")
        if not plan.aggregate.numeric_values:
            # non-numeric carriers cannot ride the float64 CSR sweep
            return PythonKernel.full_contributions(plan, values)
        csr = plan_csr(plan)
        index = csr.index
        m = len(values)
        if m == 0:
            return []
        idx = np.empty(m, dtype=np.int64)
        vals = np.empty(m, dtype=np.float64)
        for j, (key, value) in enumerate(values.items()):
            idx[j] = index[key]
            vals[j] = value
        eids, x_per_edge = csr.gather(idx, vals)
        if len(eids) == 0:
            return []
        dsts, out_vals = csr.apply_edges(eids, x_per_edge)
        counts = csr.indptr[idx + 1] - csr.indptr[idx]
        src_per_edge = np.repeat(idx, counts)
        keys = csr.keys_sorted
        return [
            (keys[s], keys[d], v)
            for s, d, v in zip(
                src_per_edge.tolist(), dsts.tolist(), out_vals.tolist()
            )
        ]

    # -- relational-path helpers ------------------------------------------------
    @classmethod
    def fold_contributions(
        cls,
        aggregate: Any,
        contributions: list,
        counters: Optional[WorkCounters] = None,
    ) -> dict:
        if not HAVE_NUMPY:
            raise KernelUnavailableError(f"NumpyKernel: {NUMPY_INSTALL_HINT}")
        mode = aggregate.fold_mode if aggregate.numeric_values else None
        if mode not in ("min", "max", "sum"):
            return PythonKernel.fold_contributions(
                aggregate, contributions, counters
            )
        index: dict = {}
        codes: list[int] = []
        raw_vals: list[float] = []
        for key, value in contributions:
            codes.append(index.setdefault(key, len(index)))
            raw_vals.append(value)
        if not index:
            return {}
        code_arr = np.asarray(codes, dtype=np.int64)
        val_arr = np.asarray(raw_vals, dtype=np.float64)
        if mode == "sum":
            folded = np.bincount(code_arr, weights=val_arr, minlength=len(index))
        elif mode == "min":
            folded = np.full(len(index), np.inf)
            np.minimum.at(folded, code_arr, val_arr)
        else:
            folded = np.full(len(index), -np.inf)
            np.maximum.at(folded, code_arr, val_arr)
        if counters is not None:
            counters.combines += len(contributions) - len(index)
        return {key: float(folded[c]) for key, c in index.items()}

    @classmethod
    def improve_contributions(
        cls,
        aggregate: Any,
        current: dict,
        contributions: list,
        counters: Optional[WorkCounters] = None,
    ) -> dict:
        if not HAVE_NUMPY:
            raise KernelUnavailableError(f"NumpyKernel: {NUMPY_INSTALL_HINT}")
        mode = aggregate.fold_mode if aggregate.numeric_values else None
        if mode not in ("min", "max"):
            return PythonKernel.improve_contributions(
                aggregate, current, contributions, counters
            )
        best = cls.fold_contributions(aggregate, contributions, counters)
        combine = aggregate.combine
        changed: dict = {}
        for key, value in best.items():
            old = current.get(key)
            if old is None:
                changed[key] = value
                continue
            if counters is not None:
                counters.combines += 1
            improved = combine(old, value)
            if improved != old:
                changed[key] = improved
        return changed

    # -- inspection -------------------------------------------------------------
    def pending_keys(self) -> list:
        keys = self._keys
        return [keys[i] for i in self._pend_indices()]

    def has_pending(self) -> bool:
        return bool(self._pend_has.any())

    def pending_count(self) -> int:
        return int(self._pend_has.sum())

    def pending_magnitude(self) -> float:
        delta_magnitude = self.aggregate.delta_magnitude
        pend = self._pend
        cast = self._cast
        return sum(
            delta_magnitude(cast(pend[i])) for i in self._pend_indices()
        )

    def pending_min(self) -> float:
        if not self._pend_has.any():
            return float("inf")
        return float(self._pend[self._pend_has].min())

    def take_pending_below(self, threshold: float) -> dict:
        keys = self._keys
        pend = self._pend
        has = self._pend_has
        take: dict = {}
        keep: list[int] = []
        for i in self._pend_indices():
            value = float(pend[i])
            if value <= threshold:
                take[keys[i]] = value
                has[i] = False
            else:
                keep.append(i)
        self._pend_order = keep
        return take

    def result(self) -> dict:
        return self.accumulated

    def global_accumulation(self) -> float:
        magnitude = self.aggregate.delta_magnitude
        acc = self._acc
        total = 0.0
        for i in self._acc_order:
            total += magnitude(acc[i])
        return total

    # -- checkpointing / recovery -----------------------------------------------
    def snapshot(self) -> dict:
        return {
            "acc": self._acc.copy(),
            "acc_has": self._acc_has.copy(),
            "acc_order": list(self._acc_order),
            "pend": self._pend.copy(),
            "pend_has": self._pend_has.copy(),
            "pend_order": list(self._pend_order),
        }

    def restore(self, snap: dict) -> None:
        self._acc = snap["acc"].copy()
        self._acc_has = snap["acc_has"].copy()
        self._acc_order = list(snap["acc_order"])
        self._pend = snap["pend"].copy()
        self._pend_has = snap["pend_has"].copy()
        self._pend_order = list(snap["pend_order"])
