"""The multi-pass driver behind ``repro lint``.

Pass order (each later pass only runs when the earlier ones left the
program usable):

1. parse           -- lexical / syntax errors (RA001, RA002);
2. dependency      -- predicate graph, SCC decomposition, strata;
3. structure       -- the program-class constraints (RA1xx);
4. lints           -- hygiene warnings (RA2xx);
5. extraction      -- the analyzer's G/F'/C decomposition (RA12x on
   failure, reported as diagnostics rather than stack traces);
6. theorem-1 pre-screen (RA301/RA302), theorem-3 async certification
   (RA310/RA311), incremental-maintainability classification
   (RA320/RA321/RA322), sparse-frontier scheduling applicability
   (RA330/RA331), semiring classification (RA340/RA341/RA342),
   abstract-interpretation value-range / overflow certification
   (RA350/RA351/RA352) with the static cost estimate, and
   communication-shape analysis (RA401).

Every pass appends to one :class:`~repro.analysis.diagnostics.AnalysisReport`.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.analysis.asynccert import certify_async
from repro.analysis.comm import communication_shape, estimate_plan_communication
from repro.analysis.depgraph import build_graph, strata
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, error, info
from repro.analysis.frontier import classify_frontier
from repro.analysis.incremental import classify_incremental
from repro.analysis.lints import run_lints
from repro.analysis.prescreen import prescreen
from repro.analysis.semiring import classify_semiring
from repro.analysis.structure import check_structure
from repro.datalog import AnalysisError, LexError, ParseError, parse_program
from repro.datalog.ast import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import CompiledPlan


def diagnostic_from_error(exc: Exception) -> Diagnostic:
    """Map a front-end exception onto its stable diagnostic."""
    if isinstance(exc, LexError):
        return error("RA001", str(exc), line=exc.line, column=exc.column)
    if isinstance(exc, ParseError):
        line = exc.line if exc.line else None
        column = exc.column if exc.line else None
        return error("RA002", str(exc), line=line, column=column)
    attached = getattr(exc, "diagnostic", None)
    if attached is not None:
        return attached
    code = getattr(exc, "code", None) or "RA129"
    return error(code, str(exc))


def analyze_program(
    program: Program,
    *,
    workers: int = 4,
    plan: Optional["CompiledPlan"] = None,
) -> AnalysisReport:
    """Run every analysis pass over a parsed program.

    ``workers`` parameterises the communication estimate; ``plan``, when
    provided, upgrades it from the uniform-hashing expectation to an
    exact cross-worker edge census of the compiled plan.
    """
    report = AnalysisReport(program=program.name)

    graph = build_graph(program)
    report.strata = strata(graph)

    structure_diagnostics, rule = check_structure(program)
    report.extend(structure_diagnostics)
    output = rule.head.name if rule is not None else None
    report.extend(run_lints(program, output))
    if not report.ok:
        return report.finish()

    from repro.datalog import analyze

    try:
        analysis = analyze(program)
    except AnalysisError as exc:
        report.add(diagnostic_from_error(exc))
        return report.finish()

    # -- Theorem-1 pre-screen ---------------------------------------------
    verdict = prescreen(analysis)
    report.theorem1 = verdict.to_dict()
    if verdict.eligible:
        report.add(
            info(
                "RA301",
                f"Theorem-1 pre-screen: eligible via {verdict.pattern} "
                f"({verdict.detail})",
            )
        )
    else:
        report.add(
            info("RA302", f"Theorem-1 pre-screen inconclusive: {verdict.detail}")
        )

    # -- semiring classification -------------------------------------------
    semiring = classify_semiring(analysis, verdict)
    report.semiring = semiring.to_dict()
    report.add(semiring.diagnostic())

    # -- Theorem-3 async certification ------------------------------------
    certificate = certify_async(analysis)
    report.theorem3 = {
        "eligible": certificate.eligible,
        "method": certificate.method or None,
        "detail": certificate.detail,
    }
    report.add(certificate.diagnostic)

    # -- incremental maintainability ---------------------------------------
    incremental = classify_incremental(analysis)
    report.incremental = incremental.to_dict()
    report.add(
        info(
            incremental.code,
            f"incremental maintenance: {incremental.mode} "
            f"({incremental.detail})",
        )
    )

    # -- sparse-frontier scheduling ----------------------------------------
    frontier = classify_frontier(analysis)
    report.frontier = frontier.to_dict()
    report.add(
        info(
            frontier.code,
            f"sparse frontier: {frontier.mode} ({frontier.detail})",
        )
    )

    # -- value range / overflow certification (abstract interpretation) ----
    from repro.analysis.absint import (
        analyze_plan_range,
        analyze_symbolic_range,
        estimate_plan_cost,
        summarize_plan,
    )

    if plan is not None:
        summary = summarize_plan(plan)
        ranges = analyze_plan_range(plan, summary)
        cost = estimate_plan_cost(plan, summary)
        report.ranges = ranges.to_dict()
        report.ranges["graph"] = summary.to_dict()
        report.cost = cost.to_dict()
    else:
        ranges = analyze_symbolic_range(analysis)
        report.ranges = ranges.to_dict()
    report.add(ranges.diagnostic())

    # -- communication shape ----------------------------------------------
    estimate = (
        estimate_plan_communication(plan, workers) if plan is not None else None
    )
    for shape in communication_shape(analysis):
        entry = shape.to_dict()
        entry["workers"] = workers
        if estimate is not None:
            entry["estimated_cross_fraction"] = estimate.cross_fraction
        elif shape.co_partitionable:
            entry["estimated_cross_fraction"] = 0.0
        else:
            # uniform-hashing expectation: a random edge lands on another
            # worker with probability (w-1)/w
            entry["estimated_cross_fraction"] = (workers - 1) / workers
        report.communication.append(entry)
        report.add(info("RA401", f"body {shape.body}: {shape.detail}"))
    if estimate is not None:
        report.communication.append(
            {
                "body": "plan",
                "co_partitionable": estimate.cross_edges == 0,
                "workers": estimate.workers,
                "estimated_cross_fraction": estimate.cross_fraction,
                "total_edges": estimate.total_edges,
                "cross_edges": estimate.cross_edges,
            }
        )
        report.add(
            info(
                "RA401",
                f"compiled plan ships {estimate.cross_edges} of "
                f"{estimate.total_edges} edges cross-worker "
                f"({estimate.cross_fraction:.1%}) at {estimate.workers} workers",
            )
        )

    return report.finish()


def analyze_source(
    source: str,
    name: str = "program",
    *,
    workers: int = 4,
    plan: Optional["CompiledPlan"] = None,
) -> AnalysisReport:
    """Parse and analyze Datalog source text; never raises front-end errors."""
    try:
        program = parse_program(source, name=name)
    except (LexError, ParseError) as exc:
        report = AnalysisReport(program=name)
        report.add(diagnostic_from_error(exc))
        return report.finish()
    return analyze_program(program, workers=workers, plan=plan)
