"""Reusable diagnostics core: stable codes, severities, spans, renderers.

Every finding of the static analyzer is a :class:`Diagnostic` with a
stable ``RAxxx`` error code (the public contract: golden tests, CI jobs
and engine gates all match on codes, never on message text), a severity,
an optional source span (line/column from the lexer tokens) and an
optional fix-it hint.  A :class:`AnalysisReport` collects the
diagnostics of one program together with the structured verdicts of the
later passes (Theorem-1 pre-screen, Theorem-3 async certificate,
communication shape) and renders as text or JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Optional


class Severity(enum.Enum):
    """How bad a diagnostic is; ERROR makes ``repro lint`` exit nonzero."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: The stable error-code table.  Codes are append-only: a released code
#: never changes meaning, renumbering is forbidden (golden diagnostics
#: tests pin them).
CODES: dict[str, str] = {
    # syntax (RA0xx)
    "RA001": "lexical error",
    "RA002": "syntax error",
    # program-class structure (RA1xx) -- violations of the supported
    # class of section 2.1 (direct linear recursion, one aggregate head)
    "RA101": "no recursive rule",
    "RA102": "mutual or multiple recursion",
    "RA103": "indirect recursion through the recursive predicate",
    "RA104": "non-linear recursion",
    "RA105": "recursive rule has no head aggregate",
    "RA106": "aggregate is not the last head argument",
    "RA107": "misplaced iteration index",
    "RA108": "head key positions must be variables",
    "RA109": "malformed recursive atom",
    "RA110": "unstratifiable aggregation",
    "RA111": "multiple termination clauses",
    "RA112": "unsupported assume declaration",
    # extraction (RA12x) -- the G/F'/C decomposition failed
    "RA120": "aggregate variable not defined in the recursive body",
    "RA121": "variable defined more than once",
    "RA122": "cyclic definitions in recursive body",
    "RA129": "program outside the supported class",
    # lints (RA2xx)
    "RA201": "unbound head variable",
    "RA202": "unused predicate",
    "RA203": "duplicate rule",
    "RA204": "singleton body variable",
    # Theorem-1 pre-screen (RA30x)
    "RA301": "Theorem-1 pre-screen: eligible by shape",
    "RA302": "Theorem-1 pre-screen inconclusive",
    # Theorem-3 async certification (RA31x)
    "RA310": "program not certified for asynchronous execution",
    "RA311": "Theorem-3 async certificate granted",
    # incremental maintainability under graph deltas (RA32x)
    "RA320": "incrementally maintainable (inserts and deletions)",
    "RA321": "insert-only incremental maintenance; deletions recompute",
    "RA322": "not incrementally maintainable",
    # sparse-frontier scheduling applicability (RA33x)
    "RA330": "sparse frontier: bucketed delta-stepping applicable",
    "RA331": "sparse frontier: compaction only, delta-stepping inapplicable",
    # semiring classification (RA34x)
    "RA340": "semiring classified",
    "RA341": "aggregate is not the ⊕ of any semiring",
    "RA342": "F' not certified against the aggregate's semiring ⊗",
    # abstract interpretation: value range / overflow (RA35x)
    "RA350": "value range statically bounded, float64-exact",
    "RA351": "overflow or precision loss possible",
    "RA352": "range analysis inconclusive",
    # sharding / communication shape (RA4xx)
    "RA401": "communication shape",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a severity, a message, maybe a span."""

    code: str
    severity: Severity
    message: str
    line: Optional[int] = None
    column: Optional[int] = None
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        return CODES[self.code]

    def render(self) -> str:
        location = ""
        if self.line is not None:
            location = f":{self.line}"
            if self.column is not None:
                location += f":{self.column}"
        text = f"{self.severity.value}[{self.code}]{location}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "title": self.title,
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "hint": self.hint,
        }


def error(code: str, message: str, **kwargs: Any) -> Diagnostic:
    return Diagnostic(code, Severity.ERROR, message, **kwargs)


def warning(code: str, message: str, **kwargs: Any) -> Diagnostic:
    return Diagnostic(code, Severity.WARNING, message, **kwargs)


def info(code: str, message: str, **kwargs: Any) -> Diagnostic:
    return Diagnostic(code, Severity.INFO, message, **kwargs)


def _sort_key(diagnostic: Diagnostic) -> tuple[int, int, int, str]:
    return (
        diagnostic.severity.rank,
        diagnostic.line if diagnostic.line is not None else 10**9,
        diagnostic.column if diagnostic.column is not None else 10**9,
        diagnostic.code,
    )


@dataclass
class AnalysisReport:
    """Everything the analyzer found out about one program."""

    program: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Theorem-1 pre-screen section (``None`` before the pass ran)
    theorem1: Optional[dict[str, Any]] = None
    #: Theorem-3 async-eligibility section
    theorem3: Optional[dict[str, Any]] = None
    #: incremental-maintainability section (RA32x verdict)
    incremental: Optional[dict[str, Any]] = None
    #: sparse-frontier scheduling section (RA33x verdict)
    frontier: Optional[dict[str, Any]] = None
    #: semiring classification section (RA34x verdict)
    semiring: Optional[dict[str, Any]] = None
    #: abstract-interpretation value-range section (RA35x verdict)
    ranges: Optional[dict[str, Any]] = None
    #: static cost estimate (supersteps, work, frontier, backend)
    cost: Optional[dict[str, Any]] = None
    #: per-recursive-body communication-shape section
    communication: list[dict[str, Any]] = field(default_factory=list)
    #: predicate strata, bottom-up (EDB first), from the dependency graph
    strata: list[list[str]] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def finish(self) -> "AnalysisReport":
        """Sort diagnostics into the stable presentation order."""
        self.diagnostics.sort(key=_sort_key)
        return self

    # -- verdicts ---------------------------------------------------------
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def exit_code(self, gate: str = "none") -> int:
        """0/1 verdict for the CLI.

        ``gate='async'`` additionally fails programs whose Theorem-3
        certificate was refused (code RA310), so CI can require async
        eligibility where a deployment depends on it.  ``gate='overflow'``
        fails programs with a proven overflow / precision-loss risk
        (code RA351) so CI can require a float64-exactness certificate.
        """
        if self.errors():
            return 1
        if gate == "async" and any(d.code == "RA310" for d in self.diagnostics):
            return 1
        if gate == "overflow" and any(d.code == "RA351" for d in self.diagnostics):
            return 1
        return 0

    # -- renderers --------------------------------------------------------
    def render_text(self) -> str:
        lines = [f"== {self.program} =="]
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        if self.theorem1 is not None:
            verdict = "eligible" if self.theorem1.get("eligible") else "inconclusive"
            pattern = self.theorem1.get("pattern")
            suffix = f" via {pattern}" if pattern else ""
            lines.append(f"theorem-1 pre-screen: {verdict}{suffix}")
        if self.theorem3 is not None:
            verdict = "certified" if self.theorem3.get("eligible") else "refused"
            method = self.theorem3.get("method")
            suffix = f" ({method})" if method else ""
            lines.append(f"theorem-3 async: {verdict}{suffix}")
        if self.incremental is not None:
            lines.append(
                f"incremental maintenance: {self.incremental.get('mode')} "
                f"({self.incremental.get('code')})"
            )
        if self.frontier is not None:
            lines.append(
                f"sparse frontier: {self.frontier.get('mode')} "
                f"({self.frontier.get('code')})"
            )
        if self.semiring is not None:
            name = self.semiring.get("semiring") or "none"
            lines.append(
                f"semiring: {name} "
                f"[{self.semiring.get('laws')}] ({self.semiring.get('code')})"
            )
        if self.ranges is not None:
            if self.ranges.get("bounded"):
                lo, hi = self.ranges.get("bound", (0.0, 0.0))
                bound = f"[{lo:g}, {hi:g}]"
            else:
                bound = "unbounded"
            lines.append(
                f"value range: {bound} via {self.ranges.get('method')} "
                f"({self.ranges.get('code')})"
            )
        if self.cost is not None:
            lines.append(
                f"static cost: {self.cost.get('supersteps')} supersteps, "
                f"{self.cost.get('work')} work, peak frontier "
                f"{self.cost.get('peak_frontier_fraction'):.3f} "
                f"-> backend {self.cost.get('recommended_backend')}"
            )
        for entry in self.communication:
            shape = "co-partitioned" if entry.get("co_partitionable") else "cross-worker"
            lines.append(
                f"communication body[{entry.get('body')}]: {shape}, "
                f"estimated cross fraction {entry.get('estimated_cross_fraction'):.3f} "
                f"at {entry.get('workers')} workers"
            )
        errors, warnings_ = len(self.errors()), len(self.warnings())
        lines.append(f"{errors} error(s), {warnings_} warning(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "theorem1": self.theorem1,
            "theorem3": self.theorem3,
            "incremental": self.incremental,
            "frontier": self.frontier,
            "semiring": self.semiring,
            "ranges": self.ranges,
            "cost": self.cost,
            "communication": self.communication,
            "strata": self.strata,
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)
