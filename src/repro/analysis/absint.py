"""Abstract interpretation over compiled plans: RA35x + static cost.

This pass runs two abstract domains over the plan IR *before* any engine
executes it:

* an **interval/magnitude domain** over the program's semiring carrier:
  every key is mapped to an interval covering every value the key can
  ever hold during evaluation (including transient pre-fixpoint states
  of the async engines).  Numeric carriers track the value itself;
  non-numeric carriers (the k-tropical :class:`KTuple`) track
  ``value_magnitude`` instead, so the certificate bounds ``|x|``.

* a **cardinality / frontier-density domain** parameterised by graph
  summary statistics (``n``, ``m``, degree histogram, weight range,
  BFS level widths): a static prediction of supersteps, total work and
  peak frontier fraction -- the ``cost`` section of ``repro lint`` and
  the pricing signal of the serving layer.

The evaluator is widening-based: acyclic plans are solved exactly in
one topological pass; cyclic selective plans run a bounded per-key
Kleene iteration and, where that cannot stabilise, widen to a
closed-form threshold (simple-path bound for shifts, seeded-magnitude
cap for contractive scalings); cyclic additive plans widen directly to
a ``min(ρ_∞, ρ_1)`` norm bound over per-edge slopes.  The additive
model matches the engines' *accumulate* semantics: the iteration index
of ``p(X, i+1)`` programs is stripped before evaluation
(:func:`repro.engine.rules._strip_iteration`), so the concrete value is
the Neumann-style sum of propagated deltas ``Σ_k F^k(x⁰ ⊕ c)``, never a
per-round replacement.  Soundness arguments are recorded on the
verdict.  See DESIGN.md "Abstract interpretation".

Verdict codes (stable, append-only):

* ``RA350`` -- value range statically bounded and below ``2**53``, so
  float64 kernel arithmetic is exact for integral carriers and the
  silent ``OverflowError -> inf`` saturation path can never fire;
* ``RA351`` -- overflow or precision loss possible (proven growth with
  no epsilon termination, or a finite bound at or above ``2**53``);
* ``RA352`` -- range analysis inconclusive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.aggregates import AggregateKind
from repro.analysis.diagnostics import Diagnostic, info, warning
from repro.analysis.prescreen import match_pattern
from repro.expr.analysis import Interval, interval_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.analyzer import ProgramAnalysis
    from repro.engine.plan import CompiledPlan
    from repro.obs.metrics import Metrics

#: float64 holds every integer below this exactly (53-bit mantissa).
FLOAT64_EXACT_LIMIT = 2.0**53

#: relative outward inflation applied to the final hull, guarding the
#: certificate against summation-order float differences across backends
OUTWARD_SLACK = 1e-9


def _hull(a: Optional[Interval], b: Optional[Interval]) -> Optional[Interval]:
    if a is None:
        return b
    if b is None:
        return a
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi))


def _outward(interval: Interval) -> Interval:
    """Widen a finite hull outward by ``OUTWARD_SLACK`` (relative)."""
    lo, hi = interval.lo, interval.hi
    if math.isfinite(lo):
        lo = math.nextafter(lo - abs(lo) * OUTWARD_SLACK, -math.inf)
    if math.isfinite(hi):
        hi = math.nextafter(hi + abs(hi) * OUTWARD_SLACK, math.inf)
    return Interval(lo, hi)


# ---------------------------------------------------------------------------
# graph summary (the cardinality domain's parameters)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GraphSummary:
    """Summary statistics of one compiled plan's dependency graph."""

    num_keys: int
    num_edges: int
    max_in_degree: int
    max_out_degree: int
    #: log2-bucketed out-degree histogram, e.g. ``{"1": 30, "2-3": 12}``
    degree_histogram: dict[str, int]
    #: hull over every per-edge parameter value (the "weight range")
    weight_lo: float
    weight_hi: float
    acyclic: bool
    #: BFS levels from the seeded keys (X⁰ ∪ C): level widths in order
    levels: tuple[int, ...]
    #: keys reachable from the seeded keys (= sum of level widths)
    reached: int

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def peak_frontier_fraction(self) -> float:
        if not self.levels or not self.num_keys:
            return 0.0
        return max(self.levels) / self.num_keys

    def to_dict(self) -> dict[str, Any]:
        return {
            "keys": self.num_keys,
            "edges": self.num_edges,
            "max_in_degree": self.max_in_degree,
            "max_out_degree": self.max_out_degree,
            "degree_histogram": self.degree_histogram,
            "weight_range": [self.weight_lo, self.weight_hi],
            "acyclic": self.acyclic,
            "bfs_depth": self.depth,
            "peak_frontier_fraction": self.peak_frontier_fraction,
        }


def _degree_bucket(degree: int) -> str:
    if degree <= 1:
        return str(degree)
    low = 1 << (degree.bit_length() - 1)
    high = (low << 1) - 1
    return f"{low}-{high}"


def summarize_plan(plan: "CompiledPlan") -> GraphSummary:
    """Compute the graph summary the cost/frontier domain runs on."""
    out_degree: dict = {key: 0 for key in plan.keys}
    in_degree: dict = {key: 0 for key in plan.keys}
    weight_lo, weight_hi = math.inf, -math.inf
    num_edges = 0
    for src, edges in plan.out_edges.items():
        out_degree[src] = len(edges)
        num_edges += len(edges)
        for dst, params, _fn in edges:
            in_degree[dst] = in_degree.get(dst, 0) + 1
            for value in params:
                try:
                    value = float(value)
                except (TypeError, ValueError):
                    continue
                weight_lo = min(weight_lo, value)
                weight_hi = max(weight_hi, value)
    if weight_lo > weight_hi:
        weight_lo = weight_hi = 0.0

    histogram: dict[str, int] = {}
    for degree in out_degree.values():
        bucket = _degree_bucket(degree)
        histogram[bucket] = histogram.get(bucket, 0) + 1

    # Kahn's algorithm for acyclicity over the whole dependency graph.
    pending = dict(in_degree)
    queue = sorted((key for key, deg in pending.items() if deg == 0), key=repr)
    removed = 0
    while queue:
        key = queue.pop()
        removed += 1
        for dst, _params, _fn in plan.out_edges.get(key, ()):
            pending[dst] -= 1
            if pending[dst] == 0:
                queue.append(dst)
    acyclic = removed == len(pending)

    # BFS level decomposition from the seeded keys.
    frontier = sorted(set(plan.initial) | set(plan.constants), key=repr)
    seen = set(frontier)
    levels: list[int] = []
    while frontier:
        levels.append(len(frontier))
        nxt = []
        for key in frontier:
            for dst, _params, _fn in plan.out_edges.get(key, ()):
                if dst not in seen:
                    seen.add(dst)
                    nxt.append(dst)
        frontier = nxt

    return GraphSummary(
        num_keys=len(plan.keys),
        num_edges=num_edges,
        max_in_degree=max(in_degree.values(), default=0),
        max_out_degree=max(out_degree.values(), default=0),
        degree_histogram=dict(sorted(histogram.items())),
        weight_lo=weight_lo,
        weight_hi=weight_hi,
        acyclic=acyclic,
        levels=tuple(levels),
        reached=len(seen),
    )


# ---------------------------------------------------------------------------
# the interval/magnitude domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RangeVerdict:
    """Outcome of the value-range pass: an RA35x code plus the bound."""

    #: ``"RA350"`` | ``"RA351"`` | ``"RA352"``
    code: str
    lo: float
    hi: float
    #: largest magnitude the carrier can reach (``max(|lo|, |hi|)``)
    magnitude: float
    #: the bound stays below ``2**53``: float64 integer arithmetic exact
    float64_exact: bool
    #: ``"topological"`` | ``"kleene"`` | ``"widening"`` | ``"symbolic"``
    method: str
    #: True when the domain tracked ``value_magnitude`` (non-numeric carrier)
    magnitude_only: bool
    iterations: int
    detail: str

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.magnitude)

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "bound": [self.lo, self.hi],
            "magnitude": self.magnitude,
            "bounded": self.bounded,
            "float64_exact": self.float64_exact,
            "method": self.method,
            "magnitude_only": self.magnitude_only,
            "iterations": self.iterations,
            "detail": self.detail,
        }

    def diagnostic(self) -> Diagnostic:
        if self.code == "RA350":
            return info(
                "RA350",
                f"value range statically bounded to [{self.lo:g}, {self.hi:g}] "
                f"via {self.method}; float64-exact ({self.detail})",
            )
        if self.code == "RA351":
            return warning(
                "RA351",
                f"overflow or precision loss possible: {self.detail} "
                f"(bound [{self.lo:g}, {self.hi:g}], method {self.method})",
            )
        return info("RA352", f"range analysis inconclusive: {self.detail}")


def _classify(
    hull: Optional[Interval],
    *,
    method: str,
    iterations: int,
    magnitude_only: bool,
    detail: str,
    epsilon_terminated: bool,
    growth_proven: bool = False,
) -> RangeVerdict:
    """Map a final hull onto the stable RA35x codes."""
    if hull is None:
        hull = Interval.point(0.0)
    hull = _outward(hull)
    magnitude = max(abs(hull.lo), abs(hull.hi))
    if math.isfinite(magnitude):
        if magnitude < FLOAT64_EXACT_LIMIT:
            return RangeVerdict(
                code="RA350",
                lo=hull.lo,
                hi=hull.hi,
                magnitude=magnitude,
                float64_exact=True,
                method=method,
                magnitude_only=magnitude_only,
                iterations=iterations,
                detail=detail,
            )
        return RangeVerdict(
            code="RA351",
            lo=hull.lo,
            hi=hull.hi,
            magnitude=magnitude,
            float64_exact=False,
            method=method,
            magnitude_only=magnitude_only,
            iterations=iterations,
            detail=f"bound reaches 2**53 ({detail})",
        )
    code = "RA351" if growth_proven and not epsilon_terminated else "RA352"
    if code == "RA352" and epsilon_terminated:
        detail = f"{detail}; epsilon termination bounds the run, not the values"
    return RangeVerdict(
        code=code,
        lo=hull.lo,
        hi=hull.hi,
        magnitude=magnitude,
        float64_exact=False,
        method=method,
        magnitude_only=magnitude_only,
        iterations=iterations,
        detail=detail,
    )


class _EdgeTransfer:
    """One plan edge's abstract transfer function on intervals.

    ``kind`` is the pre-screen pattern of the edge's recursive body:
    ``identity`` passes the interval through, ``shift`` adds the
    edge-constant ``F'(0, params)``, ``scale`` multiplies by
    ``F'(1, params)``; anything else re-evaluates ``F'`` through
    :func:`repro.expr.analysis.interval_of` with the edge's concrete
    parameters (``opaque``), which handles the call primitives
    (``tanh``, ``relu``, ...).
    """

    __slots__ = ("src", "dst", "kind", "scalar", "fprime", "var", "params")

    def __init__(self, src, dst, kind: str, scalar: float, fprime, var, params):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.scalar = scalar
        self.fprime = fprime
        self.var = var
        self.params = params

    def apply(self, iv: Interval, *, magnitude_only: bool) -> Interval:
        if self.kind == "identity":
            return iv
        if self.kind == "shift":
            if magnitude_only:
                # |x ⊗ w| <= |x| + |w| on the k-tropical carrier
                hi = iv.hi + abs(self.scalar)
                return Interval(0.0, max(0.0, hi))
            return iv + Interval.point(self.scalar)
        if self.kind == "scale":
            return iv * Interval.point(self.scalar)
        if magnitude_only:
            return Interval(0.0, math.inf)
        domains = {self.var: iv}
        for name, value in self.params:
            domains[name] = Interval.point(value)
        try:
            return interval_of(self.fprime, domains)
        except (KeyError, TypeError, ZeroDivisionError, ValueError, OverflowError):
            return Interval.unbounded()


def _float_image(value: Any, semiring, magnitude_only: bool) -> Optional[float]:
    """Map a carrier value onto the tracked float (value or magnitude)."""
    try:
        if magnitude_only:
            if semiring is None:
                return None
            return float(semiring.value_magnitude(value))
        return float(value)
    except (TypeError, ValueError, OverflowError):
        return None


def _edge_scalar(fn: Callable, probe: float, params: tuple) -> Optional[float]:
    try:
        return float(fn(probe, *params))
    except Exception:
        return None


def _build_transfers(
    plan: "CompiledPlan", patterns: tuple[Optional[str], ...]
) -> Optional[list[_EdgeTransfer]]:
    """Lower every plan edge to an :class:`_EdgeTransfer`.

    Returns ``None`` when an edge's scalar probe fails (non-float
    parameters with an opaque body we cannot interval-evaluate).
    """
    analysis = plan.analysis
    by_fn = {}
    for index, fn in enumerate(plan.fprime_fns):
        spec = analysis.recursions[index]
        by_fn[id(fn)] = (patterns[index], spec)
    transfers: list[_EdgeTransfer] = []
    for src, edges in plan.out_edges.items():
        for dst, params, fn in edges:
            pattern, spec = by_fn[id(fn)]
            kind, scalar = "opaque", 0.0
            if pattern == "identity":
                kind = "identity"
            elif pattern == "shift":
                value = _edge_scalar(fn, 0.0, params)
                if value is None:
                    return None
                kind, scalar = "shift", value
            elif pattern in ("scale-nonneg", "linear-homogeneous"):
                value = _edge_scalar(fn, 1.0, params)
                if value is None:
                    return None
                kind, scalar = "scale", value
            named_params = tuple(
                (name, float(value))
                for name, value in zip(spec.fprime_params, params)
                if isinstance(value, (int, float))
            )
            transfers.append(
                _EdgeTransfer(
                    src, dst, kind, scalar, spec.fprime,
                    spec.recursion_var, named_params,
                )
            )
    return transfers


def _base_hulls(
    plan: "CompiledPlan", semiring, magnitude_only: bool, *, additive: bool
) -> tuple[Optional[dict], Optional[dict]]:
    """Per-key seed hulls of ``X⁰ ⊕ C`` and of ``C`` alone.

    The seed combines a key's initial value and constant by the
    aggregate's own ``⊕``: interval *addition* for additive folds (the
    engines accumulate both into one MonoTable slot) and interval hull
    for selective folds (the fold keeps one of them).  Returns ``(None,
    None)`` when a value is outside the tracked carrier.
    """
    initial: dict = {}
    consts: dict = {}
    for source, sink in ((plan.initial, initial), (plan.constants, consts)):
        for key, value in source.items():
            image = _float_image(value, semiring, magnitude_only)
            if image is None:
                return None, None
            sink[key] = Interval.point(image)
    base = dict(initial)
    for key, iv in consts.items():
        if additive and key in base:
            base[key] = base[key] + iv
        else:
            base[key] = _hull(base.get(key), iv)
    return base, consts


def _topological_pass(
    plan: "CompiledPlan",
    transfers: list[_EdgeTransfer],
    base: dict,
    *,
    additive: bool,
    magnitude_only: bool,
) -> Optional[dict]:
    """Exact per-key solve of an acyclic plan (one pass in topo order).

    On a DAG the accumulate fixpoint ``x = x⁰ ⊕ c ⊕ F(x)`` resolves in
    one pass: each key's final value is its seed combined with the
    transfers of its (already-final) predecessors.  Additive
    contributions are summed with ``0`` joined into each edge hull (a
    concretely-unreached edge contributes nothing); selective
    contributions join into the hull.
    """
    in_edges: dict = {}
    in_degree: dict = {key: 0 for key in plan.keys}
    for transfer in transfers:
        in_edges.setdefault(transfer.dst, []).append(transfer)
        in_degree[transfer.dst] += 1
    queue = sorted((k for k, deg in in_degree.items() if deg == 0), key=repr)
    vals: dict = dict(base)
    order = 0
    while queue:
        key = queue.pop()
        order += 1
        current = vals.get(key)
        contribs = [
            t.apply(vals[t.src], magnitude_only=magnitude_only)
            for t in in_edges.get(key, ())
            if t.src in vals
        ]
        if contribs:
            if additive:
                lo = sum(min(c.lo, 0.0) for c in contribs)
                hi = sum(max(c.hi, 0.0) for c in contribs)
                acc = Interval(lo, hi)
                start = current if current is not None else Interval.point(0.0)
                vals[key] = start + acc
            else:
                for contrib in contribs:
                    current = _hull(current, contrib)
                vals[key] = current
        for transfer in plan.out_edges.get(key, ()):
            dst = transfer[0]
            in_degree[dst] -= 1
            if in_degree[dst] == 0:
                queue.append(dst)
    if order != len(in_degree):
        return None  # cycle slipped through; caller falls back
    return vals


def _kleene_round(
    vals: dict,
    in_edges: dict,
    base: dict,
    keys,
    *,
    magnitude_only: bool,
) -> tuple[dict, bool]:
    """One joint application of the *selective* abstract transfer.

    A selective fold stores one contribution per key, so the abstract
    update is the hull-join of the seed with every in-edge image;
    reaching a round with no hull growth is a genuine post-fixpoint.
    (Additive folds never take this path: their accumulate semantics is
    handled by the closed-form norm bound instead.)
    """
    new_vals = dict(vals)
    changed = False
    for key in keys:
        candidate = base.get(key)
        for t in in_edges.get(key, ()):
            if t.src in vals:
                candidate = _hull(
                    candidate, t.apply(vals[t.src], magnitude_only=magnitude_only)
                )
        if candidate is None:
            continue
        merged = _hull(new_vals.get(key), candidate)
        if merged != new_vals.get(key):
            new_vals[key] = merged
            changed = True
    return new_vals, not changed


def _lipschitz_pair(
    expr, var: str, params: dict,
) -> Optional[tuple[float, float]]:
    """Bound ``|expr(v)| <= A·|v| + B`` structurally; returns ``(A, B)``.

    Sound for every real ``v``: constants and parameters contribute
    offsets, the recursion variable contributes slope, the 1-Lipschitz
    zero-fixing primitives (``relu``, ``tanh``, ``abs``) pass the pair
    through, ``sigmoid`` is globally bounded by one.  Products are only
    admitted when at most one factor carries slope (no ``v²`` terms);
    anything else returns ``None``.
    """
    from repro.expr.terms import Add, Call, Const, Div, Mul, Neg, Sub, Var

    if isinstance(expr, Const):
        return 0.0, abs(float(expr.value))
    if isinstance(expr, Var):
        if expr.name == var:
            return 1.0, 0.0
        if expr.name in params:
            return 0.0, abs(params[expr.name])
        return None
    if isinstance(expr, Neg):
        return _lipschitz_pair(expr.operand, var, params)
    if isinstance(expr, (Add, Sub)):
        left = _lipschitz_pair(expr.left, var, params)
        right = _lipschitz_pair(expr.right, var, params)
        if left is None or right is None:
            return None
        return left[0] + right[0], left[1] + right[1]
    if isinstance(expr, Mul):
        left = _lipschitz_pair(expr.left, var, params)
        right = _lipschitz_pair(expr.right, var, params)
        if left is None or right is None:
            return None
        if left[0] == 0.0:
            return right[0] * left[1], right[1] * left[1]
        if right[0] == 0.0:
            return left[0] * right[1], left[1] * right[1]
        return None  # bilinear in the recursion variable
    if isinstance(expr, Div):
        left = _lipschitz_pair(expr.left, var, params)
        if left is None:
            return None
        point_domains = {name: Interval.point(v) for name, v in params.items()}
        try:
            denom = interval_of(expr.right, point_domains)
        except (KeyError, TypeError, ZeroDivisionError, ValueError, OverflowError):
            return None
        if denom.lo <= 0.0 <= denom.hi:
            return None
        scale = 1.0 / min(abs(denom.lo), abs(denom.hi))
        return left[0] * scale, left[1] * scale
    if isinstance(expr, Call):
        inner = _lipschitz_pair(expr.args[0], var, params)
        if expr.func in ("relu", "tanh", "abs"):
            return inner  # 1-Lipschitz and f(0) = 0
        if expr.func == "sigmoid":
            return 0.0, 1.0
        return None
    return None


def _edge_slopes(
    transfers: list[_EdgeTransfer],
) -> Optional[list[tuple["_EdgeTransfer", float]]]:
    """Per-edge slope bounds ``|fn(v)| <= slope·|v|`` for additive plans.

    Identity and scale edges carry their exact coefficient; opaque
    bodies are admitted only with a zero-offset Lipschitz bound
    (``fn(0) = 0``, e.g. ``relu(g·x)·w``), because a non-zero offset
    would re-derive itself on every propagated delta and the Neumann
    sum would not be geometric.  Returns ``None`` when any edge has no
    sound slope.
    """
    slopes: list[tuple[_EdgeTransfer, float]] = []
    for transfer in transfers:
        if transfer.kind == "identity":
            slope = 1.0
        elif transfer.kind == "scale":
            slope = abs(transfer.scalar)
        elif transfer.kind == "opaque":
            pair = _lipschitz_pair(
                transfer.fprime, transfer.var, dict(transfer.params)
            )
            if pair is None or pair[1] != 0.0:
                return None
            slope = pair[0]
        else:  # shift: adds a constant on every delta, never geometric
            return None
        slopes.append((transfer, slope))
    return slopes


def _norm_threshold(
    slopes: list[tuple[_EdgeTransfer, float]], base: dict, consts: dict
) -> Optional[tuple[float, float, str]]:
    """Widening threshold for additive recursions with per-edge slopes.

    The engines strip the iteration index, so every additive program
    runs with accumulate semantics: the final value is the Neumann-style
    delta sum ``x = Σ_k F^k(x⁰ ⊕ c)`` (seminaive/MRA) or equivalently
    the fixpoint ``x = x⁰ ⊕ c ⊕ F(x)`` (naive re-evaluation).  With
    per-edge slopes ``|fn(v)| <= s·|v|``, round deltas satisfy
    ``||d_{k+1}|| <= ρ·||d_k||`` for both the row-sum norm
    ``ρ_∞ = max_dst Σ_in s`` and the column-sum norm
    ``ρ_1 = max_src Σ_out s``; whenever either is below one, every
    per-key value -- and every prefix of the delta sum, so transient
    mid-run states too -- is bounded by ``B = ||x⁰ ⊕ c|| / (1 - ρ)`` in
    that norm.  One extra row of in-flight contributions
    (``ρ_∞·B + ||c||_∞``) is added for engines that stage a row before
    folding it.  Returns ``(lo, hi, detail)`` or ``None`` when no norm
    contracts.
    """
    row: dict = {}
    col: dict = {}
    for transfer, slope in slopes:
        row[transfer.dst] = row.get(transfer.dst, 0.0) + slope
        col[transfer.src] = col.get(transfer.src, 0.0) + slope
    rho_inf = max(row.values(), default=0.0)
    rho_1 = max(col.values(), default=0.0)

    def _norm(hulls: dict, order: str) -> float:
        magnitudes = [max(abs(iv.lo), abs(iv.hi)) for iv in hulls.values()]
        if order == "inf":
            return max(magnitudes, default=0.0)
        return sum(magnitudes)

    candidates = []
    for rho, order in ((rho_inf, "inf"), (rho_1, "1")):
        if rho >= 1.0:
            continue
        candidates.append((_norm(base, order) / (1.0 - rho), f"rho_{order}={rho:.6g}"))
    if not candidates:
        return None
    bound, which = min(candidates, key=lambda item: item[0])
    # transient partial sums of one more round of row contributions
    const_inf = _norm(consts, "inf")
    bound = bound + rho_inf * bound + const_inf
    detail = (
        f"geometric norm bound via {which}: the accumulated delta sum "
        "contracts, plus one row of transient contributions"
    )
    return -bound, bound, detail


def _selective_scale_threshold(
    transfers: list[_EdgeTransfer], base: dict
) -> Optional[tuple[float, float, str]]:
    """Widening threshold for selective scale recursions with |a| <= 1.

    A selective fold only stores single contributions, each a chain of
    per-edge scalings applied to a seeded value; when every coefficient
    has magnitude at most one, no chain can exceed the seeded magnitude
    ``M``.  The Kleene iteration cannot stabilise here (products shrink
    forever toward zero) but ``[-M, M]`` -- tightened to ``[0, M]`` for
    non-negative seeds and coefficients -- is a sound cap.
    """
    nonneg = True
    for transfer in transfers:
        if transfer.kind == "identity":
            continue
        if transfer.kind != "scale" or abs(transfer.scalar) > 1.0:
            return None
        nonneg = nonneg and transfer.scalar >= 0.0
    if not base:
        return None
    magnitude = max(max(abs(iv.lo), abs(iv.hi)) for iv in base.values())
    nonneg = nonneg and all(iv.lo >= 0.0 for iv in base.values())
    lo = 0.0 if nonneg else -magnitude
    lo = min(lo, min(iv.lo for iv in base.values()))
    detail = (
        "contraction cap: every coefficient has |a| <= 1, so no scaling "
        "chain exceeds the seeded magnitude"
    )
    return lo, magnitude, detail


def _simple_path_threshold(
    transfers: list[_EdgeTransfer],
    base: dict,
    num_keys: int,
    *,
    fold_mode: Optional[str],
    k_factor: int,
) -> Optional[tuple[float, float, str]]:
    """Widening threshold for selective shift/identity recursions.

    For an idempotent fold, a key's stored value only ever changes to an
    *improving* contribution, and a contribution propagates only after
    improving its source -- so every stored value is realised by a walk
    whose every prefix improved its endpoint.  With shift deltas that
    never improve (non-negative for ``min``-folds, non-positive for
    ``max``-folds), such walks are simple, hence at most ``num_keys``
    edges long; the k-tropical carrier allows up to ``k`` improvements
    per key (``k_factor``), scaling the walk budget.  The threshold is
    the seeded hull shifted by the longest such walk.
    """
    deltas = []
    for transfer in transfers:
        if transfer.kind == "identity":
            deltas.append(0.0)
        elif transfer.kind == "shift":
            deltas.append(transfer.scalar)
        else:
            return None
    if not base:
        return None
    lo = min(iv.lo for iv in base.values())
    hi = max(iv.hi for iv in base.values())
    walk = num_keys * k_factor
    max_delta = max(deltas, default=0.0)
    min_delta = min(deltas, default=0.0)
    if fold_mode == "min" and min_delta >= 0.0:
        return (
            lo,
            hi + walk * max_delta,
            f"simple-path bound: non-improving shifts (min delta "
            f"{min_delta:g}) cap walks at {walk} edges",
        )
    if fold_mode == "max" and max_delta <= 0.0:
        return (
            lo + walk * min_delta,
            hi,
            f"simple-path bound: non-improving shifts (max delta "
            f"{max_delta:g}) cap walks at {walk} edges",
        )
    return None


def analyze_plan_range(
    plan: "CompiledPlan", summary: Optional[GraphSummary] = None
) -> RangeVerdict:
    """Run the interval/magnitude domain over a compiled plan."""
    analysis = plan.analysis
    aggregate = analysis.aggregate
    semiring = aggregate.semiring
    magnitude_only = not aggregate.numeric_values
    epsilon_terminated = plan.termination.epsilon is not None
    if summary is None:
        summary = summarize_plan(plan)

    def inconclusive(detail: str, method: str = "none") -> RangeVerdict:
        return _classify(
            Interval.unbounded(),
            method=method,
            iterations=0,
            magnitude_only=magnitude_only,
            detail=detail,
            epsilon_terminated=epsilon_terminated,
        )

    if aggregate.kind is AggregateKind.OTHER:
        return inconclusive(
            f"aggregate {aggregate.name!r} is not a semiring ⊕; the interval "
            "domain has no sound transfer for it"
        )

    patterns = tuple(
        match_pattern(aggregate, spec.fprime, spec.recursion_var, analysis.domains)
        for spec in analysis.recursions
    )
    transfers = _build_transfers(plan, patterns)
    if transfers is None:
        return inconclusive("plan edges carry non-float parameters")
    additive = aggregate.kind is AggregateKind.ADDITIVE
    base, consts = _base_hulls(plan, semiring, magnitude_only, additive=additive)
    if base is None or consts is None:
        return inconclusive("seeded values are outside the tracked carrier")
    if magnitude_only:
        base = {k: Interval(0.0, max(0.0, iv.hi)) for k, iv in base.items()}
        consts = {k: Interval(0.0, max(0.0, iv.hi)) for k, iv in consts.items()}

    fold_mode = aggregate.fold_mode
    k_factor = 1
    if semiring is not None and semiring.name == "k-tropical":
        from repro.aggregates.semiring import KTuple

        k_factor = KTuple.k

    # -- exact: acyclic plans solve in one topological pass -----------------
    if summary.acyclic:
        vals = _topological_pass(
            plan, transfers, base,
            additive=additive, magnitude_only=magnitude_only,
        )
        if vals is not None:
            hull = None
            for iv in vals.values():
                hull = _hull(hull, iv)
            return _classify(
                hull,
                method="topological",
                iterations=1,
                magnitude_only=magnitude_only,
                detail=(
                    "acyclic dependency graph: one topological pass with "
                    "per-key intervals is exact"
                ),
                epsilon_terminated=epsilon_terminated,
            )

    in_edges: dict = {}
    for transfer in transfers:
        in_edges.setdefault(transfer.dst, []).append(transfer)
    keys = sorted(plan.keys, key=repr)

    # -- cyclic selective: bounded Kleene, widening to simple paths ---------
    if not additive:
        rounds = max(1, summary.num_keys) * k_factor
        vals = dict(base)
        stable = False
        done = 0
        for done in range(1, rounds + 1):
            vals, stable = _kleene_round(
                vals, in_edges, base, keys, magnitude_only=magnitude_only,
            )
            if stable:
                break
        hull = None
        for iv in vals.values():
            hull = _hull(hull, iv)
        if stable:
            return _classify(
                hull,
                method="kleene",
                iterations=done,
                magnitude_only=magnitude_only,
                detail="per-key Kleene iteration reached a fixpoint",
                epsilon_terminated=epsilon_terminated,
            )
        threshold = _simple_path_threshold(
            transfers, base, summary.num_keys,
            fold_mode="min" if magnitude_only else fold_mode,
            k_factor=k_factor,
        )
        if threshold is None:
            threshold = _selective_scale_threshold(transfers, base)
        if threshold is not None and hull is not None:
            lo, hi, detail = threshold
            if magnitude_only:
                lo = 0.0
            widened = Interval(min(lo, hull.lo), max(hi, hull.hi))
            return _classify(
                widened,
                method="widening",
                iterations=done,
                magnitude_only=magnitude_only,
                detail=detail,
                epsilon_terminated=epsilon_terminated,
            )
        # No cap applies.  Growth is *proven* only when the shifts always
        # improve the fold (a reachable cycle then improves forever).
        shift_deltas = [
            t.scalar for t in transfers if t.kind == "shift"
        ]
        improving = bool(shift_deltas) and all(
            t.kind in ("shift", "identity") for t in transfers
        ) and (
            (fold_mode == "min" and min(shift_deltas) < 0.0)
            or (fold_mode == "max" and max(shift_deltas) > 0.0)
        )
        return _classify(
            Interval.unbounded(),
            method="widening",
            iterations=done,
            magnitude_only=magnitude_only,
            detail=(
                "cyclic selective recursion with improving shifts: walks "
                "can improve forever"
                if improving
                else "cyclic selective recursion with no applicable cap "
                "(mixed or expanding F' shapes)"
            ),
            epsilon_terminated=epsilon_terminated,
            growth_proven=improving,
        )

    # -- cyclic additive: slope-norm widening (accumulate semantics) --------
    slopes = _edge_slopes(transfers)
    if slopes is not None:
        threshold = _norm_threshold(slopes, base, consts)
        if threshold is not None:
            lo, hi, detail = threshold
            return _classify(
                Interval(lo, hi),
                method="widening",
                iterations=0,
                magnitude_only=magnitude_only,
                detail=detail,
                epsilon_terminated=epsilon_terminated,
            )
    # No contracting norm.  Growth is *proven* only for exact linear
    # transfers with every coefficient >= 1 over non-negative seeds:
    # re-derived deltas then never shrink and any reachable cycle keeps
    # accumulating (Lipschitz slopes are upper bounds, so they prove
    # nothing about growth).
    exact_linear = all(t.kind in ("identity", "scale") for t in transfers)
    coeffs = [
        1.0 if t.kind == "identity" else t.scalar for t in transfers
    ]
    growth = (
        exact_linear
        and bool(coeffs)
        and min(coeffs) >= 1.0
        and all(iv.lo >= 0.0 for iv in base.values())
        and any(iv.hi > 0.0 for iv in base.values())
    )
    return _classify(
        Interval.unbounded(),
        method="widening",
        iterations=0,
        magnitude_only=magnitude_only,
        detail=(
            "cyclic additive accumulation with every coefficient >= 1: "
            "re-derived deltas never shrink, so values grow on any "
            "reachable cycle"
            if growth
            else "cyclic additive recursion with no contracting norm "
            "(rho_inf and rho_1 both >= 1, or F' admits no slope bound)"
        ),
        epsilon_terminated=epsilon_terminated,
        growth_proven=growth,
    )


# ---------------------------------------------------------------------------
# symbolic mode (no plan: declared domains only)
# ---------------------------------------------------------------------------


def analyze_symbolic_range(analysis: "ProgramAnalysis") -> RangeVerdict:
    """Range analysis from the program text alone (no graph).

    Without a concrete plan the pass can rarely *bound* anything, but it
    can still *prove growth*: an additive recursion whose linear
    coefficient is always above one (from the ``assume`` domains)
    multiplies its carrier on every cycle, and a selective fold whose
    shift always improves walks forever.  Proven growth with no epsilon
    termination is RA351; everything else is RA352.
    """
    aggregate = analysis.aggregate
    epsilon_terminated = analysis.termination is not None
    magnitude_only = not aggregate.numeric_values

    def verdict(growth: bool, detail: str) -> RangeVerdict:
        return _classify(
            Interval.unbounded(),
            method="symbolic",
            iterations=0,
            magnitude_only=magnitude_only,
            detail=detail,
            epsilon_terminated=epsilon_terminated,
            growth_proven=growth,
        )

    if aggregate.kind is AggregateKind.OTHER:
        return verdict(False, f"aggregate {aggregate.name!r} is not a semiring ⊕")

    from repro.expr.analysis import affine_in, interval_of_rational

    for spec in analysis.recursions:
        pattern = match_pattern(
            aggregate, spec.fprime, spec.recursion_var, analysis.domains
        )
        if pattern == "identity":
            continue
        if aggregate.kind is AggregateKind.ADDITIVE:
            decomposed = affine_in(spec.fprime, spec.recursion_var)
            if decomposed is None:
                continue
            coeff = interval_of_rational(decomposed[0], analysis.domains)
            if coeff is None:
                continue
            if coeff.lo > 1.0 and not epsilon_terminated:
                return verdict(
                    True,
                    f"linear coefficient always exceeds one "
                    f"(>= {coeff.lo:g}): each cycle multiplies the carrier "
                    "and no epsilon termination bounds the run",
                )
        elif pattern == "shift" and not magnitude_only:
            domains = dict(analysis.domains)
            domains[spec.recursion_var] = Interval.point(0.0)
            try:
                delta = interval_of(spec.fprime, domains)
            except (KeyError, TypeError, ZeroDivisionError, ValueError):
                continue
            improving = (
                delta.hi < 0.0
                if aggregate.fold_mode == "min"
                else delta.lo > 0.0 if aggregate.fold_mode == "max" else False
            )
            if improving and not epsilon_terminated:
                return verdict(
                    True,
                    "shift deltas always improve the fold: cycles improve "
                    "forever and no epsilon termination bounds the run",
                )
    return verdict(
        False,
        "no graph to evaluate against; bounds depend on the data "
        "(run against a compiled plan for a concrete certificate)",
    )


# ---------------------------------------------------------------------------
# the cardinality / cost domain
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostEstimate:
    """Static per-(program, graph) cost prediction."""

    program: str
    supersteps: int
    #: predicted F' applications over the whole run
    work: int
    peak_frontier_fraction: float
    #: ``"sparse"`` | ``"numpy"`` -- the auto-selection preference
    recommended_backend: str
    keys: int
    edges: int
    detail: str

    def est_seconds(self, cost_model=None, workers: int = 1) -> float:
        """Price the prediction in the distributed cost-model currency."""
        if cost_model is None:
            from repro.distributed.cluster import CostModel

            cost_model = CostModel()
        return (
            cost_model.job_overhead
            + self.supersteps * cost_model.barrier_cost
            + self.work * cost_model.tuple_cost / max(1, workers)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "supersteps": self.supersteps,
            "work": self.work,
            "peak_frontier_fraction": self.peak_frontier_fraction,
            "recommended_backend": self.recommended_backend,
            "keys": self.keys,
            "edges": self.edges,
            "est_seconds": self.est_seconds(),
            "detail": self.detail,
        }


def estimate_plan_cost(
    plan: "CompiledPlan", summary: Optional[GraphSummary] = None
) -> CostEstimate:
    """Predict supersteps / work / frontier shape for one plan."""
    from repro.analysis.frontier import classify_frontier

    if summary is None:
        summary = summarize_plan(plan)
    frontier = classify_frontier(plan.analysis)
    max_iterations = plan.termination.max_iterations

    if frontier.delta_stepping:
        # Selective frontier programs settle in one BFS sweep's worth of
        # supersteps: each key re-relaxes its out-edges O(1) times.
        supersteps = max(1, summary.depth)
        work = summary.reached + summary.num_edges
        return CostEstimate(
            program=plan.name,
            supersteps=supersteps,
            work=work,
            peak_frontier_fraction=summary.peak_frontier_fraction,
            recommended_backend="sparse",
            keys=summary.num_keys,
            edges=summary.num_edges,
            detail=(
                "sparse-frontier prediction: BFS depth supersteps, each "
                "reached key relaxes its out-edges once"
            ),
        )

    if summary.acyclic:
        supersteps = max(1, summary.depth)
        work = supersteps * max(1, summary.num_edges)
        detail = "dense prediction: acyclic plan settles in topo-depth rounds"
    else:
        epsilon = plan.termination.epsilon
        supersteps = min(summary.num_keys or 1, max_iterations)
        detail = "dense prediction: iteration count capped at num_keys"
        if epsilon is not None:
            patterns = tuple(
                match_pattern(
                    plan.analysis.aggregate,
                    spec.fprime,
                    spec.recursion_var,
                    plan.analysis.domains,
                )
                for spec in plan.analysis.recursions
            )
            transfers = _build_transfers(plan, patterns)
            slopes = _edge_slopes(transfers) if transfers is not None else None
            if slopes is not None:
                aggregate = plan.analysis.aggregate
                base, consts = _base_hulls(
                    plan, aggregate.semiring, False,
                    additive=aggregate.kind is AggregateKind.ADDITIVE,
                )
                if base is not None and consts is not None:
                    threshold = _norm_threshold(slopes, base, consts)
                    if threshold is not None:
                        bound = max(1.0, abs(threshold[1]))
                        rho = _contraction_factor(slopes)
                        if rho is not None and 0.0 < rho < 1.0:
                            steps = math.log(epsilon / bound) / math.log(rho)
                            supersteps = int(
                                min(max_iterations, max(1.0, math.ceil(steps)))
                            )
                            detail = (
                                "dense prediction: geometric convergence at "
                                f"rate {rho:.6g} to epsilon {epsilon:g}"
                            )
        work = supersteps * max(1, summary.num_edges)

    return CostEstimate(
        program=plan.name,
        supersteps=supersteps,
        work=work,
        peak_frontier_fraction=1.0,
        recommended_backend="numpy",
        keys=summary.num_keys,
        edges=summary.num_edges,
        detail=detail,
    )


def _contraction_factor(
    slopes: list[tuple[_EdgeTransfer, float]],
) -> Optional[float]:
    """``min(ρ_∞, ρ_1)`` over the per-edge slope bounds."""
    row: dict = {}
    col: dict = {}
    for transfer, slope in slopes:
        row[transfer.dst] = row.get(transfer.dst, 0.0) + slope
        col[transfer.src] = col.get(transfer.src, 0.0) + slope
    if not row:
        return None
    return min(max(row.values()), max(col.values()))


def record_cost_metrics(metrics: "Metrics", estimate: CostEstimate) -> None:
    """Publish the static cost prediction as observability gauges."""
    if not metrics.enabled:
        return
    labels = {"program": estimate.program}
    metrics.gauge("cost_supersteps_est", float(estimate.supersteps), **labels)
    metrics.gauge("cost_work_est", float(estimate.work), **labels)
    metrics.gauge(
        "cost_peak_frontier_fraction", estimate.peak_frontier_fraction, **labels
    )
    metrics.gauge("cost_seconds_est", estimate.est_seconds(), **labels)


# ---------------------------------------------------------------------------
# builder-facing helper (replaces the saturation-by-construction comments)
# ---------------------------------------------------------------------------


def counting_walk_bound(
    edges, *, source: int = 0, initial: float = 1.0
) -> float:
    """Exact walk-count bound of a multiplicity DAG from ``source``.

    ``edges`` is an iterable of ``(src, dst, multiplicity)`` rows with
    ``src < dst`` (the builders' canonical forward form).  Returns the
    largest per-key count of the counting-semiring fixpoint -- the same
    number :func:`analyze_plan_range` certifies for ``path_count`` --
    so callers can verify float64 exactness (``< 2**53``) *before*
    running, instead of assuming it from the multiplicity range.
    """
    rows = sorted(edges)
    counts: dict[int, float] = {source: float(initial)}
    best = float(initial)
    for src, dst, multiplicity in rows:
        if src >= dst:
            raise ValueError("counting_walk_bound needs forward (src < dst) edges")
        if src not in counts:
            continue
        counts[dst] = counts.get(dst, 0.0) + counts[src] * float(multiplicity)
        best = max(best, counts[dst])
    return best


__all__ = [
    "FLOAT64_EXACT_LIMIT",
    "CostEstimate",
    "GraphSummary",
    "RangeVerdict",
    "analyze_plan_range",
    "analyze_symbolic_range",
    "counting_walk_bound",
    "estimate_plan_cost",
    "record_cost_metrics",
    "summarize_plan",
]
