"""Predicate dependency graph: edges, SCC decomposition, strata.

The graph has one node per predicate; a directed edge ``p -> q`` records
that some body of a rule for ``p`` mentions ``q``.  Edges carry a flag
for whether the *consuming* rule aggregates (its head has an aggregate
spec), which is what the stratification check needs: aggregation is only
allowed inside a strongly connected component when the component is the
single directly-recursive predicate of the supported class -- anything
else is aggregation through mutual recursion, which has no stratified
semantics (FlowLog-style plan analysis makes the same distinction).

Everything here is deterministic: iteration follows program order, SCCs
come out in reverse topological (bottom-up) order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.ast import Program, Rule


@dataclass
class DependencyGraph:
    """Predicate-level dependency structure of one program."""

    #: every predicate, program order (heads first, then EDB references)
    predicates: list[str] = field(default_factory=list)
    #: ``p -> [q, ...]``: q appears in a body of a rule for p (deduped)
    edges: dict[str, list[str]] = field(default_factory=dict)
    #: predicates whose rules aggregate over ``q``: ``q in agg_consumers[p]``
    #: means a rule for ``p`` with an aggregate head mentions ``q``
    agg_edges: dict[str, list[str]] = field(default_factory=dict)
    #: rules grouped by head predicate, program order
    rules_by_head: dict[str, list["Rule"]] = field(default_factory=dict)

    def defined(self) -> list[str]:
        """Predicates with at least one rule (the IDB)."""
        return list(self.rules_by_head)

    def edb(self) -> list[str]:
        """Predicates referenced but never defined (the EDB)."""
        return [p for p in self.predicates if p not in self.rules_by_head]


def build_graph(program: "Program") -> DependencyGraph:
    """Build the predicate dependency graph of a parsed program."""
    graph = DependencyGraph()

    def note(predicate: str) -> None:
        if predicate not in graph.edges:
            graph.predicates.append(predicate)
            graph.edges[predicate] = []
            graph.agg_edges[predicate] = []

    for rule in program.rules:
        head = rule.head.name
        note(head)
        graph.rules_by_head.setdefault(head, []).append(rule)
        aggregated = rule.head.aggregate is not None
        for body in rule.bodies:
            for atom in body.predicate_atoms():
                note(atom.name)
                if atom.name not in graph.edges[head]:
                    graph.edges[head].append(atom.name)
                if aggregated and atom.name not in graph.agg_edges[head]:
                    graph.agg_edges[head].append(atom.name)
    return graph


def strongly_connected_components(graph: DependencyGraph) -> list[list[str]]:
    """Tarjan's algorithm, iterative; components in bottom-up order.

    "Bottom-up" means a component only depends on components listed
    before it (reverse topological order of the condensation), which is
    exactly evaluation-stratum order.
    """
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    for root in graph.predicates:
        if root in index_of:
            continue
        # iterative Tarjan: (node, iterator position) work stack
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            recurse = False
            successors = graph.edges.get(node, [])
            for position in range(child_index, len(successors)):
                successor = successors[position]
                if successor not in index_of:
                    work.append((node, position + 1))
                    work.append((successor, 0))
                    recurse = True
                    break
                if on_stack.get(successor):
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if recurse:
                continue
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                component.reverse()
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def recursive_components(graph: DependencyGraph) -> list[list[str]]:
    """SCCs that actually contain a cycle (size > 1, or a self-loop)."""
    recursive: list[list[str]] = []
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            recursive.append(component)
        else:
            node = component[0]
            if node in graph.edges.get(node, []):
                recursive.append(component)
    return recursive


def strata(graph: DependencyGraph) -> list[list[str]]:
    """Evaluation strata: each stratum only depends on earlier ones.

    Stratum 0 is the EDB plus any predicate with no dependencies; each
    SCC lands in the stratum after the deepest component it reads from.
    """
    components = strongly_connected_components(graph)
    component_of: dict[str, int] = {}
    for index, component in enumerate(components):
        for member in component:
            component_of[member] = index
    depth: dict[int, int] = {}
    for index, component in enumerate(components):
        deepest = 0
        for member in component:
            for successor in graph.edges.get(member, []):
                target = component_of[successor]
                if target != index:
                    deepest = max(deepest, depth[target] + 1)
        depth[index] = deepest
    grouped: dict[int, list[str]] = {}
    for index, component in enumerate(components):
        grouped.setdefault(depth[index], []).extend(component)
    return [grouped[level] for level in sorted(grouped)]


def reachable_from(graph: DependencyGraph, start: str) -> set[str]:
    """Predicates reachable from ``start`` along dependency edges."""
    seen: set[str] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.edges.get(node, []))
    return seen
