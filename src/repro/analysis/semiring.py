"""Semiring classification of a program: RA340/RA341/RA342.

A program's ``G`` aggregate declares which semiring ``⊕`` it folds
(tropical/arctic/counting/boolean/Viterbi/k-tropical), but the ``⊗`` is
implicit in the shape of ``F'``: a shift body ``dx + w`` is the
tropical/arctic ``⊗``, a scale body ``v * p`` is the counting/Viterbi
``⊗``, and an identity body ``ry = rx`` multiplies by ``1̄`` and is
compatible with any ``⊗``.  This pass combines the aggregate's declared
algebra with the Theorem-1 pre-screen's per-body pattern match to name
the semiring the *program* evaluates over, and flags the two ways the
classification can fail:

* **RA341** -- the aggregate's binary operator is not the ``⊕`` of any
  semiring at all (``mean``: associativity already fails, and there is
  no inverse), so none of the semiring-conditioned machinery (MRA
  deltas, async certificates, incremental repair) applies;
* **RA342** -- the aggregate has a declared semiring but some recursive
  body's ``F'`` matched no pattern, so its compatibility with the
  declared ``⊗`` (the ``⊗``-monotonicity / distributivity obligation of
  Theorem 1) is not discharged structurally and falls to the full
  condition checker.

The happy path emits **RA340** with the classified semiring and its law
summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.analysis.diagnostics import Diagnostic, info, warning
from repro.analysis.prescreen import PreScreenVerdict, prescreen

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.analyzer import ProgramAnalysis

#: pre-screen pattern -> which semiring operation the body exercises
PATTERN_TIMES = {
    "identity": "1̄",
    "shift": "⊗ = +",
    "scale-nonneg": "⊗ = ×",
    "linear-homogeneous": "⊗ = ×",
}

#: (declared ⊕-semiring, non-identity pattern) refinements: a ``max``
#: fold over a scale body is the Viterbi algebra, not the arctic one.
_REFINEMENTS = {
    ("arctic", "scale-nonneg"): "viterbi",
}


@dataclass(frozen=True)
class SemiringVerdict:
    """Outcome of the semiring classification for one program."""

    #: classified program semiring name; ``None`` when the aggregate is
    #: not a semiring ``⊕`` (RA341)
    semiring: Optional[str]
    #: RA340 | RA341 | RA342
    code: str
    aggregate: str
    #: compact declared-law summary, e.g. ``"⊕-idem,ordered,⊗-mono"``
    laws: str
    #: per-recursive-body ``⊗`` usage (``None`` where unrecognised)
    times: tuple[Optional[str], ...]
    detail: str
    #: full law-flag dict of the declared semiring (``None`` for RA341)
    flags: Optional[dict[str, Any]] = None

    @property
    def classified(self) -> bool:
        return self.code == "RA340"

    def to_dict(self) -> dict[str, Any]:
        return {
            "semiring": self.semiring,
            "code": self.code,
            "aggregate": self.aggregate,
            "laws": self.laws,
            "times": list(self.times),
            "detail": self.detail,
            "flags": self.flags,
        }

    def diagnostic(self) -> Diagnostic:
        if self.code == "RA340":
            return info(self.code, self.detail)
        return warning(self.code, self.detail)


def classify_semiring(
    analysis: "ProgramAnalysis",
    verdict: Optional[PreScreenVerdict] = None,
) -> SemiringVerdict:
    """Classify the semiring an analysed program evaluates over.

    ``verdict`` lets the pipeline reuse its Theorem-1 pre-screen result
    instead of re-matching every body.
    """
    aggregate = analysis.aggregate
    declared = aggregate.semiring
    if declared is None:
        return SemiringVerdict(
            semiring=None,
            code="RA341",
            aggregate=aggregate.name,
            laws="-",
            times=tuple(None for _ in analysis.recursions),
            detail=(
                f"aggregate {aggregate.name!r} is not the ⊕ of any semiring "
                "(associativity fails and ⊕ has no identity/inverse), so no "
                "semiring-conditioned evaluation mode applies"
            ),
        )
    if verdict is None:
        verdict = prescreen(analysis)
    times = tuple(
        PATTERN_TIMES.get(pattern) if pattern is not None else None
        for pattern in verdict.patterns
    )
    laws = declared.law_summary()
    if any(t is None for t in times):
        return SemiringVerdict(
            semiring=declared.name,
            code="RA342",
            aggregate=aggregate.name,
            laws=laws,
            times=times,
            detail=(
                f"⊕ folds the {declared.name} semiring [{laws}] but at least "
                "one recursive body's F' matched no structural pattern; its "
                "⊗-compatibility obligation falls to the full condition "
                "checker"
            ),
            flags=declared.to_dict(),
        )
    refined = declared.name
    non_identity = [p for p in verdict.patterns if p != "identity"]
    for pattern in non_identity:
        refined = _REFINEMENTS.get((declared.name, pattern), refined)
    shape = "+".join(dict.fromkeys(t for t in times)) if times else "constant"
    return SemiringVerdict(
        semiring=refined,
        code="RA340",
        aggregate=aggregate.name,
        laws=laws,
        times=times,
        detail=(
            f"program evaluates over the {refined} semiring [{laws}]: "
            f"⊕ = {aggregate.name}, bodies use {shape}"
        ),
        flags=declared.to_dict(),
    )
