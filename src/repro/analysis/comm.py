"""Sharding / communication-shape analysis: RA401.

Two granularities:

* **static** (:func:`communication_shape`): per recursive body, compare
  the source keys of the recursive atom with the head keys.  When they
  coincide positionally, every update stays on the worker that owns the
  key -- the join is co-partitionable and the rule runs without
  cross-worker messages (the CC/pagerank self-contribution pattern).
  Otherwise every edge may cross workers.

* **plan-level** (:func:`estimate_plan_communication`): with a compiled
  plan in hand, count *exactly* how many dependency edges have source
  and destination owned by different workers under the engines' own
  :class:`~repro.distributed.partition.HashPartitioner` -- the number
  the distributed runtimes will actually ship per full wavefront.

:func:`record_comm_metrics` surfaces the plan-level numbers as
``repro.obs`` gauges so ``repro metrics`` can report them next to the
runtime message counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, info

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.analyzer import ProgramAnalysis
    from repro.engine.plan import CompiledPlan
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class BodyCommShape:
    """Static communication shape of one recursive body."""

    body: int
    source_keys: tuple[str, ...]
    dest_keys: tuple[str, ...]
    co_partitionable: bool
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "body": self.body,
            "source_keys": list(self.source_keys),
            "dest_keys": list(self.dest_keys),
            "co_partitionable": self.co_partitionable,
            "detail": self.detail,
        }


def communication_shape(analysis: "ProgramAnalysis") -> list[BodyCommShape]:
    """Static per-body co-partitionability of the recursive rule."""
    shapes: list[BodyCommShape] = []
    dest = tuple(analysis.key_vars)
    for index, spec in enumerate(analysis.recursions):
        source = tuple(spec.source_keys)
        co_partitionable = source == dest
        if co_partitionable:
            detail = (
                f"source keys {source} equal head keys {dest}: updates stay "
                "on the owning worker"
            )
        else:
            detail = (
                f"source keys {source} differ from head keys {dest}: edges "
                "may cross workers"
            )
        shapes.append(
            BodyCommShape(
                body=index,
                source_keys=source,
                dest_keys=dest,
                co_partitionable=co_partitionable,
                detail=detail,
            )
        )
    return shapes


@dataclass(frozen=True)
class PlanCommEstimate:
    """Exact cross-worker edge census of one compiled plan."""

    workers: int
    total_edges: int
    cross_edges: int
    #: messages worker w would send per full wavefront
    per_worker_out: tuple[int, ...]

    @property
    def cross_fraction(self) -> float:
        if self.total_edges == 0:
            return 0.0
        return self.cross_edges / self.total_edges

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "total_edges": self.total_edges,
            "cross_edges": self.cross_edges,
            "cross_fraction": self.cross_fraction,
            "per_worker_out": list(self.per_worker_out),
        }


def estimate_plan_communication(
    plan: "CompiledPlan", num_workers: int
) -> PlanCommEstimate:
    """Count cross-worker dependency edges under the engines' partitioner."""
    from repro.distributed.partition import HashPartitioner

    partitioner = HashPartitioner(num_workers)
    total = 0
    cross = 0
    per_worker = [0] * num_workers
    for src, edges in plan.out_edges.items():
        src_owner = partitioner.owner(src)
        for dst, _params, _fn in edges:
            total += 1
            if partitioner.owner(dst) != src_owner:
                cross += 1
                per_worker[src_owner] += 1
    return PlanCommEstimate(
        workers=num_workers,
        total_edges=total,
        cross_edges=cross,
        per_worker_out=tuple(per_worker),
    )


def comm_diagnostics(
    analysis: "ProgramAnalysis",
    estimate: Optional[PlanCommEstimate] = None,
) -> list[Diagnostic]:
    """INFO-level RA401 diagnostics summarising the shape analysis."""
    diagnostics: list[Diagnostic] = []
    for shape in communication_shape(analysis):
        diagnostics.append(
            info("RA401", f"body {shape.body}: {shape.detail}")
        )
    if estimate is not None:
        diagnostics.append(
            info(
                "RA401",
                f"compiled plan ships {estimate.cross_edges} of "
                f"{estimate.total_edges} edges cross-worker "
                f"({estimate.cross_fraction:.1%}) at "
                f"{estimate.workers} workers",
            )
        )
    return diagnostics


def record_comm_metrics(
    metrics: "MetricsRegistry", plan: "CompiledPlan", num_workers: int
) -> PlanCommEstimate:
    """Publish the plan's communication shape as observability gauges."""
    estimate = estimate_plan_communication(plan, num_workers)
    metrics.gauge("comm_edges_total", float(estimate.total_edges))
    metrics.gauge("comm_edges_cross_worker", float(estimate.cross_edges))
    metrics.gauge("comm_cross_fraction", estimate.cross_fraction)
    for worker, count in enumerate(estimate.per_worker_out):
        metrics.gauge("comm_out_messages", float(count), worker=worker)
    return estimate
