"""Program-class structure pass: RA101..RA112.

Checks that a parsed program falls inside the supported class of the
paper (section 2.1, footnote 2): *direct, linear* recursion -- exactly
one recursive rule, each of whose bodies mentions the head predicate at
most once -- with an aggregate as the last head argument.

This pass is the single source of truth for those constraints:
:func:`repro.datalog.analyzer.analyze` delegates to it (raising
:class:`~repro.datalog.errors.AnalysisError` on the first error
diagnostic) and ``repro lint`` reports every finding at once.

Unlike the historical ad-hoc check, recursion detection here is
SCC-based (Tarjan over the predicate dependency graph), so mutual
recursion with *no* self-loop -- ``p :- q.  q :- p.`` -- is correctly
reported as mutual recursion (RA102) and, when an aggregate sits on the
cycle, as unstratifiable aggregation (RA110), rather than the
misleading "no recursive rule".
"""

from __future__ import annotations

from typing import Optional

from repro.datalog.ast import (
    IterationNext,
    PredicateAtom,
    Program,
    Rule,
    Variable,
    Wildcard,
)
from repro.analysis.depgraph import build_graph, recursive_components
from repro.analysis.diagnostics import Diagnostic, error

_SUPPORTED_ASSUME_OPS = ("<", "<=", ">", ">=", "=")


def _span_kwargs(rule: Optional[Rule]) -> dict:
    if rule is not None and rule.span is not None:
        return {"line": rule.span.line, "column": rule.span.column}
    return {}


def check_structure(program: Program) -> tuple[list[Diagnostic], Optional[Rule]]:
    """Check the program-class constraints; return (diagnostics, recursive rule).

    The returned rule is the unique directly-recursive rule when one
    exists (even if later checks produced errors), else ``None``.
    """
    diagnostics: list[Diagnostic] = []
    graph = build_graph(program)

    # -- recursion shape (RA101/RA102/RA103/RA110) ------------------------
    components = recursive_components(graph)
    direct = [rule for rule in program.rules if rule.is_recursive()]

    for component in components:
        if len(component) > 1:
            aggregating = sorted(
                head
                for head in component
                for rule in graph.rules_by_head.get(head, [])
                if rule.head.aggregate is not None
                and any(dep in component for dep in graph.agg_edges.get(head, []))
            )
            first_rule = graph.rules_by_head[component[0]][0]
            diagnostics.append(
                error(
                    "RA102",
                    "mutual/multiple recursion is not supported "
                    f"(predicates {component} form a recursive component)",
                    hint="merge the cycle into a single directly recursive rule",
                    **_span_kwargs(first_rule),
                )
            )
            if aggregating:
                diagnostics.append(
                    error(
                        "RA110",
                        f"unstratifiable aggregation: {aggregating} aggregate "
                        f"over the recursive component {component}",
                        hint="aggregates may only consume their own predicate "
                        "in a directly recursive rule",
                        **_span_kwargs(first_rule),
                    )
                )

    if not components and not direct:
        diagnostics.append(
            error(
                "RA101",
                "program has no recursive rule",
                hint="the engines evaluate recursive aggregate programs; "
                "add a rule whose body mentions its own head predicate",
            )
        )
        return diagnostics, None

    if len(direct) > 1:
        names = [rule.head.name for rule in direct]
        diagnostics.append(
            error(
                "RA102",
                f"mutual/multiple recursion is not supported (recursive rules for {names})",
                **_span_kwargs(direct[1]),
            )
        )

    if len(direct) != 1:
        return diagnostics, None
    rule = direct[0]
    head = rule.head.name

    # direct recursion only: no *other* rule may mention the recursive
    # predicate, or recursion becomes mutual/indirect (RA103)
    for other in program.rules:
        if other is rule:
            continue
        if any(body.mentions(head) for body in other.bodies):
            diagnostics.append(
                error(
                    "RA103",
                    f"indirect/mutual recursion: rule for {other.head.name!r} "
                    f"depends on the recursive predicate {head!r}",
                    **_span_kwargs(other),
                )
            )

    # -- head shape (RA105/RA106/RA107/RA108) -----------------------------
    agg_spec = rule.head.aggregate
    if agg_spec is None:
        diagnostics.append(
            error(
                "RA105",
                f"recursive rule for {head!r} has no aggregate in its head",
                hint="write the value position as e.g. min[v] or sum[v]",
                **_span_kwargs(rule),
            )
        )
    elif rule.head.terms[-1] is not agg_spec:
        diagnostics.append(
            error(
                "RA106",
                "the aggregate must be the last head argument",
                **_span_kwargs(rule),
            )
        )

    iterated, iter_var = False, None
    for position, term in enumerate(rule.head.terms):
        if isinstance(term, IterationNext):
            if position != 0:
                diagnostics.append(
                    error(
                        "RA107",
                        "iteration index must be the first argument",
                        **_span_kwargs(rule),
                    )
                )
            else:
                iterated, iter_var = True, term.name

    head_terms = rule.head.terms[1:] if iterated else rule.head.terms
    for term in head_terms[:-1]:
        if isinstance(term, (Variable, IterationNext)):
            continue
        if term is agg_spec:
            continue  # already reported as RA106
        diagnostics.append(
            error(
                "RA108",
                f"head key positions must be variables, found {term!r}",
                **_span_kwargs(rule),
            )
        )

    # -- recursive bodies (RA104/RA107/RA108/RA109) -----------------------
    for body in rule.bodies:
        r_atoms = [a for a in body.predicate_atoms() if a.name == head]
        if not r_atoms:
            continue  # a constant body: contributes to C, nothing to check
        if len(r_atoms) > 1:
            diagnostics.append(
                error(
                    "RA104",
                    f"non-linear recursion: body mentions {head!r} {len(r_atoms)} times",
                    hint="the supported class is linear recursion: at most one "
                    "occurrence of the head predicate per body",
                    **_span_kwargs(rule),
                )
            )
            continue
        diagnostics.extend(_check_recursive_atom(rule, r_atoms[0], iterated, iter_var))

    # -- termination clauses (RA111) --------------------------------------
    termination_count = sum(
        len(body.termination_atoms()) for body in rule.bodies
    )
    if termination_count > 1:
        diagnostics.append(
            error(
                "RA111",
                "multiple termination clauses",
                hint="keep a single {sum[delta] < eps} clause",
                **_span_kwargs(rule),
            )
        )

    # -- assume declarations (RA112) --------------------------------------
    for decl in program.assumptions:
        if decl.op not in _SUPPORTED_ASSUME_OPS:
            kwargs = {}
            if decl.span is not None:
                kwargs = {"line": decl.span.line, "column": decl.span.column}
            diagnostics.append(
                error(
                    "RA112",
                    f"unsupported assume operator {decl.op!r}",
                    **kwargs,
                )
            )

    return diagnostics, rule


def _check_recursive_atom(
    rule: Rule,
    r_atom: PredicateAtom,
    iterated: bool,
    iter_var: Optional[str],
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    terms = list(r_atom.terms)
    if iterated:
        if terms and isinstance(terms[0], Variable) and terms[0].name == iter_var:
            terms = terms[1:]
        else:
            diagnostics.append(
                error(
                    "RA107",
                    f"recursive atom must use iteration index {iter_var!r} "
                    "as first argument",
                    **_span_kwargs(rule),
                )
            )
            terms = terms[1:]
    if not terms:
        diagnostics.append(
            error(
                "RA109",
                f"recursive atom {r_atom!r} has no value position",
                **_span_kwargs(rule),
            )
        )
        return diagnostics
    value_term = terms[-1]
    if not isinstance(value_term, Variable):
        diagnostics.append(
            error(
                "RA109",
                f"value position of {r_atom!r} must be a variable, "
                f"found {value_term!r}",
                **_span_kwargs(rule),
            )
        )
    for term in terms[:-1]:
        if isinstance(term, (Variable, Wildcard)):
            continue
        diagnostics.append(
            error(
                "RA108",
                f"key positions of {r_atom!r} must be variables, found {term!r}",
                **_span_kwargs(rule),
            )
        )
    return diagnostics
