"""Sparse-frontier applicability classification: RA330/RA331.

The ``sparse`` vertex runtime (:mod:`repro.runtime.sparse_kernel`) has
two scheduling modes and this pass derives, statically, which one a
program may use:

* ``delta-stepping`` (RA330): selective, idempotent aggregates
  (min/max) whose every recursive body passed the Theorem-1 structural
  pre-screen.  Bucketed (Meyer--Sanders style) value scheduling is
  exact for these programs because the fold is order-insensitive and
  idempotent: a pending value parked in a later bucket can only be
  *improved* by work drained from earlier buckets, and re-relaxing a
  key is harmless, so lazy bucket deletion never changes the fixpoint.

* ``compaction-only`` (RA331): everything else.  Frontier compaction
  (batching ``G ∘ F'`` over the packed pending set) is always exact --
  it changes how the frontier is *stored*, not which contributions
  fold -- but value-bucketed scheduling is not: additive aggregates
  accumulate every contribution, so draining buckets out of arrival
  order would observe partial sums, and non-monotone programs lack the
  improvement invariant the bucket ordering rests on.  Requesting
  delta-stepping for such a program is refused at the engine layer;
  this diagnostic is the static warning ahead of that refusal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.aggregates import AggregateKind
from repro.analysis.prescreen import prescreen

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.analyzer import ProgramAnalysis

#: scheduling modes, most capable first
MODES = ("delta-stepping", "compaction-only")

#: mode -> diagnostic code (stable, pinned by the golden tests)
MODE_CODES = {
    "delta-stepping": "RA330",
    "compaction-only": "RA331",
}


@dataclass(frozen=True)
class FrontierVerdict:
    """Static verdict on the sparse backend's scheduling options."""

    #: ``"delta-stepping"`` | ``"compaction-only"``
    mode: str
    detail: str
    aggregate: str

    @property
    def code(self) -> str:
        return MODE_CODES[self.mode]

    @property
    def delta_stepping(self) -> bool:
        return self.mode == "delta-stepping"

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "code": self.code,
            "delta_stepping": self.delta_stepping,
            "aggregate": self.aggregate,
            "detail": self.detail,
        }


def classify_frontier(analysis: "ProgramAnalysis") -> FrontierVerdict:
    """Classify an analysed program for the sparse vertex runtime.

    Restated as semiring-law obligations: delta-stepping needs an
    idempotent ``⊕`` over a natural order (re-relaxation is harmless and
    parked entries only improve) *and* a numeric carrier (bucket
    priorities are float values).
    """
    aggregate = analysis.aggregate
    name = aggregate.name

    if aggregate.kind is not AggregateKind.SELECTIVE or not aggregate.plus_idempotent:
        return FrontierVerdict(
            mode="compaction-only",
            aggregate=name,
            detail=(
                f"aggregate {name!r} lacks an idempotent ⊕ over a natural "
                "order; value buckets would reorder non-idempotent folds, so "
                "the sparse backend uses frontier compaction without "
                "delta-stepping"
            ),
        )
    if not aggregate.numeric_values:
        return FrontierVerdict(
            mode="compaction-only",
            aggregate=name,
            detail=(
                f"aggregate {name!r} folds a non-numeric semiring carrier; "
                "Meyer-Sanders buckets key on float priorities, so only "
                "frontier compaction applies"
            ),
        )
    verdict = prescreen(analysis)
    if not verdict.eligible:
        return FrontierVerdict(
            mode="compaction-only",
            aggregate=name,
            detail=(
                "Theorem-1 pre-screen did not certify every recursive "
                "body as monotone; bucket ordering is unproven "
                f"({verdict.detail})"
            ),
        )
    return FrontierVerdict(
        mode="delta-stepping",
        aggregate=name,
        detail=(
            f"selective idempotent aggregate {name!r} with monotone F' "
            f"({verdict.pattern}): bucketed value scheduling with lazy "
            "deletion reaches the identical fixpoint"
        ),
    )
