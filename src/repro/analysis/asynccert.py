"""Theorem-3 async-eligibility certification: RA310/RA311.

Theorem 3 of the paper guarantees that asynchronous evaluation converges
to the same fixpoint as synchronous evaluation *provided* the program
satisfies the MRA conditions of Theorem 1.  The asynchronous engines
(:class:`~repro.distributed.async_engine.AsyncEngine` and its unified /
AAP subclasses) therefore refuse to run a program without a certificate:
an uncertified program would silently compute wrong answers under
message reordering.

In semiring terms the certificate discharges two law obligations: the
aggregate's ``⊕`` must be the commutative-associative fold of a declared
semiring (Property 1 -- reordered deliveries fold to the same value),
and every recursive body's ``F'`` must act as a monotone/distributive
``⊗`` (Property 2 -- applying ``F'`` to a partially-folded value cannot
overshoot the fixpoint).  ``mean`` fails the first obligation (it is not
a semiring ``⊕`` at all), which is why mean programs are never certified.

Certification is cheap and proof-only:

1. the Theorem-1 pre-screen (:mod:`repro.analysis.prescreen`) -- pure
   pattern matching, certifies the common shapes instantly;
2. the structural prover of :mod:`repro.checker.prover` on the residue.

The refuter is deliberately *not* consulted: a certificate must be a
proof, and "random testing found no counterexample" is not one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, info, warning
from repro.analysis.prescreen import prescreen

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.analyzer import ProgramAnalysis


@dataclass(frozen=True)
class AsyncCertificate:
    """Verdict of the Theorem-3 eligibility check for one program."""

    program: str
    eligible: bool
    #: how the certificate was obtained: ``prescreen(<pattern>)`` or
    #: ``structural-prover``; empty when refused
    method: str
    detail: str
    diagnostic: Diagnostic

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "eligible": self.eligible,
            "method": self.method,
            "detail": self.detail,
            "diagnostic": self.diagnostic.to_dict(),
        }


class AsyncIneligibleError(Exception):
    """Raised when an async engine is pointed at an uncertified program.

    Carries the RA310 :class:`~repro.analysis.diagnostics.Diagnostic`
    so callers (the CLI in particular) can render the refusal as a
    diagnostic instead of a stack trace.
    """

    def __init__(self, certificate: AsyncCertificate):
        super().__init__(certificate.diagnostic.render())
        self.certificate = certificate
        self.diagnostic = certificate.diagnostic


def certify_async(analysis: "ProgramAnalysis") -> AsyncCertificate:
    """Try to certify a program for asynchronous execution (Theorem 3)."""
    name = analysis.program.name

    verdict = prescreen(analysis)
    if verdict.eligible:
        method = f"prescreen({verdict.pattern})"
        detail = (
            "Theorem-1 pre-screen certifies the MRA conditions "
            f"({verdict.detail}); Theorem 3 then guarantees async "
            "convergence"
        )
        return AsyncCertificate(
            program=name,
            eligible=True,
            method=method,
            detail=detail,
            diagnostic=info("RA311", f"{name}: async certified via {method}"),
        )

    # residue: run the structural prover only (no refuter -- proofs only)
    from repro.checker.prover import prove_property1, prove_property2

    property1 = prove_property1(analysis.aggregate)
    if property1 is None:
        return _refused(
            name,
            f"aggregate {analysis.aggregate.name!r} is not provably "
            "commutative and associative (Property 1)",
        )
    for spec in analysis.recursions:
        result = prove_property2(
            analysis.aggregate, spec.fprime, spec.recursion_var, analysis.domains
        )
        if result is None:
            return _refused(
                name,
                f"Property 2 not provable for F' = {spec.fprime!r} over "
                f"{spec.recursion_var!r}",
            )
    return AsyncCertificate(
        program=name,
        eligible=True,
        method="structural-prover",
        detail=(
            "structural prover established Properties 1 and 2; Theorem 3 "
            "then guarantees async convergence"
        ),
        diagnostic=info(
            "RA311", f"{name}: async certified via structural-prover"
        ),
    )


def _refused(name: str, reason: str) -> AsyncCertificate:
    diagnostic = warning(
        "RA310",
        f"{name}: not certified for asynchronous execution: {reason}",
        hint="run on the synchronous engine, or rewrite F' into a "
        "provably MRA-eligible shape (see DESIGN.md, 'Static analysis')",
    )
    return AsyncCertificate(
        program=name,
        eligible=False,
        method="",
        detail=reason,
        diagnostic=diagnostic,
    )


def require_async_certified(analysis: "ProgramAnalysis") -> AsyncCertificate:
    """Certify or raise :class:`AsyncIneligibleError` (for the engines)."""
    certificate = certify_async(analysis)
    if not certificate.eligible:
        raise AsyncIneligibleError(certificate)
    return certificate
