"""Classic lints: RA201..RA204.

These are the hygiene checks every Datalog front end grows eventually:
unbound head variables (an error -- the rule cannot be evaluated),
predicates that feed nothing, structurally duplicate rules, and
variables mentioned exactly once (usually a typo for ``_``).

The binding model matches the runtime of :mod:`repro.engine.rules`:
a variable is bound by appearing in a predicate atom, by an ``assume``
declaration (program parameters), or by a definition ``v = expr`` whose
right-hand side is already fully bound (computed to fixpoint, in any
order, as the runtime defers comparisons until their inputs exist).
"""

from __future__ import annotations

from typing import Optional

from repro.datalog.ast import (
    AggregateSpec,
    Program,
    Rule,
    RuleBody,
    Variable,
)
from repro.analysis.depgraph import build_graph, reachable_from
from repro.analysis.diagnostics import Diagnostic, error, warning
from repro.expr import Var


def _span_kwargs(rule: Rule) -> dict:
    if rule.span is not None:
        return {"line": rule.span.line, "column": rule.span.column}
    return {}


def _bound_variables(body: RuleBody, assumed: frozenset[str]) -> set[str]:
    """Fixpoint of the binding rules for one body."""
    bound: set[str] = set(assumed)
    for atom in body.predicate_atoms():
        bound.update(atom.variables())
    changed = True
    while changed:
        changed = False
        for comparison in body.comparison_atoms():
            if comparison.op != "=" or not isinstance(comparison.left, Var):
                continue
            name = comparison.left.name
            if name in bound:
                continue
            if comparison.right.free_vars() <= bound:
                bound.add(name)
                changed = True
    return bound


def _head_variables(rule: Rule) -> list[str]:
    names: list[str] = []
    for term in rule.head.terms:
        if isinstance(term, Variable):
            names.append(term.name)
        elif isinstance(term, AggregateSpec):
            names.append(term.variable)
    return names


def lint_unbound_head_variables(program: Program) -> list[Diagnostic]:
    """RA201: every head variable must be bound in every body."""
    diagnostics: list[Diagnostic] = []
    assumed = frozenset(decl.variable for decl in program.assumptions)
    for rule in program.rules:
        head_vars = _head_variables(rule)
        if not rule.bodies:
            for name in head_vars:
                diagnostics.append(
                    error(
                        "RA201",
                        f"unbound head variable {name!r}: fact rule for "
                        f"{rule.head.name!r} has no body to bind it",
                        hint="facts must use constants in every position",
                        **_span_kwargs(rule),
                    )
                )
            continue
        for index, body in enumerate(rule.bodies):
            bound = _bound_variables(body, assumed)
            for name in head_vars:
                if name not in bound:
                    diagnostics.append(
                        error(
                            "RA201",
                            f"unbound head variable {name!r} in body {index} "
                            f"of the rule for {rule.head.name!r}",
                            hint="bind it with a predicate atom or a "
                            f"definition '{name} = ...'",
                            **_span_kwargs(rule),
                        )
                    )
    return diagnostics


def lint_unused_predicates(
    program: Program, output: Optional[str]
) -> list[Diagnostic]:
    """RA202: defined predicates that the output never reads."""
    if output is None:
        return []
    graph = build_graph(program)
    live = reachable_from(graph, output)
    diagnostics: list[Diagnostic] = []
    for predicate, rules in graph.rules_by_head.items():
        if predicate in live:
            continue
        diagnostics.append(
            warning(
                "RA202",
                f"predicate {predicate!r} is defined but never used by "
                f"the output predicate {output!r}",
                hint="delete the rule or wire the predicate into the program",
                **_span_kwargs(rules[0]),
            )
        )
    return diagnostics


def lint_duplicate_rules(program: Program) -> list[Diagnostic]:
    """RA203: structurally identical rules (spans ignored)."""
    diagnostics: list[Diagnostic] = []
    seen: list[Rule] = []
    for rule in program.rules:
        if any(rule == earlier for earlier in seen):
            diagnostics.append(
                warning(
                    "RA203",
                    f"duplicate rule for {rule.head.name!r}",
                    hint="remove the repeated rule; it contributes nothing",
                    **_span_kwargs(rule),
                )
            )
        else:
            seen.append(rule)
    return diagnostics


def lint_singleton_variables(program: Program) -> list[Diagnostic]:
    """RA204: body variables used exactly once (probably a typo for ``_``)."""
    diagnostics: list[Diagnostic] = []
    for rule in program.rules:
        head_names = set(_head_variables(rule))
        for term in rule.head.terms:
            # iteration markers also tie variables to the head
            name = getattr(term, "name", None)
            if isinstance(name, str):
                head_names.add(name)
        for index, body in enumerate(rule.bodies):
            counts: dict[str, int] = {}
            for atom in body.predicate_atoms():
                for name in atom.variables():
                    counts[name] = counts.get(name, 0) + 1
                for term in atom.terms:
                    marker = getattr(term, "name", None)
                    if isinstance(marker, str) and not isinstance(term, Variable):
                        counts[marker] = counts.get(marker, 0) + 2
            for comparison in body.comparison_atoms():
                for name in comparison.left.free_vars() | comparison.right.free_vars():
                    counts[name] = counts.get(name, 0) + 1
            # the termination clause's delta variable is documentation
            # only ({sum[delta] < eps}); never flag it
            termination_vars = {
                atom.variable for atom in body.termination_atoms()
            }
            for name, count in counts.items():
                if count == 1 and name not in head_names and name not in termination_vars:
                    diagnostics.append(
                        warning(
                            "RA204",
                            f"variable {name!r} occurs only once in body "
                            f"{index} of the rule for {rule.head.name!r}",
                            hint="use '_' if the value is deliberately ignored",
                            **_span_kwargs(rule),
                        )
                    )
    return diagnostics


def run_lints(program: Program, output: Optional[str]) -> list[Diagnostic]:
    """All RA2xx lints; ``output`` is the recursive head when known."""
    diagnostics = lint_unbound_head_variables(program)
    diagnostics.extend(lint_unused_predicates(program, output))
    diagnostics.extend(lint_duplicate_rules(program))
    diagnostics.extend(lint_singleton_variables(program))
    return diagnostics
