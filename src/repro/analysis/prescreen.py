"""Theorem-1 structural pre-screen: RA301/RA302.

Certain ``F'`` shapes are *trivially* MRA-eligible -- the pre-screen
recognises them by pure syntactic pattern matching, so the condition
checker only runs the expensive machinery (rational canonical forms,
interval-based monotonicity, and on failure the 500/800-trial refuter)
on the residue.

In semiring terms the patterns discharge the ``⊗``-side obligations of
Theorem 1: Property 1 is the declaration that ``G`` folds a semiring
``⊕`` (commutative + associative), and Property 2 asks that ``F'`` acts
like multiplication by an ``x``-free element of a ``⊗`` that is
monotone over the semiring's natural order.  A shift ``x + e`` is the
tropical/arctic ``⊗``; a scale ``c * x`` is the counting/Viterbi ``⊗``;
the identity body is multiplication by ``1̄``.

The patterns, per aggregate kind:

* selective ``G`` (min/max/or/topk -- idempotent ``⊕`` over a natural
  order) -- Property 2 needs ``F'`` monotone non-decreasing in the
  recursion variable ``x``:

  - ``identity``      ``F' = x``                         (e.g. CC)
  - ``shift``         ``F' = x + e``, ``e`` x-free       (e.g. SSSP)
  - ``scale-nonneg``  ``F' = c1*...*ck*x / d1.../dm`` with each ``ci``
    syntactically non-negative and each ``di`` syntactically positive
    (a literal constant, or a variable whose ``assume`` domain proves
    the sign)                                            (e.g. Viterbi)

* additive ``G`` (sum/count -- invertible ``⊕``) -- Property 2 needs
  ``F'`` linear and homogeneous in ``x`` (``f(x+y) = f(x)+f(y)``):

  - ``identity``
  - ``linear-homogeneous``  a ``Mul``/``Div``/``Neg`` chain in which
    ``x`` occurs exactly once, as a bare numerator factor, and every
    other factor is x-free and call-free  (e.g. PageRank's
    ``0.85 * rx / deg``)

**Soundness argument** (regression-tested against the checker on every
registry program): each pattern is a strict syntactic subset of a class
the structural prover proves.  ``identity``/``shift``/``scale-nonneg``
satisfy :func:`repro.expr.is_monotone_nondecreasing` by construction
(the prover's own interval lookup sees exactly the constants and
``assume`` domains the pattern checked); ``identity``/
``linear-homogeneous`` produce a rational form ``a(params) * x`` with
zero constant part, which :func:`repro.expr.is_linear_homogeneous`
accepts (call-freeness guarantees the canonicalisation cannot raise).
Property 1 is required via the same predefined-operator metadata the
prover uses.  Hence ``eligible`` here implies ``mra_satisfiable`` from
:mod:`repro.checker` -- the pre-screen can never whitelist a program the
checker would refute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, TYPE_CHECKING

from repro.aggregates import Aggregate, AggregateKind
from repro.expr import Expr, Interval
from repro.expr.terms import Add, Call, Const, Div, Mul, Neg, Sub, Var

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.analyzer import ProgramAnalysis


@dataclass(frozen=True)
class PreScreenVerdict:
    """Outcome of the Theorem-1 pre-screen for one program."""

    eligible: bool
    #: human-readable pattern summary, e.g. ``"shift"`` or
    #: ``"identity+scale-nonneg"``; ``None`` when inconclusive
    pattern: Optional[str]
    #: per-recursive-body pattern (``None`` where no pattern matched)
    patterns: tuple[Optional[str], ...]
    aggregate: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "eligible": self.eligible,
            "pattern": self.pattern,
            "patterns": list(self.patterns),
            "aggregate": self.aggregate,
            "detail": self.detail,
        }


def _contains_call(expr: Expr) -> bool:
    if isinstance(expr, Call):
        return True
    return any(_contains_call(child) for child in expr.children())


def _const_sign(
    expr: Expr, domains: Mapping[str, Interval], *, strict: bool
) -> bool:
    """Syntactic non-negativity (or positivity when ``strict``) of a factor.

    Only literal constants and ``assume``-constrained variables qualify;
    anything compound falls through to the full prover.
    """
    if isinstance(expr, Const):
        value = float(expr.value)
        return value > 0 if strict else value >= 0
    if isinstance(expr, Var):
        domain = domains.get(expr.name)
        if domain is None:
            return False
        from repro.expr.analysis import Sign

        if strict:
            return domain.sign() is Sign.POSITIVE
        return domain.is_nonnegative()
    return False


def _scale_factors(
    expr: Expr, var: str
) -> Optional[list[tuple[str, Expr]]]:
    """Decompose ``expr`` as a ``Mul``/``Div``/``Neg`` chain around ``var``.

    Returns ``[("mul"|"div"|"neg", factor), ...]`` when ``expr`` equals
    the product of those factors applied to a single bare occurrence of
    ``var`` in numerator position; ``None`` otherwise.
    """
    if isinstance(expr, Var) and expr.name == var:
        return []
    if isinstance(expr, Neg):
        inner = _scale_factors(expr.operand, var)
        if inner is None:
            return None
        return inner + [("neg", Const(-1))]
    if isinstance(expr, Mul):
        left_has = var in expr.left.free_vars()
        right_has = var in expr.right.free_vars()
        if left_has == right_has:  # both (non-linear) or neither (no var)
            return None
        carrier, other = (
            (expr.left, expr.right) if left_has else (expr.right, expr.left)
        )
        inner = _scale_factors(carrier, var)
        if inner is None:
            return None
        return inner + [("mul", other)]
    if isinstance(expr, Div):
        if var in expr.right.free_vars():
            return None
        inner = _scale_factors(expr.left, var)
        if inner is None:
            return None
        return inner + [("div", expr.right)]
    return None


def _is_shift(expr: Expr, var: str, sign: int = +1) -> bool:
    """Match ``expr == var + e`` (Add/Sub/Neg chain, ``e`` x-free)."""
    if isinstance(expr, Var) and expr.name == var:
        return sign > 0
    if isinstance(expr, Add):
        left_has = var in expr.left.free_vars()
        right_has = var in expr.right.free_vars()
        if left_has and right_has:
            return False
        carrier = expr.left if left_has else expr.right
        return _is_shift(carrier, var, sign)
    if isinstance(expr, Sub):
        left_has = var in expr.left.free_vars()
        right_has = var in expr.right.free_vars()
        if left_has and right_has:
            return False
        if left_has:
            return _is_shift(expr.left, var, sign)
        return _is_shift(expr.right, var, -sign)
    if isinstance(expr, Neg):
        return _is_shift(expr.operand, var, -sign)
    return False


def match_pattern(
    aggregate: Aggregate,
    fprime: Expr,
    var: str,
    domains: Mapping[str, Interval],
) -> Optional[str]:
    """Name of the matched trivially-eligible pattern, or ``None``."""
    if var not in fprime.free_vars():
        return None
    if isinstance(fprime, Var) and fprime.name == var:
        return "identity"
    if aggregate.kind is AggregateKind.SELECTIVE:
        if _is_shift(fprime, var):
            return "shift"
        factors = _scale_factors(fprime, var)
        if factors is not None and not _contains_call(fprime):
            ok = all(
                _const_sign(factor, domains, strict=(role == "div"))
                for role, factor in factors
                if role != "neg"
            ) and not any(role == "neg" for role, _ in factors)
            if ok:
                return "scale-nonneg"
        return None
    if aggregate.kind is AggregateKind.ADDITIVE:
        factors = _scale_factors(fprime, var)
        if factors is not None and not _contains_call(fprime):
            return "linear-homogeneous"
        return None
    return None


def prescreen(analysis: "ProgramAnalysis") -> PreScreenVerdict:
    """Run the Theorem-1 pre-screen on an analysed program.

    ``eligible=True`` means: Property 1 holds by predefined-operator
    metadata AND every recursive body's ``F'`` matches a trivially
    eligible pattern.  The checker may then skip the prover/refuter.
    """
    aggregate = analysis.aggregate
    if not (aggregate.is_commutative and aggregate.is_associative):
        return PreScreenVerdict(
            eligible=False,
            pattern=None,
            patterns=tuple(None for _ in analysis.recursions),
            aggregate=aggregate.name,
            detail=(
                f"aggregate {aggregate.name!r} is not a predefined "
                "commutative-associative operator (Property 1 fails)"
            ),
        )
    patterns = tuple(
        match_pattern(
            aggregate, spec.fprime, spec.recursion_var, analysis.domains
        )
        for spec in analysis.recursions
    )
    if all(pattern is not None for pattern in patterns):
        unique: list[str] = []
        for pattern in patterns:
            if pattern not in unique:
                unique.append(pattern)  # type: ignore[arg-type]
        summary = "+".join(unique)
        return PreScreenVerdict(
            eligible=True,
            pattern=summary,
            patterns=patterns,
            aggregate=aggregate.name,
            detail=(
                f"every recursive body matches a trivially eligible shape "
                f"({summary}) for {aggregate.kind.value} aggregate "
                f"{aggregate.name!r}"
            ),
        )
    return PreScreenVerdict(
        eligible=False,
        pattern=None,
        patterns=patterns,
        aggregate=aggregate.name,
        detail=(
            "no trivially eligible shape for at least one recursive body; "
            "deferring to the full condition checker"
        ),
    )
