"""Incremental-maintainability classification: RA320/RA321/RA322.

The delta subsystem (:mod:`repro.delta`) repairs a prior fixpoint
instead of recomputing it -- but only where that is provably exact.
This pass derives the static verdict from facts the earlier passes
already established:

* ``full`` (RA320): aggregates whose semiring ``⊕`` is idempotent over
  a natural order (min/max/or/best/topk) and whose every recursive body
  passed the Theorem-1 structural pre-screen, with plain fixpoint
  termination and no iteration index.  Pure growth takes the frontier
  fast path; deletions take bounded re-derivation -- exact precisely
  because ``x ⊕ x = x`` lets the repair re-fold surviving contributions
  without double counting.

* ``insert-only`` (RA321): aggregates with an invertible ``⊕``
  (sum/count) and a linear-homogeneous ``F'`` -- added contributions
  fold in exactly, but retracting one would require applying ``⊕``'s
  inverse to *derived* mass along every propagation path, which the
  MonoTable does not track per-derivation.  Deletions and weight
  updates fall back to full recomputation.

* ``none`` (RA322): everything else.  Iterated (replacement-semantics)
  programs rebuild each stratum from the previous one, so there is no
  standing fixpoint to repair; epsilon-terminated programs stop short
  of the true fixpoint, so a repair continued from the prior stop point
  would not be bit-equal to a from-scratch run; pre-screen-inconclusive
  and non-monotone programs lack the Theorem-1 certificate the repair's
  exactness argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.aggregates import AggregateKind
from repro.analysis.prescreen import prescreen

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datalog.analyzer import ProgramAnalysis

#: verdict modes, most capable first
MODES = ("full", "insert-only", "none")

#: mode -> diagnostic code (stable, pinned by the golden tests)
MODE_CODES = {
    "full": "RA320",
    "insert-only": "RA321",
    "none": "RA322",
}


@dataclass(frozen=True)
class IncrementalVerdict:
    """Static verdict on how a program's fixpoint may be maintained."""

    #: ``"full"`` | ``"insert-only"`` | ``"none"``
    mode: str
    detail: str
    aggregate: str

    @property
    def code(self) -> str:
        return MODE_CODES[self.mode]

    @property
    def maintainable(self) -> bool:
        return self.mode != "none"

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "code": self.code,
            "maintainable": self.maintainable,
            "aggregate": self.aggregate,
            "detail": self.detail,
        }


def classify_incremental(analysis: "ProgramAnalysis") -> IncrementalVerdict:
    """Classify an analysed program for the delta subsystem."""
    aggregate = analysis.aggregate
    name = aggregate.name

    if analysis.iterated:
        return IncrementalVerdict(
            mode="none",
            aggregate=name,
            detail=(
                "iterated (replacement-semantics) recursion rebuilds every "
                "stratum; there is no standing fixpoint to repair"
            ),
        )
    if analysis.termination is not None:
        return IncrementalVerdict(
            mode="none",
            aggregate=name,
            detail=(
                "epsilon-terminated recursion stops short of the true "
                "fixpoint; a repair resumed from the prior stop point is "
                "not bit-equal to a from-scratch run"
            ),
        )
    verdict = prescreen(analysis)
    if not verdict.eligible:
        return IncrementalVerdict(
            mode="none",
            aggregate=name,
            detail=(
                "Theorem-1 pre-screen did not certify every recursive body; "
                f"repair exactness is unproven ({verdict.detail})"
            ),
        )
    if aggregate.kind is AggregateKind.SELECTIVE and aggregate.plus_idempotent:
        return IncrementalVerdict(
            mode="full",
            aggregate=name,
            detail=(
                f"selective aggregate {name!r} with monotone F' "
                f"({verdict.pattern}): inserts repair from the frontier, "
                "deletions re-derive the affected forward closure"
            ),
        )
    if aggregate.kind is AggregateKind.ADDITIVE:
        return IncrementalVerdict(
            mode="insert-only",
            aggregate=name,
            detail=(
                f"additive aggregate {name!r} with linear-homogeneous F' "
                f"({verdict.pattern}): inserts sum in exactly; deletions "
                "would retract derived mass and fall back to recompute"
            ),
        )
    return IncrementalVerdict(
        mode="none",
        aggregate=name,
        detail=f"aggregate {name!r} is neither selective nor additive",
    )
