"""Static analysis over Datalog ASTs and compiled plans.

The analyzer front-door is :func:`analyze_source` /
:func:`analyze_program` (the multi-pass pipeline behind ``repro lint``);
the individual passes are importable on their own:

* :mod:`repro.analysis.diagnostics` -- stable ``RAxxx`` codes, spans,
  severities, text/JSON renderers;
* :mod:`repro.analysis.depgraph`    -- predicate dependency graph, SCCs,
  strata;
* :mod:`repro.analysis.structure`   -- the supported-class constraints
  (single source of truth; :func:`repro.datalog.analyze` delegates here);
* :mod:`repro.analysis.lints`       -- unbound-variable / unused /
  duplicate / singleton lints;
* :mod:`repro.analysis.prescreen`   -- the Theorem-1 structural
  pre-screen the condition checker fast-paths through;
* :mod:`repro.analysis.asynccert`   -- Theorem-3 async-eligibility
  certificates the asynchronous engines require;
* :mod:`repro.analysis.incremental` -- incremental-maintainability
  classification (RA32x) gating :mod:`repro.delta` repair strategies;
* :mod:`repro.analysis.frontier`    -- sparse-frontier scheduling
  applicability (RA33x) gating the sparse backend's delta-stepping;
* :mod:`repro.analysis.comm`        -- sharding / communication-shape
  analysis surfaced through ``repro.obs`` metrics.
"""

from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    error,
    info,
    warning,
)
from repro.analysis.depgraph import (
    DependencyGraph,
    build_graph,
    reachable_from,
    recursive_components,
    strata,
    strongly_connected_components,
)
from repro.analysis.structure import check_structure
from repro.analysis.lints import run_lints
from repro.analysis.frontier import FrontierVerdict, classify_frontier
from repro.analysis.incremental import IncrementalVerdict, classify_incremental
from repro.analysis.prescreen import PreScreenVerdict, match_pattern, prescreen
from repro.analysis.asynccert import (
    AsyncCertificate,
    AsyncIneligibleError,
    certify_async,
    require_async_certified,
)
from repro.analysis.comm import (
    BodyCommShape,
    PlanCommEstimate,
    communication_shape,
    estimate_plan_communication,
    record_comm_metrics,
)
from repro.analysis.pipeline import (
    analyze_program,
    analyze_source,
    diagnostic_from_error,
)

__all__ = [
    "CODES",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "error",
    "info",
    "warning",
    "DependencyGraph",
    "build_graph",
    "reachable_from",
    "recursive_components",
    "strata",
    "strongly_connected_components",
    "check_structure",
    "run_lints",
    "PreScreenVerdict",
    "match_pattern",
    "prescreen",
    "IncrementalVerdict",
    "classify_incremental",
    "FrontierVerdict",
    "classify_frontier",
    "AsyncCertificate",
    "AsyncIneligibleError",
    "certify_async",
    "require_async_certified",
    "BodyCommShape",
    "PlanCommEstimate",
    "communication_shape",
    "estimate_plan_communication",
    "record_comm_metrics",
    "analyze_program",
    "analyze_source",
    "diagnostic_from_error",
]
