"""System registry used by the benchmark harness."""

from __future__ import annotations

from repro.systems.base import DatalogSystem
from repro.systems.bigdatalog import BigDatalog
from repro.systems.graph_engines import Maiter, PowerGraph, Prom
from repro.systems.myria import Myria
from repro.systems.powerlog import PowerLog
from repro.systems.socialite import SociaLite

SYSTEMS: dict[str, DatalogSystem] = {
    system.name: system
    for system in (
        SociaLite(),
        Myria(),
        BigDatalog(),
        PowerGraph(),
        Maiter(),
        Prom(),
        PowerLog(),
    )
}


def get_system(name: str) -> DatalogSystem:
    """Look up a system model by name (raises ``KeyError`` if unknown)."""
    try:
        return SYSTEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown system {name!r}; expected one of {sorted(SYSTEMS)}"
        ) from None
