"""Incremental graph-processing baselines of section 6.4.

The paper compares PowerLog's ablation grid against graph systems that
support incremental computation: PowerGraph (sync or async; the paper
reports its best mode), Maiter (async delta accumulation -- the model
MRA evaluation generalises), and Prom (async belief propagation with
prioritised block updates).
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.async_engine import AsyncEngine
from repro.distributed.buffers import BufferPolicy
from repro.distributed.cluster import ClusterConfig
from repro.distributed.sync_engine import SyncEngine
from repro.engine.result import EvalResult
from repro.graphs.graph import Graph
from repro.programs.registry import ProgramSpec
from repro.systems.base import DatalogSystem


class PowerGraph(DatalogSystem):
    """PowerGraph [OSDI'12]: GAS engine, best of sync and async modes."""

    name = "PowerGraph"
    efficiency_factor = 1.8  # native C++, but lock-heavy GAS vertex model

    def run(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
    ) -> EvalResult:
        cluster = self._tuned_cluster(cluster or ClusterConfig())
        plan = self.compile(spec, graph)
        sync_result = SyncEngine(plan, cluster, mode="incremental").run()
        async_result = AsyncEngine(
            plan,
            cluster,
            buffer_policy=BufferPolicy(initial_beta=128, adaptive=False),
        ).run()
        best = min(
            (sync_result, async_result),
            key=lambda r: r.simulated_seconds or 0.0,
        )
        best.engine = f"{self.name}:{best.engine}"
        return best


class Maiter(DatalogSystem):
    """Maiter [TPDS'14]: asynchronous delta-based accumulative iteration."""

    name = "Maiter"
    efficiency_factor = 1.5

    def run(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
    ) -> EvalResult:
        cluster = self._tuned_cluster(cluster or ClusterConfig())
        plan = self.compile(spec, graph)
        engine = AsyncEngine(
            plan,
            cluster,
            buffer_policy=BufferPolicy(initial_beta=128, adaptive=False),
        )
        result = engine.run()
        result.engine = f"{self.name}:{result.engine}"
        return result


class Prom(DatalogSystem):
    """Prom [CIKM'14]: prioritised asynchronous belief propagation."""

    name = "Prom"
    efficiency_factor = 1.5

    def run(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
    ) -> EvalResult:
        cluster = self._tuned_cluster(cluster or ClusterConfig())
        plan = self.compile(spec, graph)
        # prioritised block updates: larger batches, importance-ordered
        threshold = None
        if plan.termination.epsilon is not None and plan.keys:
            threshold = 10.0 * plan.termination.epsilon / len(plan.keys)
        engine = AsyncEngine(
            plan,
            cluster,
            buffer_policy=BufferPolicy(initial_beta=128, adaptive=False),
            importance_threshold=threshold,
        )
        result = engine.run()
        result.engine = f"{self.name}:{result.engine}"
        return result
