"""SociaLite model: synchronous engine, semi-naive for monotonic programs.

SociaLite [Lam et al., ICDE'13; Seo et al., VLDB'13] evaluates
recursive aggregates synchronously; min/max programs run semi-naive
(with the delta-stepping optimisation for shortest paths the paper
credits in section 6.3), everything else falls back to naive evaluation
with the per-iteration re-join.
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.cluster import ClusterConfig
from repro.distributed.sync_engine import SyncEngine
from repro.engine.result import EvalResult
from repro.graphs.graph import Graph
from repro.programs.registry import ProgramSpec
from repro.systems.base import DatalogSystem


class SociaLite(DatalogSystem):
    name = "SociaLite"
    #: calibrated engine-maturity constant (package docstring)
    efficiency_factor = 6.0

    def run(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
    ) -> EvalResult:
        cluster = self._tuned_cluster(cluster or ClusterConfig())
        plan = self.compile(spec, graph)
        if self._is_monotonic(spec):
            use_delta_stepping = spec.name == "sssp"
            engine = SyncEngine(
                plan,
                cluster,
                mode="incremental",
                delta_stepping=use_delta_stepping,
            )
        else:
            engine = SyncEngine(plan, cluster, mode="naive")
        result = engine.run()
        result.engine = f"{self.name}:{result.engine}"
        return result
