"""BigDatalog/GraphX model: Spark-based synchronous execution.

BigDatalog [Shkapsky et al., SIGMOD'16] compiles semi-naive evaluation
onto Spark: each iteration is a scheduled job over RDDs, so a large
per-superstep overhead rides on top of the compute.  BigDatalog does not
support PageRank-style programs; following the paper (section 6.3) the
GraphX Pregel implementation substitutes for them -- incremental
(delta-based) but with the same per-iteration Spark job cost.
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.cluster import ClusterConfig
from repro.distributed.sync_engine import SyncEngine
from repro.engine.result import EvalResult
from repro.graphs.graph import Graph
from repro.programs.registry import ProgramSpec
from repro.systems.base import DatalogSystem


class BigDatalog(DatalogSystem):
    name = "BigDatalog"
    #: compiled Spark operators: close to native per tuple...
    efficiency_factor = 2.0
    #: ...but every superstep is a Spark job (scheduling, task launch)
    extra_job_overhead = 0.08

    def supports(self, spec: ProgramSpec) -> bool:
        # paper section 6.3: Adsorption, Katz and BP are not supported
        return spec.name not in ("adsorption", "katz", "bp")

    def run(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
    ) -> EvalResult:
        cluster = self._tuned_cluster(cluster or ClusterConfig())
        plan = self.compile(spec, graph)
        # monotonic programs: semi-naive on Spark; others: the GraphX
        # Pregel substitute, also incremental, also paying job overheads.
        engine = SyncEngine(plan, cluster, mode="incremental")
        result = engine.run()
        label = self.name if self._is_monotonic(spec) else f"{self.name}/GraphX"
        result.engine = f"{label}:{result.engine}"
        return result
