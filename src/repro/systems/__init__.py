"""Executable models of the Datalog/graph systems the paper compares.

Each system is reduced to the evaluation strategy and execution mode the
paper attributes to it (sections 6.2-6.4), running on the shared cluster
simulator:

===============  ===========================================  ==========
system           strategy                                      mode
===============  ===========================================  ==========
SociaLite        semi-naive (monotonic) / naive (otherwise),   sync
                 delta-stepping SSSP
Myria            semi-naive (monotonic) / naive (otherwise)    async
BigDatalog       semi-naive (monotonic), per-iteration job     sync
/GraphX          overhead; GraphX incremental PageRank
PowerGraph       incremental, best of sync/async               either
Maiter           incremental (delta accumulation)              async
Prom             incremental, priority updates                 async
PowerLog         MRA when the condition check passes,          unified
                 naive+sync otherwise (Figure 2)
===============  ===========================================  ==========

Strategy and coordination differences (incremental vs full recompute,
barriers vs staleness, buffering) are *simulated from real execution*.
On top of that, each baseline carries a constant **engine efficiency
factor** -- a per-tuple cost multiplier calibrated against the relative
per-iteration throughputs implied by the paper's Figure 9 (e.g. Myria's
tuple-at-a-time relational operators vs PowerLog's compiled MonoTable
updates).  These constants are documented here and in EXPERIMENTS.md;
they scale absolute times, never orderings between a system's own
configurations.
"""

from repro.systems.base import DatalogSystem, SystemRun
from repro.systems.socialite import SociaLite
from repro.systems.myria import Myria
from repro.systems.bigdatalog import BigDatalog
from repro.systems.powerlog import PowerLog, PowerLogDecision
from repro.systems.graph_engines import PowerGraph, Maiter, Prom
from repro.systems.registry import SYSTEMS, get_system

__all__ = [
    "DatalogSystem",
    "SystemRun",
    "SociaLite",
    "Myria",
    "BigDatalog",
    "PowerLog",
    "PowerLogDecision",
    "PowerGraph",
    "Maiter",
    "Prom",
    "SYSTEMS",
    "get_system",
]
