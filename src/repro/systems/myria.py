"""Myria model: asynchronous engine with eager pipelined exchange.

Myria [Wang et al., VLDB'15] evaluates recursive Datalog asynchronously
in a shared-nothing relational engine: operators pipeline tuples
eagerly, so message buffers are small and fixed -- maximum asynchrony,
maximum per-message overhead.  Monotonic (min/max) programs run
incrementally; others fall back to naive evaluation executed in
synchronous rounds (its async pipeline still cannot skip the
per-iteration re-join for non-monotonic aggregates).
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.async_engine import AsyncEngine
from repro.distributed.buffers import BufferPolicy
from repro.distributed.cluster import ClusterConfig
from repro.distributed.sync_engine import SyncEngine
from repro.engine.result import EvalResult
from repro.graphs.graph import Graph
from repro.programs.registry import ProgramSpec
from repro.systems.base import DatalogSystem


class Myria(DatalogSystem):
    name = "Myria"
    #: calibrated engine-maturity constant (tuple-at-a-time relational
    #: operators; package docstring)
    efficiency_factor = 9.0
    #: eager pipelined exchange: small fixed buffers
    eager_buffer = 16.0
    #: Myria's iterative operators pipeline the per-iteration join
    #: (hash tables stay materialised between iterations), so its naive
    #: evaluation pays far fewer probes per binding than a system that
    #: re-plans every iteration -- this is why its PageRank beats
    #: SociaLite's in the paper's Figure 1 despite both being naive.
    naive_join_scan_factor = 1.5

    def supports(self, spec: ProgramSpec) -> bool:
        # paper section 6.3: Adsorption, Katz and BP are not supported
        return spec.name not in ("adsorption", "katz", "bp")

    def run(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
    ) -> EvalResult:
        cluster = self._tuned_cluster(cluster or ClusterConfig())
        plan = self.compile(spec, graph)
        if self._is_monotonic(spec):
            engine = AsyncEngine(
                plan,
                cluster,
                buffer_policy=BufferPolicy(
                    initial_beta=self.eager_buffer, adaptive=False
                ),
            )
        else:
            pipelined = cluster.with_cost(
                join_scan_factor=self.naive_join_scan_factor
            )
            engine = SyncEngine(plan, pipelined, mode="naive")
        result = engine.run()
        result.engine = f"{self.name}:{result.engine}"
        return result
