"""The PowerLog system: the complete pipeline of the paper's Figure 2.

A recursive aggregate program is parsed and analysed, then the automatic
condition checker decides its fate:

* MRA conditions satisfied -> MRA evaluation on the unified sync-async
  engine;
* otherwise -> naive evaluation on the synchronous engine.

``PowerLog.explain`` exposes the decision (check report, chosen engine),
which the Table-1 benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checker import CheckReport, check_analysis
from repro.distributed.cluster import ClusterConfig
from repro.distributed.sync_engine import SyncEngine
from repro.distributed.unified import UnifiedEngine
from repro.engine.result import EvalResult
from repro.graphs.graph import Graph
from repro.programs.registry import ProgramSpec
from repro.systems.base import DatalogSystem


@dataclass(frozen=True)
class PowerLogDecision:
    """Outcome of the Figure-2 routing decision for one program."""

    report: CheckReport
    evaluation: str  # "mra" or "naive"
    engine: str  # "unified sync-async" or "sync"

    def summary(self) -> str:
        return (
            f"{self.report.program_name}: {self.evaluation} evaluation on the "
            f"{self.engine} engine ({self.report.summary()})"
        )


class PowerLog(DatalogSystem):
    """The PowerLog system: check, route, execute (paper Figure 2)."""

    name = "PowerLog"
    efficiency_factor = 1.0

    def decide(self, spec: ProgramSpec) -> PowerLogDecision:
        """Run the automatic condition check and pick the engine."""
        report = check_analysis(spec.analysis())
        if report.mra_satisfiable:
            return PowerLogDecision(report, "mra", "unified sync-async")
        return PowerLogDecision(report, "naive", "sync")

    def run(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
        backend: Optional[str] = None,
    ) -> EvalResult:
        cluster = self._tuned_cluster(cluster or ClusterConfig())
        decision = self.decide(spec)
        plan = self.compile(spec, graph)
        if decision.evaluation == "mra":
            engine = UnifiedEngine(plan, cluster, backend=backend)
        else:
            engine = SyncEngine(plan, cluster, mode="naive", backend=backend)
        result = engine.run()
        result.engine = f"{self.name}:{result.engine}"
        return result
