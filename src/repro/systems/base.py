"""The Datalog-system interface shared by all baselines and PowerLog."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aggregates import AggregateKind
from repro.distributed.cluster import ClusterConfig
from repro.engine.plan import CompiledPlan, compile_plan
from repro.engine.result import EvalResult
from repro.graphs.graph import Graph
from repro.programs.registry import ProgramSpec


@dataclass(frozen=True)
class SystemRun:
    """One cell of a Figure-9-style grid."""

    system: str
    program: str
    dataset: str
    result: EvalResult

    @property
    def seconds(self) -> float:
        return self.result.simulated_seconds or 0.0


class DatalogSystem:
    """Base class: compile a program, run it under the system's strategy.

    ``efficiency_factor`` scales per-tuple compute cost -- the calibrated
    engine-maturity constant (see the package docstring).
    """

    name = "abstract"
    efficiency_factor = 1.0
    extra_job_overhead = 0.0

    def supports(self, spec: ProgramSpec) -> bool:
        """Whether the system can run this program (paper section 6.3:
        Myria and BigDatalog do not support Adsorption/Katz/BP)."""
        return True

    def _tuned_cluster(self, cluster: ClusterConfig) -> ClusterConfig:
        cost = cluster.cost
        return cluster.with_cost(
            tuple_cost=cost.tuple_cost * self.efficiency_factor,
            scan_cost=cost.scan_cost * self.efficiency_factor,
            job_overhead=cost.job_overhead + self.extra_job_overhead,
        )

    def compile(self, spec: ProgramSpec, graph: Graph) -> CompiledPlan:
        return compile_plan(spec.analysis(), spec.build_database(graph))

    def _is_monotonic(self, spec: ProgramSpec) -> bool:
        """Monotonic in the baseline systems' sense: a selective
        (min/max) aggregate, for which classic semi-naive evaluation is
        valid.  Additive programs fall back to naive evaluation there."""
        return spec.analysis().aggregate.kind is AggregateKind.SELECTIVE

    def run(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
    ) -> EvalResult:
        raise NotImplementedError

    def run_named(
        self,
        spec: ProgramSpec,
        graph: Graph,
        cluster: Optional[ClusterConfig] = None,
    ) -> SystemRun:
        result = self.run(spec, graph, cluster)
        return SystemRun(self.name, spec.name, graph.name, result)
