"""Engine observability: metrics registry + structured trace events.

The subsystem has two halves, bundled into one :class:`Observability`
handle that engines accept as an optional constructor argument:

* :class:`MetricsRegistry` -- labelled counters, gauges (with optional
  time series) and histograms, generalising the fixed-field
  :class:`~repro.engine.result.WorkCounters` (which every engine still
  measures; an enabled registry absorbs them at the end of a run and
  travels on :class:`~repro.engine.result.EvalResult.metrics`);
* :class:`TraceRecorder` -- structured JSONL events stamped with the
  engine's *simulated* clock: supersteps/epochs, buffer flushes and
  ``beta(i,j)`` adaptations, ack/retransmit/backoff decisions,
  checkpoint writes/restores, and every fault injection.

The overhead contract: observability is **disabled by default**
(:data:`NULL_OBS`), and a disabled handle costs one attribute load and
branch per instrumentation site (``if obs.enabled:``) -- no event dicts
are built, no strings formatted.  Enabled tracing never draws from any
RNG and never advances the simulated clock, so a traced run is
bit-identical to an untraced one.

Fault-injection events are emitted *by the same call that increments*
:class:`~repro.distributed.chaos.FaultStats`
(:meth:`~repro.distributed.chaos.FaultInjector.record`), so
:func:`aggregate_fault_events` over a chaotic trace reproduces
``EvalResult.faults.snapshot()`` exactly, by construction.
"""

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import (
    TraceRecorder,
    NULL_TRACE,
    aggregate_fault_events,
    read_jsonl,
)
from repro.obs.core import Observability, NULL_OBS, ensure_obs

__all__ = [
    "MetricsRegistry",
    "NULL_METRICS",
    "TraceRecorder",
    "NULL_TRACE",
    "aggregate_fault_events",
    "read_jsonl",
    "Observability",
    "NULL_OBS",
    "ensure_obs",
]
