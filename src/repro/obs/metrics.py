"""Labelled metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is the generalisation of the fixed-field
:class:`~repro.engine.result.WorkCounters`: instruments are created on
first use, keyed by name plus a frozen label set (``worker=3``,
``target=1``, ...), and registries merge the way ``WorkCounters.merge``
does so per-shard measurements can roll up into one result.

Everything is a no-op when the registry is disabled; hot paths guard
with ``if obs.enabled:`` so the disabled cost is one branch.
"""

from __future__ import annotations

from typing import Iterator, Optional

#: histogram bucket upper bounds: powers of two up to 64k, then +inf
_BUCKET_BOUNDS = tuple(2**i for i in range(17))


def _key(name: str, labels: dict) -> tuple:
    if not labels:
        return (name, ())
    return (name, tuple(sorted(labels.items())))


def _label_text(labels: tuple) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Histogram:
    """Fixed power-of-two buckets plus count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(_BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(_BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in ("min", "max"):
            mine, theirs = getattr(self, bound), getattr(other, bound)
            if theirs is None:
                continue
            if mine is None:
                setattr(self, bound, theirs)
            else:
                pick = min if bound == "min" else max
                setattr(self, bound, pick(mine, theirs))
        for index, n in enumerate(other.buckets):
            self.buckets[index] += n

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class Gauge:
    """A last-value instrument that optionally keeps its time series."""

    __slots__ = ("value", "series")

    def __init__(self, keep_series: bool):
        self.value: Optional[float] = None
        self.series: Optional[list] = [] if keep_series else None

    def set(self, value: float, t: Optional[float] = None) -> None:
        self.value = value
        if self.series is not None:
            self.series.append((t, value))


class MetricsRegistry:
    """Counters, gauges and histograms created on first use.

    ``keep_series`` (default on) makes every gauge remember its full
    ``(t, value)`` history, which is what the ``repro metrics`` renderer
    turns into per-worker time-series such as ``beta(i,j)`` over time.
    """

    __slots__ = ("enabled", "keep_series", "counters", "gauges", "histograms")

    def __init__(self, enabled: bool = True, keep_series: bool = True):
        self.enabled = enabled
        self.keep_series = keep_series
        self.counters: dict = {}
        self.gauges: dict = {}
        self.histograms: dict = {}

    # -- instruments -----------------------------------------------------------
    def inc(self, name: str, n: float = 1, **labels) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + n

    def gauge(self, name: str, value: float, t: Optional[float] = None, **labels) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        instrument = self.gauges.get(key)
        if instrument is None:
            instrument = self.gauges[key] = Gauge(self.keep_series)
        instrument.set(value, t)

    def observe(self, name: str, value: float, **labels) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        instrument = self.histograms.get(key)
        if instrument is None:
            instrument = self.histograms[key] = Histogram()
        instrument.observe(value)

    # -- WorkCounters bridge ---------------------------------------------------
    def absorb_work_counters(self, counters, **labels) -> None:
        """Expose a run's :class:`WorkCounters` as ``work.*`` counters."""
        if not self.enabled:
            return
        for field, value in counters.snapshot().items():
            if value:
                self.inc(f"work.{field}", value, **labels)

    # -- aggregation -----------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, histograms combine,
        gauges keep the other's later samples appended)."""
        if not self.enabled or not other.enabled:
            return
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, histogram in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                mine = self.histograms[key] = Histogram()
            mine.merge(histogram)
        for key, gauge in other.gauges.items():
            mine = self.gauges.get(key)
            if mine is None:
                mine = self.gauges[key] = Gauge(self.keep_series)
            if gauge.series and mine.series is not None:
                for t, value in gauge.series:
                    mine.set(value, t)
            elif gauge.value is not None:
                mine.set(gauge.value)

    def counter_value(self, name: str, **labels) -> float:
        return self.counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all label sets."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def gauge_series(self, name: str) -> Iterator[tuple]:
        """Yield ``(labels, series)`` for every gauge named ``name``."""
        for (n, labels), gauge in sorted(self.gauges.items(), key=lambda kv: kv[0]):
            if n == name and gauge.series:
                yield labels, gauge.series

    def snapshot(self) -> dict:
        """A flat, JSON-friendly view of every instrument."""
        return {
            "counters": {
                f"{name}{_label_text(labels)}": value
                for (name, labels), value in sorted(self.counters.items())
            },
            "gauges": {
                f"{name}{_label_text(labels)}": gauge.value
                for (name, labels), gauge in sorted(self.gauges.items())
            },
            "histograms": {
                f"{name}{_label_text(labels)}": histogram.snapshot()
                for (name, labels), histogram in sorted(self.histograms.items())
            },
        }

    def __repr__(self):
        if not self.enabled:
            return "MetricsRegistry(disabled)"
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms)"
        )


#: the shared disabled registry: every method is a cheap no-op
NULL_METRICS = MetricsRegistry(enabled=False)
