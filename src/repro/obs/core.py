"""The Observability handle engines thread through their run loops."""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import TraceRecorder, NULL_TRACE


class Observability:
    """One enabled flag + a metrics registry + a trace recorder.

    Engines store ``self.obs = ensure_obs(obs)`` and guard every
    instrumentation site with ``if obs.enabled:`` -- the whole cost of
    the disabled default is that branch.
    """

    __slots__ = ("enabled", "metrics", "trace")

    def __init__(
        self,
        enabled: bool = True,
        trace_path: Optional[str] = None,
        keep_series: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        self.enabled = enabled
        if not enabled:
            self.metrics = NULL_METRICS
            self.trace = NULL_TRACE
        else:
            self.metrics = metrics or MetricsRegistry(keep_series=keep_series)
            self.trace = trace or TraceRecorder(trace_path)

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    def close(self) -> None:
        self.trace.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        if not self.enabled:
            return "Observability(disabled)"
        return f"Observability({self.metrics!r}, {len(self.trace)} events)"


#: the process-wide disabled handle; engines default to it
NULL_OBS = Observability.disabled()


def ensure_obs(obs: Optional[Observability]) -> Observability:
    """``None`` -> the disabled singleton; anything else passes through."""
    return NULL_OBS if obs is None else obs
