"""Structured trace events (JSONL) on the engines' simulated clock.

An event is one flat dict: ``{"kind": ..., "t": <simulated seconds or
None>, ...fields}``.  Kinds are namespaced:

* ``engine.superstep`` / ``engine.epoch`` -- one per BSP superstep or
  async master check (single-node engines emit per-round epochs with
  ``t=None``; they have no simulated clock);
* ``buffer.flush`` / ``buffer.beta`` -- per-destination flushes and
  adaptive ``beta(i,j)`` adjustments;
* ``net.ack`` / ``net.backoff`` -- delivery acknowledgements and
  retransmit backoff decisions;
* ``ckpt.write`` / ``ckpt.restore`` / ``ckpt.shard_write`` /
  ``ckpt.shard_restore`` -- checkpoint traffic (engine level and disk
  level);
* ``fault.<counter>`` -- one per :class:`FaultStats` increment, carrying
  ``n`` (the increment), so :func:`aggregate_fault_events` reproduces
  the run's ``FaultStats.snapshot()`` exactly;
* ``aap.mode`` -- AAP's block/stream mode switches.

Events are recorded in-memory in emission order and, when a path is
given, streamed to disk one JSON line at a time.  Values that are not
JSON-serialisable (tuple keys, numpy scalars) are stringified rather
than dropped.
"""

from __future__ import annotations

import json
from typing import Optional


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return str(value)


class TraceRecorder:
    """Append-only event recorder with an optional JSONL sink."""

    __slots__ = ("enabled", "events", "path", "_handle")

    def __init__(self, path: Optional[str] = None, enabled: bool = True):
        self.enabled = enabled
        self.events: list = []
        self.path = path
        self._handle = None
        if enabled and path is not None:
            self._handle = open(path, "w", encoding="utf-8")

    def emit(self, kind: str, t: Optional[float] = None, **fields) -> None:
        if not self.enabled:
            return
        event = {"kind": kind, "t": t}
        event.update(fields)
        self.events.append(event)
        if self._handle is not None:
            json.dump(
                {key: _jsonable(value) for key, value in event.items()},
                self._handle,
            )
            self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def counts_by_kind(self) -> dict:
        counts: dict = {}
        for event in self.events:
            kind = event["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def of_kind(self, kind: str) -> list:
        return [event for event in self.events if event["kind"] == kind]

    def __len__(self):
        return len(self.events)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def read_jsonl(path: str) -> list:
    """Load a trace file back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def aggregate_fault_events(events) -> dict:
    """Sum ``fault.*`` event increments into FaultStats-shaped totals.

    Because every :class:`~repro.distributed.chaos.FaultStats` increment
    goes through :meth:`FaultInjector.record`, which emits the matching
    ``fault.<counter>`` event with the increment as ``n``, this
    aggregation reproduces ``FaultStats.snapshot()`` bit for bit for any
    traced chaotic run.  Counters that never fired are reported as 0 so
    the dict compares equal to a snapshot.
    """
    from repro.distributed.chaos import FaultStats

    totals = FaultStats().snapshot()  # all-zero template, canonical keys
    for event in events:
        kind = event.get("kind", "")
        if not kind.startswith("fault."):
            continue
        name = kind[len("fault."):]
        if name in totals:
            totals[name] += event.get("n", 1)
    return totals


#: the shared disabled recorder
NULL_TRACE = TraceRecorder(enabled=False)
