"""SLO acceptance harness for the serving layer.

The serving analogue of :func:`repro.distributed.chaos_harness.run_matrix`:
one call plays a seeded workload through the service (optionally under
chaos) and checks the robustness contract end to end:

* **no lost requests** -- every generated request reached exactly one
  terminal state (unique response per request id, status in the
  terminal set);
* **determinism** -- a second run of the same ``(spec, config, chaos,
  seed)`` from a fresh checkpoint directory produces a byte-identical
  JSON SLO report;
* **degraded-answer agreement** -- every answer the service handed out
  (fresh, cached or stale) traces back to a measured engine run; each
  distinct run is re-executed fault-free and must agree within the
  chaos harness's tolerances (bit-for-bit for idempotent aggregates,
  ``ADDITIVE_TOLERANCE`` for additive ones);
* **breaker visibility** -- when the chaos plan includes an outage, the
  trip and half-open transitions must be visible in the ``repro.obs``
  trace stream;
* **static-cost pricing** -- every computed answer's (program, graph
  version) pair traces to an abstract-interpretation cost estimate the
  SLO report records under the current schema, so deadline pricing was
  never flying blind before the first measured profile.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.distributed.chaos_harness import ADDITIVE_TOLERANCE
from repro.obs import Observability
from repro.programs import get_program
from repro.serving.request import TERMINAL_STATUSES
from repro.serving.service import ServeConfig, ServingService
from repro.serving.slo import SLO_REPORT_SCHEMA, build_report, report_to_json
from repro.serving.workload import WorkloadSpec


@dataclass
class AgreementCheck:
    """One measured engine run compared against its fault-free rerun."""

    program: str
    graph_version: int
    params: tuple
    engine: str
    #: "full" (cold run) or "resume" (checkpoint-restored recomputation)
    kind: str
    agreed: bool
    #: worst per-vertex error, relative to max(1, |reference|) so huge
    #: additive carriers (path_count) are judged at their own scale
    max_error: float
    tolerance: float

    def row(self) -> str:
        verdict = "ok" if self.agreed else "MISMATCH"
        params = ",".join(f"{k}={v}" for k, v in self.params) or "-"
        return (
            f"{self.program:10s} v{self.graph_version} {self.engine:8s} "
            f"{self.kind:6s} params={params:14s} {verdict:8s} "
            f"max_err={self.max_error:.2e} (tol {self.tolerance:.0e})"
        )


@dataclass
class ServeAcceptance:
    """Everything the harness verified, plus the run-1 report."""

    report: dict
    deterministic: bool
    no_lost_requests: bool
    agreements: list = field(default_factory=list)
    #: None when the chaos plan could not have tripped a breaker
    breaker_visible: Optional[bool] = None
    #: every computed answer traces to a static cost estimate the report
    #: records under the current schema (the deadline-pricing contract)
    static_pricing: bool = True

    @property
    def all_agreed(self) -> bool:
        return all(check.agreed for check in self.agreements)

    @property
    def passed(self) -> bool:
        return (
            self.deterministic
            and self.no_lost_requests
            and self.all_agreed
            and self.breaker_visible is not False
            and self.static_pricing
        )

    def summary(self) -> str:
        def mark(ok):
            if ok is None:
                return "n/a "
            return "pass" if ok else "FAIL"

        lines = [
            f"no-lost-requests   {mark(self.no_lost_requests)}",
            f"determinism        {mark(self.deterministic)}",
            f"answer-agreement   {mark(self.all_agreed)} "
            f"({len(self.agreements)} engine runs checked)",
            f"breaker-visibility {mark(self.breaker_visible)}",
            f"static-pricing     {mark(self.static_pricing)}",
        ]
        lines.extend("  " + check.row() for check in self.agreements)
        lines.append(f"acceptance: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def _one_run(spec, config, chaos, seed, checkpoint_dir, obs=None):
    service = ServingService(
        config=config, chaos=chaos, obs=obs, checkpoint_dir=checkpoint_dir
    )
    outcome = service.run(spec, seed=seed)
    return service, outcome


def _check_no_lost(outcome, spec) -> bool:
    ids = [response.request_id for response in outcome.responses]
    return (
        len(ids) == spec.num_requests
        and len(set(ids)) == spec.num_requests
        and all(r.status in TERMINAL_STATUSES for r in outcome.responses)
    )


def _check_agreement(service, outcome, config, seed) -> list:
    """Re-run every measured engine execution fault-free and compare."""
    reference = ServingService(config=config, chaos=None)
    checks = []
    for memo_key in sorted(outcome.profiles, key=repr):
        profile = outcome.profiles[memo_key]
        key = profile.key
        program, graph_version, params, engine = key
        ref = reference._run_engine(key, seed, with_checkpointer=False)
        aggregate = get_program(program).analysis().aggregate
        tolerance = 0.0 if aggregate.is_idempotent else ADDITIVE_TOLERANCE
        max_error = 0.0
        for vertex in set(ref.values) | set(profile.values):
            ref_value = ref.values.get(vertex)
            got_value = profile.values.get(vertex)
            if ref_value is None or got_value is None:
                max_error = float("inf")
                break
            if not aggregate.numeric_values:
                # non-numeric carriers (e.g. kpaths' KTuple) have no
                # distance metric: the answer either matches or it doesn't
                if got_value != ref_value:
                    max_error = float("inf")
                    break
                continue
            # scale-aware error: additive fixpoints whose values exceed
            # 2^53 (path_count) accumulate ULP-level reordering noise, so
            # the absolute tolerance must grow with the value's magnitude
            denominator = max(1.0, abs(float(ref_value)))
            error = abs(float(got_value) - float(ref_value)) / denominator
            max_error = max(max_error, error)
        checks.append(
            AgreementCheck(
                program=program,
                graph_version=graph_version,
                params=params,
                engine=engine,
                kind=memo_key[-1],
                agreed=max_error <= tolerance,
                max_error=max_error,
                tolerance=tolerance,
            )
        )
    return checks


def _check_static_pricing(outcome, report) -> bool:
    """Every computed answer's (program, version) must have had a static
    cost estimate consulted at its first dispatch, and the report must
    record it under the current schema."""
    if report.get("schema") != SLO_REPORT_SCHEMA:
        return False
    table = report.get("static_costs", {})
    return all(
        f"{r.program}@v{r.graph_version}" in table
        for r in outcome.responses
        if r.served_from == "compute"
    )


def _breaker_events(obs) -> list:
    return [e for e in obs.trace.events if e["kind"] == "serve.breaker"]


def run_serve_acceptance(
    spec: Optional[WorkloadSpec] = None,
    config: Optional[ServeConfig] = None,
    chaos=None,
    seed: int = 7,
    checkpoint_root: Optional[str] = None,
) -> ServeAcceptance:
    """Run the full acceptance check; see the module docstring."""
    spec = spec or WorkloadSpec()
    config = config or ServeConfig()

    def ckpt(name):
        if checkpoint_root is None:
            return None
        path = os.path.join(checkpoint_root, name)
        os.makedirs(path, exist_ok=True)
        return path

    obs = Observability(keep_series=False)
    service, outcome = _one_run(spec, config, chaos, seed, ckpt("run1"), obs=obs)
    report = build_report(outcome, spec, config, chaos=chaos)

    _, outcome2 = _one_run(spec, config, chaos, seed, ckpt("run2"))
    report2 = build_report(outcome2, spec, config, chaos=chaos)
    deterministic = report_to_json(report) == report_to_json(report2)

    breaker_visible = None
    if chaos is not None and chaos.outages:
        events = _breaker_events(obs)
        tripped = any(e.get("to") == "open" for e in events)
        half_opened = any(e.get("to") == "half-open" for e in events)
        breaker_visible = tripped and half_opened
    obs.close()

    return ServeAcceptance(
        report=report,
        deterministic=deterministic,
        no_lost_requests=_check_no_lost(outcome, spec),
        agreements=_check_agreement(service, outcome, config, seed),
        breaker_visible=breaker_visible,
        static_pricing=_check_static_pricing(outcome, report),
    )
