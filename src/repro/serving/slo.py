"""SLO accounting and the deterministic JSON report for ``repro serve``.

The report is the serving layer's contract surface: byte-identical for
identical ``(workload, config, chaos, seed)`` inputs, which CI asserts
by diffing two runs.  To keep that promise the builder uses exact
nearest-rank percentiles (no interpolation), rounds every float to nine
decimals, sorts all keys, and never includes wall-clock time or
filesystem paths.
"""

from __future__ import annotations

import json
import math

from repro.serving.request import (
    FAILED,
    OK,
    OK_STALE,
    SERVED_STATUSES,
    SHED,
    TERMINAL_STATUSES,
    TIMEOUT,
)

#: bump when the report layout changes
#: (3: static-cost deadline pricing -- ``config.cost_model`` constants
#: and the per-(program, version) ``static_costs`` section)
SLO_REPORT_SCHEMA = 3


def percentile(values, q: float) -> float:
    """Exact nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _round(value, places: int = 9):
    """Recursively round floats so report bytes are platform-stable."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, places)
    if isinstance(value, dict):
        return {k: _round(v, places) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round(v, places) for v in value]
    return value


def _latency_block(latencies) -> dict:
    return {
        "count": len(latencies),
        "p50": percentile(latencies, 50.0),
        "p99": percentile(latencies, 99.0),
        "mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "max": max(latencies) if latencies else 0.0,
    }


def build_report(outcome, spec, config, chaos=None) -> dict:
    """The SLO report for one :class:`ServeOutcome` (plain dict)."""
    responses = outcome.responses
    status_counts = {status: 0 for status in TERMINAL_STATUSES}
    for response in responses:
        status_counts[response.status] += 1
    served = [r for r in responses if r.status in SERVED_STATUSES]
    stale = [r for r in responses if r.status == OK_STALE]

    tenants = {}
    for tenant in spec.tenants:
        mine = [r for r in responses if r.tenant == tenant.name]
        mine_served = [r for r in mine if r.status in SERVED_STATUSES]
        in_slo = [
            r
            for r in mine_served
            if r.status == OK and r.latency <= tenant.slo_latency
        ]
        tenants[tenant.name] = {
            "requests": len(mine),
            "served": len(mine_served),
            "statuses": {
                status: sum(1 for r in mine if r.status == status)
                for status in TERMINAL_STATUSES
            },
            "slo_latency": tenant.slo_latency,
            # fraction of ALL requests answered fresh within the SLO
            # latency -- shed and degraded answers count against it
            "slo_attainment": len(in_slo) / len(mine) if mine else 1.0,
            "latency": _latency_block([r.latency for r in mine_served]),
        }

    fault_totals: dict = {}
    executions = {"full": 0, "resumed": 0, "repaired": 0}
    kind_of = {"resume": "resumed", "repair": "repaired"}
    for key, profile in sorted(outcome.profiles.items(), key=repr):
        executions[kind_of.get(key[-1], "full")] += 1
        for counter, count in profile.faults.items():
            fault_totals[counter] = fault_totals.get(counter, 0) + count

    report = {
        "schema": SLO_REPORT_SCHEMA,
        "seed": outcome.seed,
        "chaos": chaos is not None,
        "workload": {
            "num_requests": spec.num_requests,
            "arrival_rate": spec.arrival_rate,
            "burst_factor": spec.burst_factor,
            "tenants": [t.name for t in spec.tenants],
            "version_bumps": list(spec.version_bumps),
        },
        "config": {
            "executors": config.executors,
            "workers": config.workers,
            "freshness_ttl": config.freshness_ttl,
            "max_attempts": config.max_attempts,
            "breaker_threshold": config.breaker_threshold,
            "breaker_reset": config.breaker_reset,
            # the cost-model currency pricing repairs and static
            # deadline predictions (schema 3)
            "cost_model": {
                "tuple_cost": config.cost_model.tuple_cost,
                "barrier_cost": config.cost_model.barrier_cost,
                "job_overhead": config.cost_model.job_overhead,
            },
        },
        "makespan": outcome.makespan,
        "throughput": len(served) / outcome.makespan if outcome.makespan else 0.0,
        "status_counts": status_counts,
        "served": len(served),
        "latency": _latency_block([r.latency for r in served]),
        "tenants": tenants,
        "counters": dict(sorted(outcome.counters.items())),
        "breakers": outcome.breakers,
        "engine_runs": {
            "distinct": executions["full"],
            "resumed": executions["resumed"],
            "repaired": executions["repaired"],
            "fault_totals": dict(sorted(fault_totals.items())),
        },
        "staleness": {
            "served_stale": len(stale),
            "max_age": max((r.stale_age or 0.0 for r in stale), default=0.0),
            "max_version_lag": max(
                (
                    outcome.final_graph_version - (r.graph_version or 0)
                    for r in stale
                ),
                default=0,
            ),
        },
        "final_graph_version": outcome.final_graph_version,
        # every abstract-interpretation cost estimate consulted for
        # deadline pricing, keyed "program@vN" (schema 3)
        "static_costs": {
            label: dict(entry)
            for label, entry in sorted(
                getattr(outcome, "static_costs", {}).items()
            )
        },
    }
    return _round(report)


def report_to_json(report: dict) -> str:
    """Canonical bytes: sorted keys, two-space indent, trailing newline."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_text(report: dict) -> str:
    """Human-readable SLO summary for the terminal."""
    lines = []
    chaos = "chaos" if report["chaos"] else "no chaos"
    lines.append(
        f"serve: {report['workload']['num_requests']} requests, "
        f"seed {report['seed']}, {chaos}, "
        f"makespan {report['makespan']:.3f}s, "
        f"throughput {report['throughput']:.2f} req/s"
    )
    counts = report["status_counts"]
    lines.append(
        "  status: "
        + "  ".join(f"{status}={counts[status]}" for status in TERMINAL_STATUSES)
    )
    lat = report["latency"]
    lines.append(
        f"  latency (served): p50={lat['p50']:.3f}s p99={lat['p99']:.3f}s "
        f"max={lat['max']:.3f}s"
    )
    lines.append(
        f"  cache: fresh-hits={report['counters']['cache_fresh_hits']} "
        f"stale-served={report['counters']['stale_served']} "
        f"max-stale-age={report['staleness']['max_age']:.3f}s"
    )
    lines.append(
        f"  engine runs: distinct={report['engine_runs']['distinct']} "
        f"resumed={report['engine_runs']['resumed']} "
        f"repaired={report['engine_runs']['repaired']} "
        f"attempts={report['counters']['attempts']} "
        f"failures={report['counters']['attempt_failures']} "
        f"retries={report['counters']['retries']}"
    )
    if report.get("static_costs"):
        lines.append(
            "  static pricing: "
            + "  ".join(
                f"{label}={entry['est_seconds']:.3f}s"
                for label, entry in sorted(report["static_costs"].items())
            )
        )
    fault_totals = report["engine_runs"]["fault_totals"]
    if fault_totals:
        text = ", ".join(f"{k}={v}" for k, v in sorted(fault_totals.items()))
        lines.append(f"  engine faults: {text}")
    for name, breaker in report["breakers"].items():
        if breaker["trips"] or breaker["state"] != "closed":
            lines.append(
                f"  breaker[{name}]: state={breaker['state']} "
                f"trips={breaker['trips']} half-opens={breaker['half_opens']} "
                f"closes={breaker['closes']}"
            )
    lines.append(
        "  tenant SLO attainment: "
        + "  ".join(
            f"{name}={tenants['slo_attainment']:.2%}"
            for name, tenants in sorted(report["tenants"].items())
        )
    )
    return "\n".join(lines)
