"""Per-engine-backend circuit breaker on the simulated clock.

Standard three-state breaker:

* ``closed``    -- traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker;
* ``open``      -- attempts are refused (the service serves stale or
  parks the request); after ``reset_timeout`` simulated seconds the
  breaker half-opens;
* ``half-open`` -- exactly one probe attempt is let through; success
  closes the breaker, failure re-opens it for another full timeout.

All transitions happen on the *simulated* clock (``poll(now)`` is called
by the service before every admission decision), so a chaotic serving
run is exactly reproducible and the trip / half-open / close sequence is
visible in ``repro.obs`` traces via the ``on_transition`` hook.
"""

from __future__ import annotations

from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure isolation for one engine backend."""

    def __init__(
        self,
        engine: str,
        failure_threshold: int = 3,
        reset_timeout: float = 0.75,
        on_transition: Optional[Callable] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        self.engine = engine
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.on_transition = on_transition
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.probe_in_flight = False
        # -- counters for the SLO report -----------------------------------
        self.trips = 0
        self.half_opens = 0
        self.closes = 0

    def _transition(self, now: float, new_state: str) -> None:
        old = self.state
        if old == new_state:
            return
        self.state = new_state
        if self.on_transition is not None:
            self.on_transition(now, self.engine, old, new_state)

    @property
    def half_open_at(self) -> Optional[float]:
        """When an open breaker will admit its probe; ``None`` otherwise."""
        if self.state != OPEN or self.opened_at is None:
            return None
        return self.opened_at + self.reset_timeout

    def poll(self, now: float) -> None:
        """Advance the open -> half-open transition on the simulated clock."""
        if self.state == OPEN and now >= self.opened_at + self.reset_timeout:
            self.half_opens += 1
            self.probe_in_flight = False
            self._transition(now, HALF_OPEN)

    def allows(self, now: float) -> bool:
        """May an attempt start now?  (``poll`` first.)"""
        self.poll(now)
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            return not self.probe_in_flight
        return False

    def on_attempt_start(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self.probe_in_flight = True

    def on_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self.probe_in_flight = False
        if self.state != CLOSED:
            self.closes += 1
            self.opened_at = None
            self._transition(now, CLOSED)

    def on_failure(self, now: float) -> None:
        self.probe_in_flight = False
        if self.state == HALF_OPEN:
            # the probe failed: back to a full open window
            self.trips += 1
            self.opened_at = now
            self._transition(now, OPEN)
            return
        self.consecutive_failures += 1
        if self.state == CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self.trips += 1
            self.opened_at = now
            self._transition(now, OPEN)

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "trips": self.trips,
            "half_opens": self.half_opens,
            "closes": self.closes,
            "consecutive_failures": self.consecutive_failures,
        }
