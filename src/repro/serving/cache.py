"""Result cache keyed on ``(program, graph version, params)``.

The cache is the serving-side face of incrementality: repeated queries
for the same inputs are answered from the stored fixpoint instead of
re-evaluating, and under degradation (open breaker, unmeetable
deadline, exhausted retries) an *older* entry can still be served --
stale but certified -- with its staleness surfaced on the response.

Only **certified** results are cached: runs that stopped at a genuine
``fixpoint`` or ``epsilon`` convergence.  An ``iteration-limit`` stop is
not a fixpoint and must never be replayed to other tenants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def cache_key(program: str, graph_version: int, params: tuple) -> tuple:
    return (program, graph_version, params)


@dataclass
class CacheEntry:
    """One certified fixpoint, stamped with when and what produced it."""

    key: tuple
    values: dict
    #: simulated time the producing run completed
    computed_at: float
    graph_version: int
    #: stop reason of the producing run ("fixpoint" | "epsilon")
    stop_reason: str
    #: engine backend that produced the values
    engine: str

    def age(self, now: float) -> float:
        return max(0.0, now - self.computed_at)


class ResultCache:
    """Versioned fixpoint store with fresh and stale lookup paths."""

    def __init__(self, freshness_ttl: float):
        #: entries younger than this (and on the current graph version)
        #: are served as fresh ``OK`` answers
        self.freshness_ttl = freshness_ttl
        self._entries: dict = {}

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, entry: CacheEntry) -> None:
        self._entries[entry.key] = entry

    def get(self, program: str, graph_version: int, params: tuple):
        return self._entries.get(cache_key(program, graph_version, params))

    def fresh(
        self, program: str, graph_version: int, params: tuple, now: float
    ) -> Optional[CacheEntry]:
        """A current-version entry young enough to serve as ``OK``."""
        entry = self.get(program, graph_version, params)
        if entry is not None and entry.age(now) <= self.freshness_ttl:
            return entry
        return None

    def fallback(
        self, program: str, graph_version: int, params: tuple
    ) -> Optional[CacheEntry]:
        """The best stale-but-certified entry for degraded serving.

        Prefers the current graph version (stale only by age), then
        falls back through older versions, newest first.  Returns
        ``None`` when the query was never answered before -- degradation
        then has nothing to serve and the request times out or fails.
        """
        for version in range(graph_version, 0, -1):
            entry = self.get(program, version, params)
            if entry is not None:
                return entry
        return None
