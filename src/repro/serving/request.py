"""Request model for the multi-tenant serving layer.

A request names a tenant, a program, an engine backend and a parameter
set; the service resolves every admitted request to **exactly one**
terminal status:

* ``OK``        -- a fresh answer (computed, or served from a fresh
  cache entry for the current graph version);
* ``OK_STALE``  -- a degraded answer: a stale-but-certified cache entry
  served because the breaker was open, the deadline could not be met,
  or retries were exhausted; staleness is surfaced on the response;
* ``SHED``      -- rejected at admission (tenant queue full); explicit,
  never a silent drop;
* ``TIMEOUT``   -- the deadline passed without an answer and no cached
  fallback existed;
* ``FAILED``    -- every attempt failed and no cached fallback existed.

The no-lost-request invariant -- every generated request reaches exactly
one of these states -- is enforced by the service and re-asserted by the
SLO acceptance harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

OK = "OK"
OK_STALE = "OK_STALE"
SHED = "SHED"
TIMEOUT = "TIMEOUT"
FAILED = "FAILED"

#: every terminal status, in report order
TERMINAL_STATUSES = (OK, OK_STALE, SHED, TIMEOUT, FAILED)

#: statuses that delivered an answer to the tenant
SERVED_STATUSES = (OK, OK_STALE)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's admission and SLO contract."""

    name: str
    #: relative share of the workload generator's traffic
    weight: float = 1.0
    #: bound on requests waiting for their first dispatch; the request
    #: that would overflow it is shed at admission
    queue_capacity: int = 8
    #: absolute per-request deadline (simulated seconds after arrival)
    deadline: float = 6.0
    #: latency target counted by SLO attainment (<= deadline)
    slo_latency: float = 2.5


@dataclass
class Request:
    """One query: tenant + program + engine backend + parameters."""

    id: int
    tenant: str
    program: str
    engine: str
    #: canonical parameter tuple ``(("eps_scale", 2.0), ...)``; part of
    #: the result-cache key
    params: tuple = ()
    arrival: float = 0.0
    #: absolute deadline on the simulated clock
    deadline: float = 0.0
    # -- runtime state owned by the service ---------------------------------
    attempts: int = 0
    admitted: bool = False

    @property
    def params_dict(self) -> dict:
        return dict(self.params)

    def params_text(self) -> str:
        if not self.params:
            return "-"
        return ",".join(f"{k}={v}" for k, v in self.params)


@dataclass
class Response:
    """The terminal outcome of one request."""

    request_id: int
    tenant: str
    program: str
    engine: str
    status: str
    #: seconds from arrival to resolution on the simulated clock
    latency: float
    resolved_at: float
    #: "compute" | "cache" | "stale-cache" | "" (not served)
    served_from: str = ""
    stale: bool = False
    #: age of the served entry (resolution time - computation time) when
    #: the answer was stale; ``None`` otherwise
    stale_age: Optional[float] = None
    #: graph version the served answer was computed on (``None`` when
    #: nothing was served)
    graph_version: Optional[int] = None
    attempts: int = 0
    #: why the request ended the way it did ("deadline-before-dispatch",
    #: "breaker-open", "retries-exhausted", ...)
    detail: str = ""
    #: result-cache key backing the answer, for agreement verification
    result_key: Optional[tuple] = None
    values: dict = field(default_factory=dict)

    @property
    def served(self) -> bool:
        return self.status in SERVED_STATUSES
