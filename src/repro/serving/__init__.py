"""Multi-tenant serving layer: admission control, deadlines, retries,
circuit breaking and graceful degradation in front of the engines, all
on one deterministic simulated clock."""

from repro.serving.acceptance import (
    AgreementCheck,
    ServeAcceptance,
    run_serve_acceptance,
)
from repro.serving.breaker import CircuitBreaker
from repro.serving.cache import CacheEntry, ResultCache, cache_key
from repro.serving.request import (
    FAILED,
    OK,
    OK_STALE,
    Request,
    Response,
    SERVED_STATUSES,
    SHED,
    TERMINAL_STATUSES,
    TIMEOUT,
    TenantSpec,
)
from repro.serving.service import (
    Outage,
    ServeChaos,
    ServeConfig,
    ServeOutcome,
    ServingService,
    default_chaos,
    serving_delta,
    serving_graph,
    serving_view,
)
from repro.serving.slo import (
    SLO_REPORT_SCHEMA,
    build_report,
    percentile,
    render_text,
    report_to_json,
)
from repro.serving.workload import (
    DEFAULT_ENGINE_MIX,
    DEFAULT_PROGRAM_MIX,
    DEFAULT_TENANTS,
    WorkloadSpec,
    generate_workload,
)

__all__ = [
    "AgreementCheck",
    "CacheEntry",
    "CircuitBreaker",
    "DEFAULT_ENGINE_MIX",
    "DEFAULT_PROGRAM_MIX",
    "DEFAULT_TENANTS",
    "FAILED",
    "OK",
    "OK_STALE",
    "Outage",
    "Request",
    "Response",
    "ResultCache",
    "SERVED_STATUSES",
    "SHED",
    "SLO_REPORT_SCHEMA",
    "ServeAcceptance",
    "ServeChaos",
    "ServeConfig",
    "ServeOutcome",
    "ServingService",
    "TERMINAL_STATUSES",
    "TIMEOUT",
    "TenantSpec",
    "WorkloadSpec",
    "build_report",
    "cache_key",
    "default_chaos",
    "generate_workload",
    "percentile",
    "render_text",
    "report_to_json",
    "run_serve_acceptance",
    "serving_delta",
    "serving_graph",
    "serving_view",
]
