"""The multi-tenant serving loop: a deterministic discrete-event service.

``ServingService`` sits in front of the distributed engines and plays a
generated request stream against them on one simulated clock:

* **admission control** -- per-tenant bounded queues; the request that
  would overflow its tenant's queue is resolved ``SHED`` immediately
  (an explicit terminal state, never a silent drop);
* **request lifecycle** -- every admitted request carries an absolute
  deadline; failed attempts retry with exponential backoff plus seeded
  jitter until the deadline or the attempt budget runs out;
* **circuit breaking** -- one :class:`~repro.serving.breaker.CircuitBreaker`
  per engine backend trips on consecutive failures and half-opens on the
  simulated clock; while open, requests are served stale from the
  result cache or parked until the breaker's probe window;
* **graceful degradation** -- a :class:`~repro.serving.cache.ResultCache`
  keyed on ``(program, graph version, params)`` answers repeated queries
  fresh and, under degradation, serves stale-but-certified fixpoints
  with the staleness surfaced on the response;
* **incremental recomputation** -- completed runs checkpoint their
  MonoTable shards through the existing
  :class:`~repro.distributed.fault.Checkpointer`; recomputations and
  post-crash retries restore from the latest checkpoint and converge in
  a fraction of the original run (a corrupted checkpoint falls back to
  reseed-and-replay instead of crashing the loop);
* **incremental maintenance** -- graph version bumps are concrete
  :class:`~repro.delta.GraphDelta` batches applied through a per-program
  :class:`~repro.delta.MutableGraphView`.  When a request arrives at a
  new version and the program is RA32x-certified, the stale-but-certified
  cache entry is *repaired* via :func:`repro.delta.repair_plan` from the
  prior fixpoint instead of being discarded -- the response is fresh,
  accounted as ``executions_repaired``, and priced by repair ops rather
  than a full run.

Determinism contract: the service consumes one seeded RNG in event
order, every engine execution is itself deterministic, and the clock is
simulated -- so a full serving run (and its JSON SLO report) is a pure
function of ``(workload spec, config, chaos plan, seed)``.

Simulator shortcut: engine executions are memoised per
``(program, graph version, params, engine)``.  The first execution of a
key really runs the engine (and its chaos schedule); repeats replay the
measured duration and values, which is exact because the engines are
deterministic given identical inputs.  Checkpoint-restored
("resumed") executions are measured separately, so recomputation cost
reflects genuine checkpoint recovery, not a model.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.delta import (
    GraphDelta,
    MutableGraphView,
    choose_strategy,
    diff_plans,
    random_delta,
    repair_plan,
)
from repro.distributed.aap import AAPEngine
from repro.distributed.async_engine import AsyncEngine
from repro.distributed.chaos import FaultSchedule
from repro.distributed.chaos_harness import default_graph
from repro.distributed.cluster import ClusterConfig, CostModel
from repro.distributed.fault import Checkpointer
from repro.distributed.sync_engine import SyncEngine
from repro.distributed.unified import UnifiedEngine
from repro.obs import ensure_obs
from repro.programs import get_program
from repro.runtime.compat import np
from repro.serving.breaker import CircuitBreaker
from repro.serving.cache import CacheEntry, ResultCache, cache_key
from repro.serving.request import (
    FAILED,
    OK,
    OK_STALE,
    Request,
    Response,
    SHED,
    TIMEOUT,
)
from repro.serving.workload import WorkloadSpec, generate_workload

#: engine backends the service can route to
SERVING_ENGINES = ("sync", "async", "unified", "aap")

_ENGINE_FACTORIES = {
    "sync": SyncEngine,
    "async": AsyncEngine,
    "unified": UnifiedEngine,
    "aap": AAPEngine,
}

#: certified stop reasons -- only these results enter the cache
_CERTIFIED_STOPS = ("fixpoint", "epsilon")


@dataclass(frozen=True)
class Outage:
    """A window during which every attempt on ``engine`` fails."""

    engine: str
    start: float
    end: float


@dataclass(frozen=True)
class ServeChaos:
    """What goes wrong at the serving layer (all seeded, all simulated).

    ``engine_faults`` are :class:`FaultSchedule` kwargs applied to the
    cluster of every real engine execution -- the chaos matrix's drops,
    duplicates and crashes now happening *under* live traffic.
    ``outages`` and ``attempt_failure_rate`` fail serving attempts
    themselves, which is what drives retries and the circuit breaker.
    """

    #: i.i.d. probability that an execution attempt crashes
    attempt_failure_rate: float = 0.0
    #: crashed attempts observe this fraction range of the run's duration
    failure_fraction: tuple = (0.2, 0.8)
    outages: tuple = ()
    #: FaultSchedule kwargs for engine-internal fault injection
    engine_faults: Optional[dict] = None

    def outage_covers(self, engine: str, now: float) -> bool:
        return any(
            o.engine == engine and o.start <= now < o.end for o in self.outages
        )


def default_chaos() -> ServeChaos:
    """The default chaos plan the ``--chaos`` flag and CI smoke use."""
    return ServeChaos(
        attempt_failure_rate=0.08,
        outages=(Outage("sync", 2.0, 3.5),),
        engine_faults={"drop_rate": 0.02, "duplicate_rate": 0.01},
    )


@dataclass(frozen=True)
class ServeConfig:
    """Service-side knobs (the workload side lives in WorkloadSpec)."""

    #: concurrent execution slots shared by all tenants; the default is
    #: deliberately scarce so the default burst saturates it and
    #: admission control visibly sheds
    executors: int = 1
    #: simulated workers per engine execution
    workers: int = 4
    #: cache entries older than this are recomputed on the happy path
    freshness_ttl: float = 1.5
    #: simulated cost of answering from the cache
    cache_cost: float = 2e-3
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    #: uniform(0, jitter) fraction added to every backoff wait
    backoff_jitter: float = 0.5
    breaker_threshold: int = 3
    breaker_reset: float = 0.75
    #: sync-engine checkpoint cadence (supersteps) when checkpointing
    checkpoint_every: int = 4
    #: seed of the base graphs and their per-version mutation deltas
    graph_seed: int = 7
    #: fraction of head edges inserted by each version-bump delta
    delta_fraction: float = 0.02
    #: the distributed cost model that prices everything the service
    #: predicts instead of measures: repair ops (accumulate attempts +
    #: edge applications, at ``tuple_cost`` per op spread over the
    #: workers) and the abstract-interpretation static cost estimate
    #: used for deadline pricing before any profile was measured.  This
    #: replaced the old flat per-op repair constant, so repair and
    #: deadline decisions share one currency with the engines.
    cost_model: CostModel = CostModel()
    backend: Optional[str] = None


@dataclass
class ExecutionProfile:
    """One measured engine run, replayed for repeat executions."""

    key: tuple  # (program, graph_version, params, engine)
    values: dict
    duration: float
    stop_reason: str
    #: True when the run restored from a checkpoint (recomputation path)
    resumed: bool
    #: True when the values were produced by incrementally repairing a
    #: stale certified cache entry (no engine ran at all)
    repaired: bool = False
    #: FaultStats snapshot of the run (engine-internal chaos), or {}
    faults: dict = field(default_factory=dict)
    uses: int = 0


@dataclass
class ServeOutcome:
    """Everything one serving run produced."""

    responses: list
    requests: list
    counters: dict
    breakers: dict
    #: every measured engine run, keyed like the execution memo
    profiles: dict
    makespan: float
    seed: int
    final_graph_version: int
    #: static cost estimates consulted for deadline pricing, keyed
    #: ``"program@vN"`` (the abstract-interpretation cost section)
    static_costs: dict = field(default_factory=dict)


#: fraction of head edges each serving version bump inserts when the
#: ServeConfig does not override it
DEFAULT_DELTA_FRACTION = 0.02


def serving_delta(
    graph, program: str, version: int, graph_seed: int = 7,
    delta_fraction: float = DEFAULT_DELTA_FRACTION,
) -> GraphDelta:
    """The mutation batch that produces ``version`` from ``version - 1``.

    Deterministic in ``(program, version, graph_seed)``: a seeded
    insert-only batch sized as a fraction of the head's edge count.
    Inserts respect acyclicity when the base graph is topologically
    ordered (``src < dst`` everywhere, as :func:`repro.graphs.random_dag`
    guarantees), so path-counting programs stay well-defined.
    """
    acyclic = all(src < dst for src, dst in graph.edges)
    inserts = max(1, int(graph.num_edges * delta_fraction))
    seed = (
        graph_seed * 1_000_003
        + 131 * version
        + (zlib.crc32(program.encode("utf-8")) & 0xFFFF)
    )
    return random_delta(graph, seed=seed, insert_edges=inserts, acyclic=acyclic)


def serving_view(
    program: str, graph_seed: int = 7
) -> MutableGraphView:
    """A fresh versioned view over the program's base serving graph.

    Counting programs get their multiplicities materialised in the
    builders' own ``[1, 3]`` regime rather than the view's generic
    ``[1, 10]`` edge weights: ``multiplicity_dag_db`` certifies the
    exact walk bound against ``2**53`` and (rightly) refuses the
    generic weights, whose walk counts overflow float64 exactness on
    the serving DAG.
    """
    from repro.programs import builders

    base = default_graph(program, seed=graph_seed)
    spec = get_program(program)
    if (
        spec.build_database is builders.multiplicity_dag_db
        and base.weights is None
    ):
        base = base.with_weights(1, 3)
    return MutableGraphView(base)


def serving_graph(
    program: str, version: int, graph_seed: int = 7,
    delta_fraction: float = DEFAULT_DELTA_FRACTION,
):
    """The graph a program runs on at a given version.

    Version bumps model mutation ingests as *applied deltas*: version 1
    is the base graph and every later version extends the previous one
    by one :func:`serving_delta` batch.  Cached fixpoints for older
    versions genuinely disagree with the current data -- but because the
    versions are delta-related, a stale certified fixpoint can be
    *repaired* to the current version instead of discarded.
    """
    view = serving_view(program, graph_seed)
    return view.advance_to(
        version,
        lambda v, ver: serving_delta(
            v.graph, program, ver, graph_seed, delta_fraction
        ),
    )


def execution_seed(base_seed: int, key: tuple) -> int:
    """Stable per-execution seed for the engine-internal fault schedule."""
    text = ":".join(str(part) for part in key)
    return base_seed * 100003 + (zlib.crc32(text.encode("utf-8")) & 0xFFFF)


class ServingService:
    """Deterministic simulated-clock serving in front of the engines."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        chaos: Optional[ServeChaos] = None,
        obs=None,
        checkpoint_dir: Optional[str] = None,
    ):
        self.config = config or ServeConfig()
        self.chaos = chaos
        self.obs = ensure_obs(obs)
        self.checkpointer = (
            Checkpointer(checkpoint_dir, obs=obs) if checkpoint_dir else None
        )
        self._plans: dict = {}
        self.profiles: dict = {}
        self._resume_profiles: dict = {}
        self._views: dict = {}
        self._incremental_modes: dict = {}
        self._static_costs: dict = {}

    # -- versioned graphs (mutation ingests as applied deltas) ---------------
    def _view(self, program: str) -> MutableGraphView:
        view = self._views.get(program)
        if view is None:
            view = serving_view(program, self.config.graph_seed)
            self._views[program] = view
        return view

    def _graph(self, program: str, version: int):
        view = self._view(program)
        return view.advance_to(
            version,
            lambda v, ver: serving_delta(
                v.graph,
                program,
                ver,
                self.config.graph_seed,
                self.config.delta_fraction,
            ),
        )

    def _incremental_mode(self, program: str) -> str:
        """RA32x verdict (``full`` / ``insert-only`` / ``none``), cached."""
        mode = self._incremental_modes.get(program)
        if mode is None:
            from repro.analysis.incremental import classify_incremental

            mode = classify_incremental(get_program(program).analysis()).mode
            self._incremental_modes[program] = mode
        return mode

    # -- engine execution (memoised) ----------------------------------------
    def _plan(self, program: str, version: int):
        key = (program, version)
        if key not in self._plans:
            spec = get_program(program)
            self._plans[key] = spec.plan(self._graph(program, version))
        return self._plans[key]

    # -- static cost (abstract interpretation) -------------------------------
    def static_cost(self, program: str, version: int):
        """Memoised abstract-interpretation cost estimate for the plan."""
        key = (program, version)
        estimate = self._static_costs.get(key)
        if estimate is None:
            from repro.analysis.absint import estimate_plan_cost

            estimate = estimate_plan_cost(self._plan(program, version))
            self._static_costs[key] = estimate
        return estimate

    def predicted_duration(self, program: str, version: int) -> float:
        """Deadline-pricing prediction before any profile was measured,
        in the same simulated-seconds currency the engines report."""
        return self.static_cost(program, version).est_seconds(
            self.config.cost_model, workers=self.config.workers
        )

    def _termination(self, plan, params: tuple):
        scale = dict(params).get("eps_scale")
        spec = plan.termination
        if scale is None or spec.epsilon is None:
            return spec
        return replace(spec, epsilon=spec.epsilon * float(scale))

    def _cluster(self, key: tuple, seed: int) -> ClusterConfig:
        cluster = ClusterConfig(num_workers=self.config.workers)
        if self.chaos is not None and self.chaos.engine_faults:
            schedule = FaultSchedule(
                **self.chaos.engine_faults, seed=execution_seed(seed, key)
            )
            cluster = cluster.with_faults(schedule)
        return cluster

    def _run_name(self, key: tuple) -> str:
        program, version, params, engine = key
        param_text = "-".join(f"{k}{v}" for k, v in params) or "none"
        return f"srv-{program}-v{version}-{param_text}-{engine}"

    def _has_checkpoints(self, key: tuple) -> bool:
        if self.checkpointer is None:
            return False
        run_name = self._run_name(key)
        return all(
            self.checkpointer.has_checkpoint(run_name, shard)
            for shard in range(self.config.workers)
        )

    def _run_engine(self, key: tuple, seed: int, with_checkpointer: bool):
        program, version, params, engine = key
        plan = self._plan(program, version)
        kwargs = dict(
            termination=self._termination(plan, params),
            run_name=self._run_name(key),
            backend=self.config.backend,
        )
        if with_checkpointer and self.checkpointer is not None:
            kwargs["checkpointer"] = self.checkpointer
            if engine == "sync":
                kwargs["checkpoint_every"] = self.config.checkpoint_every
        factory = _ENGINE_FACTORIES[engine]
        return factory(plan, self._cluster(key, seed), **kwargs).run()

    def _repair_profile(self, key: tuple, basis) -> Optional[ExecutionProfile]:
        """Repair a stale certified fixpoint up to ``key``'s version.

        Returns ``None`` when the program's RA32x verdict (or the shape
        of the accumulated deltas) forces a recompute -- the caller then
        runs a real engine.  The repair itself runs no engine: it diffs
        the compiled plans of the two versions and replays the delta
        subsystem's frontier/re-derivation repair, priced per repair op.
        """
        memo = self.profiles.get(key + ("repair",))
        if memo is not None:
            return memo
        program, version, params, engine = key
        mode = self._incremental_mode(program)
        if mode == "none":
            return None
        old_plan = self._plan(program, basis.graph_version)
        new_plan = self._plan(program, version)
        if choose_strategy(mode, diff_plans(old_plan, new_plan)) == "recompute":
            return None
        repair = repair_plan(
            old_plan,
            new_plan,
            basis.values,
            mode=mode,
            backend=self.config.backend,
            obs=self.obs,
            program=program,
        )
        if repair.stop_reason not in _CERTIFIED_STOPS:
            return None
        model = self.config.cost_model
        profile = ExecutionProfile(
            key=key,
            values=repair.values,
            duration=self.config.cache_cost
            + model.job_overhead
            + repair.ops * model.tuple_cost / max(1, self.config.workers),
            stop_reason=repair.stop_reason,
            resumed=False,
            repaired=True,
        )
        self.profiles[key + ("repair",)] = profile
        return profile

    def _execute(
        self, key: tuple, seed: int, repair_basis=None
    ) -> ExecutionProfile:
        """Measured execution: real engine runs, memoised per key.

        Once a completed run has checkpointed, later executions restore
        from the checkpoint -- the measured resume run is the cost of
        recomputing a query the service has answered before.  When the
        caller holds a stale-but-certified cache entry for an earlier
        graph version (``repair_basis``), an incrementally maintainable
        program repairs it in place instead of running any engine.
        """
        if self._has_checkpoints(key):
            profile = self._resume_profiles.get(key)
            if profile is None:
                result = self._run_engine(key, seed, with_checkpointer=True)
                profile = ExecutionProfile(
                    key=key,
                    values=result.values,
                    duration=result.simulated_seconds or 0.0,
                    stop_reason=result.stop_reason,
                    resumed=True,
                    faults=result.faults.snapshot() if result.faults else {},
                )
                self._resume_profiles[key] = profile
                self.profiles[key + ("resume",)] = profile
            profile.uses += 1
            return profile
        profile = self.profiles.get(key + ("full",))
        if profile is None and repair_basis is not None:
            repaired = self._repair_profile(key, repair_basis)
            if repaired is not None:
                repaired.uses += 1
                return repaired
        if profile is None:
            result = self._run_engine(key, seed, with_checkpointer=True)
            profile = ExecutionProfile(
                key=key,
                values=result.values,
                duration=result.simulated_seconds or 0.0,
                stop_reason=result.stop_reason,
                resumed=False,
                faults=result.faults.snapshot() if result.faults else {},
            )
            self.profiles[key + ("full",)] = profile
        profile.uses += 1
        return profile

    # -- the serving loop ----------------------------------------------------
    def run(self, spec: Optional[WorkloadSpec] = None, seed: int = 7) -> ServeOutcome:
        spec = spec or WorkloadSpec()
        requests = generate_workload(spec, seed=seed)
        return self.serve(requests, spec, seed=seed)

    def serve(
        self, requests: list, spec: WorkloadSpec, seed: int = 7
    ) -> ServeOutcome:
        run = _ServingRun(self, requests, spec, seed)
        return run.execute()


class _ServingRun:
    """One serving run's mutable state (service objects stay reusable)."""

    def __init__(self, service: ServingService, requests, spec, seed):
        self.service = service
        self.config = service.config
        self.chaos = service.chaos
        self.obs = service.obs
        self.requests = requests
        self.spec = spec
        self.seed = seed
        self.rng = np.random.default_rng(seed * 7919 + 1)
        self.cache = ResultCache(self.config.freshness_ttl)
        self.now = 0.0
        self.graph_version = 1
        self.busy = 0
        self._events: list = []
        self._event_seq = 0
        self._runnable: list = []
        self._runnable_seq = 0
        self._parked: dict = {}  # engine -> [request, ...]
        self._states: dict = {}  # request id -> lifecycle state
        self.responses: dict = {}
        self.static_costs: dict = {}  # "program@vN" -> consulted estimate
        self.queue_depth: dict = {}  # tenant -> waiting-for-first-dispatch
        self.counters: dict = {
            "arrivals": 0,
            "admitted": 0,
            "shed": 0,
            "dispatches": 0,
            "attempts": 0,
            "attempt_failures": 0,
            "retries": 0,
            "cache_fresh_hits": 0,
            "stale_served": 0,
            "deadline_resolutions": 0,
            "executions_full": 0,
            "executions_resumed": 0,
            "executions_repaired": 0,
            "version_bumps": 0,
        }
        self.breakers = {
            engine: CircuitBreaker(
                engine,
                failure_threshold=self.config.breaker_threshold,
                reset_timeout=self.config.breaker_reset,
                on_transition=self._on_breaker_transition,
            )
            for engine in SERVING_ENGINES
        }

    # -- plumbing ------------------------------------------------------------
    def _schedule(self, at: float, kind: str, payload=None) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (at, self._event_seq, kind, payload))

    def _make_runnable(self, request: Request) -> None:
        self._runnable_seq += 1
        heapq.heappush(
            self._runnable, (request.arrival, self._runnable_seq, request)
        )

    def _trace(self, kind: str, t: Optional[float] = None, **fields) -> None:
        if self.obs.enabled:
            self.obs.trace.emit(kind, t=self.now if t is None else t, **fields)

    def _inc(self, name: str, **labels) -> None:
        if self.obs.enabled:
            self.obs.metrics.inc(f"serve.{name}", **labels)

    def _on_breaker_transition(self, now, engine, old, new) -> None:
        if self.obs.enabled:
            self.obs.trace.emit(
                "serve.breaker", t=now, engine=engine, from_state=old, to=new
            )
            self.obs.metrics.inc("serve.breaker_transitions", engine=engine, to=new)
        if new == "open":
            breaker = self.breakers[engine]
            self._schedule(breaker.opened_at + breaker.reset_timeout, "wake", engine)
        else:
            # half-open or closed: parked requests may proceed
            self._release_parked(engine)

    def _release_parked(self, engine: str) -> None:
        for request in self._parked.pop(engine, []):
            if self._states.get(request.id) == "parked":
                self._states[request.id] = "queued"
                self._make_runnable(request)

    # -- terminal resolution ---------------------------------------------------
    def _resolve(
        self,
        request: Request,
        status: str,
        at: Optional[float] = None,
        **kwargs,
    ) -> None:
        if request.id in self.responses:
            raise RuntimeError(
                f"request {request.id} resolved twice ({status} after "
                f"{self.responses[request.id].status})"
            )
        resolved_at = self.now if at is None else at
        self._dequeue_accounting(request)
        response = Response(
            request_id=request.id,
            tenant=request.tenant,
            program=request.program,
            engine=request.engine,
            status=status,
            latency=max(0.0, resolved_at - request.arrival),
            resolved_at=resolved_at,
            attempts=request.attempts,
            **kwargs,
        )
        self.responses[request.id] = response
        self._states[request.id] = "resolved"
        self._trace(
            "serve.complete",
            t=resolved_at,
            request=request.id,
            tenant=request.tenant,
            status=status,
            latency=response.latency,
        )
        self._inc("completions", status=status, tenant=request.tenant)
        if self.obs.enabled and response.served:
            self.obs.metrics.observe(
                "serve.latency", response.latency, tenant=request.tenant
            )

    def _serve_stale(self, request: Request, entry: CacheEntry, detail: str) -> None:
        self.counters["stale_served"] += 1
        self._inc("cache_hits", kind="stale", tenant=request.tenant)
        self._resolve(
            request,
            OK_STALE,
            served_from="stale-cache",
            stale=True,
            stale_age=entry.age(self.now),
            graph_version=entry.graph_version,
            detail=detail,
            result_key=entry.key,
            values=entry.values,
        )

    def _degrade(self, request: Request, detail: str) -> None:
        """Deadline or failure path: stale answer if possible, else fail."""
        entry = self.cache.fallback(
            request.program, self.graph_version, request.params
        )
        if entry is not None:
            self._serve_stale(request, entry, detail)
            return
        if detail == "retries-exhausted":
            self._resolve(request, FAILED, detail=detail)
        else:
            self._resolve(request, TIMEOUT, detail=detail)

    # -- event handlers --------------------------------------------------------
    def _handle_arrival(self, request: Request) -> None:
        self.counters["arrivals"] += 1
        tenant = self.spec.tenant(request.tenant)
        depth = self.queue_depth.get(request.tenant, 0)
        self._trace("serve.arrive", request=request.id, tenant=request.tenant)
        if depth >= tenant.queue_capacity:
            self.counters["shed"] += 1
            self._inc("shed", tenant=request.tenant)
            self._trace(
                "serve.shed", request=request.id, tenant=request.tenant, depth=depth
            )
            self._resolve(request, SHED, detail="queue-full")
            return
        request.admitted = True
        self.counters["admitted"] += 1
        self._inc("admitted", tenant=request.tenant)
        self.queue_depth[request.tenant] = depth + 1
        if self.obs.enabled:
            self.obs.metrics.gauge(
                "serve.queue_depth", depth + 1, t=self.now, tenant=request.tenant
            )
        self._states[request.id] = "queued"
        self._make_runnable(request)
        # the deadline backstop: a queued/parked/retrying request is
        # resolved *at* its deadline, never silently after it
        self._schedule(request.deadline, "deadline", request)

    def _handle_deadline(self, request: Request) -> None:
        if self._states.get(request.id) in ("resolved", "executing"):
            # executing requests are allowed to finish; a late completion
            # resolves TIMEOUT on its own
            return
        self.counters["deadline_resolutions"] += 1
        self._degrade(request, "deadline")

    def _attempt_fails(self, engine: str) -> bool:
        if self.chaos is None:
            return False
        if self.chaos.outage_covers(engine, self.now):
            return True
        rate = self.chaos.attempt_failure_rate
        return rate > 0 and float(self.rng.random()) < rate

    def _dispatch(self, request: Request) -> bool:
        """Try to move one queued request forward.  True if an executor
        slot was consumed."""
        state = self._states.get(request.id)
        if state != "queued":
            return False
        if request.id not in self.responses and not request.admitted:
            raise RuntimeError("dispatching an unadmitted request")
        self._first_dispatch_accounting(request)
        if self.now >= request.deadline:
            self._degrade(request, "deadline")
            return False
        # fresh cache hit: answer immediately, no executor needed
        entry = self.cache.fresh(
            request.program, self.graph_version, request.params, self.now
        )
        if entry is not None:
            self.counters["cache_fresh_hits"] += 1
            self._inc("cache_hits", kind="fresh", tenant=request.tenant)
            # the lookup cost delays this response only -- advancing
            # self.now here would time-shift every other in-flight event
            self._resolve(
                request,
                OK,
                at=self.now + self.config.cache_cost,
                served_from="cache",
                graph_version=entry.graph_version,
                detail="cache",
                result_key=entry.key,
                values=entry.values,
            )
            return False
        breaker = self.breakers[request.engine]
        if not breaker.allows(self.now):
            stale = self.cache.fallback(
                request.program, self.graph_version, request.params
            )
            if stale is not None:
                self._serve_stale(request, stale, "breaker-open")
            else:
                self._states[request.id] = "parked"
                self._parked.setdefault(request.engine, []).append(request)
                self._trace(
                    "serve.park", request=request.id, engine=request.engine
                )
            return False
        # deadline-aware skip: when the cost of computing provably blows
        # the deadline, degrade right away.  A measured profile is exact;
        # before one exists the abstract-interpretation static estimate
        # (priced in the cost-model currency) stands in for it.
        profile = self._known_profile(request)
        if profile is not None:
            predicted, basis = profile.duration, "measured"
        else:
            predicted, basis = self._static_prediction(request), "static"
        if self.now + predicted > request.deadline:
            stale = self.cache.fallback(
                request.program, self.graph_version, request.params
            )
            if stale is not None:
                self._serve_stale(request, stale, f"deadline-skip-{basis}")
                return False
        return self._start_attempt(request, breaker)

    def _first_dispatch_accounting(self, request: Request) -> None:
        if getattr(request, "_dispatched", False):
            return
        request._dispatched = True
        self.counters["dispatches"] += 1
        self._dequeue_accounting(request)

    def _dequeue_accounting(self, request: Request) -> None:
        """Give the tenant's admission slot back exactly once, however
        the request leaves the queue -- first dispatch, or a deadline
        backstop resolving it before it was ever dispatched."""
        if not request.admitted or getattr(request, "_dequeued", False):
            return
        request._dequeued = True
        depth = self.queue_depth.get(request.tenant, 1)
        self.queue_depth[request.tenant] = depth - 1
        if self.obs.enabled:
            self.obs.metrics.gauge(
                "serve.queue_depth", depth - 1, t=self.now, tenant=request.tenant
            )

    def _static_prediction(self, request: Request) -> float:
        """The static deadline price for ``request`` at the current graph
        version; the estimates actually consulted end up in the report."""
        seconds = self.service.predicted_duration(
            request.program, self.graph_version
        )
        label = f"{request.program}@v{self.graph_version}"
        if label not in self.static_costs:
            estimate = self.service.static_cost(
                request.program, self.graph_version
            )
            entry = estimate.to_dict()
            entry["est_seconds"] = seconds
            self.static_costs[label] = entry
            if self.obs.enabled:
                self.obs.metrics.gauge(
                    "serve.static_cost_est",
                    seconds,
                    t=self.now,
                    program=request.program,
                )
        return seconds

    def _known_profile(self, request: Request):
        key = (
            request.program,
            self.graph_version,
            request.params,
            request.engine,
        )
        if self.service._has_checkpoints(key):
            return self.service._resume_profiles.get(key)
        profile = self.service.profiles.get(key + ("full",))
        if profile is None:
            profile = self.service.profiles.get(key + ("repair",))
        return profile

    def _repair_basis(self, request: Request):
        """A stale certified entry from an *older* graph version that the
        delta subsystem may repair in place of a full engine run."""
        key = (
            request.program,
            self.graph_version,
            request.params,
            request.engine,
        )
        if key + ("full",) in self.service.profiles:
            return None
        if self.service._has_checkpoints(key):
            return None
        entry = self.cache.fallback(
            request.program, self.graph_version, request.params
        )
        if entry is not None and entry.graph_version < self.graph_version:
            return entry
        return None

    def _start_attempt(self, request: Request, breaker: CircuitBreaker) -> bool:
        request.attempts += 1
        self.counters["attempts"] += 1
        self._inc("attempts", engine=request.engine)
        breaker.on_attempt_start(self.now)
        profile = self.service._execute(
            (request.program, self.graph_version, request.params, request.engine),
            self.seed,
            repair_basis=self._repair_basis(request),
        )
        # memoised replays run no engine: only a profile's first use is
        # a real run (or a real repair), keeping these counters equal to
        # the report's per-profile engine_runs tallies
        if profile.uses == 1:
            if profile.repaired:
                self.counters["executions_repaired"] += 1
                self._inc("repairs", program=request.program)
            elif profile.resumed:
                self.counters["executions_resumed"] += 1
            else:
                self.counters["executions_full"] += 1
        failed = self._attempt_fails(request.engine)
        if failed:
            lo, hi = self.chaos.failure_fraction
            fraction = lo + (hi - lo) * float(self.rng.random())
            duration = fraction * profile.duration
        else:
            duration = profile.duration
        self._states[request.id] = "executing"
        self.busy += 1
        self._trace(
            "serve.dispatch",
            request=request.id,
            engine=request.engine,
            attempt=request.attempts,
            will_fail=failed,
            duration=duration,
        )
        self._schedule(
            self.now + duration, "complete", (request, profile, failed)
        )
        return True

    def _handle_complete(self, request: Request, profile, failed: bool) -> None:
        self.busy -= 1
        breaker = self.breakers[request.engine]
        if failed:
            self.counters["attempt_failures"] += 1
            self._inc("attempt_failures", engine=request.engine)
            self._trace(
                "serve.fail",
                request=request.id,
                engine=request.engine,
                attempt=request.attempts,
            )
            breaker.on_failure(self.now)
            self._after_failure(request)
            return
        breaker.on_success(self.now)
        # the execution was keyed on the graph version current at
        # dispatch; a bump landing while it was in flight must not
        # relabel the result, or cache.fresh() would serve old-graph
        # values as fresh answers for the new version
        version = profile.key[1]
        entry = None
        if profile.stop_reason in _CERTIFIED_STOPS:
            entry = CacheEntry(
                key=cache_key(request.program, version, request.params),
                values=profile.values,
                computed_at=self.now,
                graph_version=version,
                stop_reason=profile.stop_reason,
                engine=request.engine,
            )
            self.cache.put(entry)
        if self.now > request.deadline:
            # the work finished and warmed the cache, but the tenant's
            # deadline is blown: this request is a TIMEOUT
            self._resolve(request, TIMEOUT, detail="completed-after-deadline")
            return
        if profile.repaired:
            detail = "repaired"
        elif profile.resumed:
            detail = "resumed"
        else:
            detail = "computed"
        self._resolve(
            request,
            OK,
            served_from="compute",
            graph_version=version,
            detail=detail,
            result_key=entry.key if entry is not None else None,
            values=profile.values,
        )

    def _after_failure(self, request: Request) -> None:
        if request.attempts >= self.config.max_attempts:
            self._degrade(request, "retries-exhausted")
            return
        backoff = (
            self.config.backoff_base
            * self.config.backoff_factor ** (request.attempts - 1)
        )
        backoff *= 1.0 + self.config.backoff_jitter * float(self.rng.random())
        retry_at = self.now + backoff
        if retry_at >= request.deadline:
            self._degrade(request, "deadline")
            return
        self.counters["retries"] += 1
        self._inc("retries", engine=request.engine)
        self._trace(
            "serve.retry",
            request=request.id,
            attempt=request.attempts,
            backoff=backoff,
        )
        self._states[request.id] = "waiting-retry"
        self._schedule(retry_at, "ready", request)

    def _handle_ready(self, request: Request) -> None:
        if self._states.get(request.id) in ("resolved", "executing"):
            return
        self._states[request.id] = "queued"
        self._make_runnable(request)

    def _handle_bump(self) -> None:
        self.graph_version += 1
        self.counters["version_bumps"] += 1
        self._trace("serve.version_bump", version=self.graph_version)

    def _pump(self) -> None:
        while self.busy < self.config.executors and self._runnable:
            _, _, request = heapq.heappop(self._runnable)
            if self._states.get(request.id) != "queued":
                continue
            self._dispatch(request)

    # -- the loop --------------------------------------------------------------
    def execute(self) -> ServeOutcome:
        for request in self.requests:
            self._schedule(request.arrival, "arrive", request)
        for bump_at in self.spec.version_bumps:
            self._schedule(bump_at, "bump", None)
        while self._events:
            at, _, kind, payload = heapq.heappop(self._events)
            self.now = max(self.now, at)
            if kind == "arrive":
                self._handle_arrival(payload)
            elif kind == "deadline":
                self._handle_deadline(payload)
            elif kind == "complete":
                self._handle_complete(*payload)
            elif kind == "ready":
                self._handle_ready(payload)
            elif kind == "wake":
                self.breakers[payload].poll(self.now)
                self._release_parked(payload)
            elif kind == "bump":
                self._handle_bump()
            self._pump()
        lost = [r.id for r in self.requests if r.id not in self.responses]
        if lost or self.busy:
            raise RuntimeError(
                f"serving loop lost requests: unresolved={lost}, busy={self.busy}"
            )
        responses = [self.responses[r.id] for r in self.requests]
        # the loop also drains deadline backstops of long-resolved
        # requests; the run's makespan is the last real resolution
        makespan = max((r.resolved_at for r in responses), default=0.0)
        return ServeOutcome(
            responses=responses,
            requests=self.requests,
            counters=dict(self.counters),
            breakers={
                name: breaker.snapshot()
                for name, breaker in sorted(self.breakers.items())
            },
            profiles=dict(self.service.profiles),
            makespan=makespan,
            seed=self.seed,
            final_graph_version=self.graph_version,
            static_costs={
                label: self.static_costs[label]
                for label in sorted(self.static_costs)
            },
        )
