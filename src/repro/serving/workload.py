"""Open-loop workload generation for the serving layer.

The generator is *open loop*: arrivals follow a seeded Poisson process
whose rate does not react to service backpressure (the Locust-style
stochastic pattern the ROADMAP points at), so overload genuinely
overloads and admission control has something to shed.  Everything --
interarrival gaps, tenant mix, program/engine/parameter choices -- is
drawn from one ``numpy`` generator in arrival order, making a workload a
pure function of its spec and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.compat import np

from repro.serving.request import Request, TenantSpec

#: default tenant population: a large best-effort tier with a small
#: queue and a paying tier with more headroom and a tighter SLO
DEFAULT_TENANTS = (
    TenantSpec("free", weight=3.0, queue_capacity=6, deadline=6.0, slo_latency=3.0),
    TenantSpec("pro", weight=1.0, queue_capacity=12, deadline=8.0, slo_latency=2.5),
)

#: default query mix: one selective program (min), one epsilon program
#: (sum), one exact additive program -- the chaos matrix's coverage --
#: plus the four semiring families (boolean, counting, k-tropical,
#: Viterbi) as minority traffic, so admission control, caching and
#: delta repair all see non-numeric and non-tropical carriers
DEFAULT_PROGRAM_MIX = (
    ("sssp", 0.35),
    ("pagerank", 0.25),
    ("dag_paths", 0.15),
    ("why_reach", 0.08),
    ("path_count", 0.07),
    ("kpaths", 0.05),
    ("reach_prob", 0.05),
)

#: default engine-backend mix the requests fan out over
DEFAULT_ENGINE_MIX = (("sync", 0.6), ("async", 0.4))

#: per-program parameter distributions; parameters are part of the
#: result-cache key.  ``eps_scale`` scales the program's termination
#: epsilon (a looser answer the tenant opted into).
DEFAULT_PARAMS_MIX = {
    "pagerank": (((), 0.7), ((("eps_scale", 4.0),), 0.3)),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the open-loop generator needs, besides the seed."""

    num_requests: int = 100
    #: mean arrival rate in requests per simulated second
    arrival_rate: float = 4.0
    #: a burst window multiplies the arrival rate -- the overload that
    #: makes admission control earn its keep
    burst_start: float = 1.0
    burst_end: float = 3.0
    burst_factor: float = 7.0
    tenants: tuple = DEFAULT_TENANTS
    program_mix: tuple = DEFAULT_PROGRAM_MIX
    engine_mix: tuple = DEFAULT_ENGINE_MIX
    params_mix: dict = field(default_factory=lambda: dict(DEFAULT_PARAMS_MIX))
    #: simulated times at which the graph version bumps (a mutation was
    #: ingested); cache entries for older versions become stale-only.
    #: The default bumps land one mid-burst (a recompute storm under
    #: overload) and one in the calm tail.
    version_bumps: tuple = (2.0, 6.0)

    def tenant(self, name: str) -> TenantSpec:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(name)

    def rate_at(self, t: float) -> float:
        if self.burst_factor > 1.0 and self.burst_start <= t < self.burst_end:
            return self.arrival_rate * self.burst_factor
        return self.arrival_rate


def _weighted_choice(rng, pairs):
    """Deterministic weighted draw from ``((item, weight), ...)``."""
    total = sum(weight for _, weight in pairs)
    point = float(rng.random()) * total
    acc = 0.0
    for item, weight in pairs:
        acc += weight
        if point < acc:
            return item
    return pairs[-1][0]


def generate_workload(spec: WorkloadSpec, seed: int = 7) -> list:
    """The request stream: a pure function of ``(spec, seed)``."""
    if spec.num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if spec.arrival_rate <= 0:
        raise ValueError("arrival_rate must be > 0")
    rng = np.random.default_rng(seed)
    tenant_pairs = tuple((t, t.weight) for t in spec.tenants)
    requests = []
    now = 0.0
    for request_id in range(spec.num_requests):
        now += float(rng.exponential(1.0 / spec.rate_at(now)))
        tenant = _weighted_choice(rng, tenant_pairs)
        program = _weighted_choice(rng, spec.program_mix)
        engine = _weighted_choice(rng, spec.engine_mix)
        params_pairs = spec.params_mix.get(program)
        params = _weighted_choice(rng, params_pairs) if params_pairs else ()
        requests.append(
            Request(
                id=request_id,
                tenant=tenant.name,
                program=program,
                engine=engine,
                params=tuple(params),
                arrival=now,
                deadline=now + tenant.deadline,
            )
        )
    return requests
