"""Top-level condition check: the entry point PowerLog runs on every program.

``check_source`` / ``check_program`` / ``check_analysis`` verify the MRA
conditions of Theorem 1 and return a :class:`CheckReport`.  The verdict
drives engine selection exactly as in the paper's Figure 2: satisfiable
programs run with MRA evaluation on the unified sync-async engine, all
others fall back to naive evaluation on the sync engine.
"""

from __future__ import annotations

from repro.datalog import Program, ProgramAnalysis, analyze, parse_program
from repro.checker.prover import prove_property1, prove_property2
from repro.checker.refuter import (
    property_result_from_refutation,
    refute_property1,
    refute_property2,
)
from repro.checker.report import CheckReport, PropertyResult, Status

#: aggregates whose carriers can genuinely overflow or lose precision
#: (counting, Viterbi-style probability products, k-tropical top-k);
#: programs over these carriers with a *proven* growth risk (RA351 from
#: the abstract interpreter) are denied the structural fast path and
#: must survive the full prover/refuter instead
_RANGE_GATED_AGGREGATES = frozenset({"sum", "count", "max", "topk"})


def _prescreen_report(analysis: ProgramAnalysis) -> "CheckReport | None":
    """Fast path: the Theorem-1 structural pre-screen of ``repro.analysis``.

    The pre-screen recognises trivially eligible ``F'`` shapes by pure
    pattern matching; when it fires, the prover/refuter machinery is
    skipped entirely.  Soundness (pre-screen eligible implies the full
    checker would also say MRA-satisfiable) is regression-tested over
    the whole program registry.

    Counting / Viterbi / k-tropical carriers get one extra gate: when
    the symbolic range analysis *proves* unbounded growth with nothing
    terminating the run (RA351), the fast path refuses to rubber-stamp
    the program and the full checker machinery runs instead.
    """
    from repro.analysis.prescreen import prescreen

    verdict = prescreen(analysis)
    if not verdict.eligible:
        return None
    aggregate = analysis.aggregate
    if aggregate.name in _RANGE_GATED_AGGREGATES:
        from repro.analysis.absint import analyze_symbolic_range

        if analyze_symbolic_range(analysis).code == "RA351":
            return None
    method = f"structural:prescreen({verdict.pattern})"
    property1 = PropertyResult(
        property_name="property1",
        status=Status.PROVED,
        method="predefined-operator",
        detail=(
            f"{aggregate.name} is a predefined commutative and associative "
            "operator (paper section 5.1)"
        ),
    )
    property2 = PropertyResult(
        property_name="property2",
        status=Status.PROVED,
        method=method,
        detail=verdict.detail,
    )
    return CheckReport(
        program_name=analysis.program.name,
        aggregate_name=aggregate.name,
        fprime_repr=repr(analysis.fprime),
        recursion_var=analysis.recursion_var,
        property1=property1,
        property2=property2,
        decomposable=True,
    )


def check_analysis(analysis: ProgramAnalysis) -> CheckReport:
    """Check the MRA conditions for an analysed program."""
    fast = _prescreen_report(analysis)
    if fast is not None:
        return fast

    aggregate = analysis.aggregate

    property1 = prove_property1(aggregate)
    if property1 is None:
        witness = refute_property1(aggregate)
        property1 = property_result_from_refutation(
            "property1", witness, "directed + 500 random trials"
        )

    # every recursive body carries its own F' (Program-2.b rules have
    # several); Property 2 must hold for each of them.
    property2 = None
    for spec in analysis.recursions:
        result = prove_property2(
            aggregate, spec.fprime, spec.recursion_var, analysis.domains
        )
        if result is None:
            witness = refute_property2(
                aggregate, spec.fprime, spec.recursion_var, analysis.domains
            )
            result = property_result_from_refutation(
                "property2", witness, "directed + 800 random trials"
            )
        if property2 is None or not result.holds:
            property2 = result
        if not result.holds:
            break

    return CheckReport(
        program_name=analysis.program.name,
        aggregate_name=aggregate.name,
        fprime_repr=repr(analysis.fprime),
        recursion_var=analysis.recursion_var,
        property1=property1,
        property2=property2,
        decomposable=True,
    )


def check_program(program: Program) -> CheckReport:
    """Analyse and check a parsed program."""
    return check_analysis(analyze(program))


def check_source(source: str, name: str = "program") -> CheckReport:
    """Parse, analyse and check Datalog source text."""
    return check_program(parse_program(source, name=name))
