"""Verdicts and reports produced by the condition checker."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Status(enum.Enum):
    """Outcome of a single property check.

    ``PROVED`` corresponds to Z3 answering ``unsat`` for the negated
    property (the property always holds); ``REFUTED`` to ``sat`` with a
    model (we additionally report the concrete counterexample);
    ``UNKNOWN`` to the solver giving up -- random testing found no
    counterexample but no structural proof exists either.
    """

    PROVED = "proved"
    REFUTED = "refuted"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class PropertyResult:
    """Result of checking one MRA property."""

    property_name: str
    status: Status
    #: how the verdict was reached ("structural:linear-homogeneous",
    #: "structural:monotone", "refuter:directed", "refuter:random", ...)
    method: str
    detail: str = ""
    counterexample: Optional[dict] = None

    @property
    def holds(self) -> bool:
        return self.status is Status.PROVED


@dataclass(frozen=True)
class CheckReport:
    """Full MRA-condition report for one program (one Table-1 row)."""

    program_name: str
    aggregate_name: str
    fprime_repr: str
    recursion_var: str
    property1: PropertyResult
    property2: PropertyResult
    #: the analyzer always separates the constant part C syntactically;
    #: this records that the decomposition G∘F(X) = G(F'(X) ∪ C) exists.
    decomposable: bool = True

    @property
    def mra_satisfiable(self) -> bool:
        """Can the program be executed with MRA evaluation (Theorem 1)?"""
        return (
            self.decomposable and self.property1.holds and self.property2.holds
        )

    def summary(self) -> str:
        verdict = "yes" if self.mra_satisfiable else "no"
        return (
            f"{self.program_name}: MRA sat. = {verdict} "
            f"(aggregate={self.aggregate_name}, "
            f"P1={self.property1.status.value}, "
            f"P2={self.property2.status.value} via {self.property2.method})"
        )

    def table_row(self) -> dict:
        """A Table-1 style row: program, MRA sat., aggregator."""
        return {
            "program": self.program_name,
            "mra_sat": "yes" if self.mra_satisfiable else "no",
            "aggregator": self.aggregate_name,
        }
