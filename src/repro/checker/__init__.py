"""Automatic MRA condition checker (paper sections 3.3 and 5.1).

PowerLog verifies, for a recursive aggregate program with aggregate ``G``
and non-aggregate ``F'``, the two conditions of Theorem 1:

* **Property 1**: ``G`` is commutative and associative
  (``G(X ∪ Y) = G(Y ∪ X)`` and ``G(X ∪ Y) = G(G(X) ∪ Y)``);
* **Property 2**: ``G ∘ F' ∘ G(X) = G ∘ F'(X)``.

The paper discharges these with the Z3 SMT solver.  Z3 is not available
in this offline environment, so this package substitutes a two-stage
verifier with the same interface and verdicts:

1. a *structural prover* (:mod:`repro.checker.prover`) that issues exact
   proofs for the program class the paper studies -- for additive
   aggregates (sum/count) Property 2 reduces to linear homogeneity of
   ``F'`` in the recursion variable, for selective aggregates (min/max)
   to monotonicity, both decided exactly by :mod:`repro.expr.analysis`;
2. a *refuter* (:mod:`repro.checker.refuter`) that searches for concrete
   counterexamples with exact rational arithmetic (directed vectors
   including the paper's own GCN counterexample, then randomised search
   respecting ``assume`` domains).

In addition, :mod:`repro.checker.smtlib` emits the Z3 SMT-LIB 2 script of
the paper's Figure 4 for any program, so the check can be replayed under
real Z3 when available.
"""

from repro.checker.report import CheckReport, PropertyResult, Status
from repro.checker.prover import prove_property1, prove_property2
from repro.checker.refuter import refute_property1, refute_property2, Counterexample
from repro.checker.smtlib import emit_property2_script
from repro.checker.check import check_program, check_analysis, check_source

__all__ = [
    "CheckReport",
    "PropertyResult",
    "Status",
    "prove_property1",
    "prove_property2",
    "refute_property1",
    "refute_property2",
    "Counterexample",
    "emit_property2_script",
    "check_program",
    "check_analysis",
    "check_source",
]
