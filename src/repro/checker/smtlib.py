"""Emission of Z3-compatible SMT-LIB 2 scripts (the paper's Figure 4).

The offline checker proves/refutes the MRA conditions itself, but for
auditability it also renders, for any analysed program, the exact script
the paper feeds to Z3: parameter declarations with their ``assume``
constraints, ``define-fun`` for ``g`` and ``f``, and the double-negated
``forall`` assertion for Property 2.  ``(check-sat)`` returning ``unsat``
under Z3 then certifies that Property 2 always holds.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Mapping

from repro.aggregates import Aggregate
from repro.expr import Expr, Interval
from repro.expr.terms import Add, Call, Const, Div, Mul, Neg, Sub, Var

_G_BODIES = {
    "sum": "(+ a b)",
    "count": "(+ a b)",
    "min": "(ite (<= a b) a b)",
    "max": "(ite (>= a b) a b)",
    "mean": "(/ (+ a b) 2.0)",
    # boolean/Viterbi ⊕ are max over their Real-embedded carriers
    "or": "(ite (>= a b) a b)",
    "best": "(ite (>= a b) a b)",
    # the k-tropical carrier is not Real; the script encodes its k=1
    # projection (the best component), which is the tropical min
    "topk": "(ite (<= a b) a b)",
}

#: exact primitives get SMT definitions; transcendental ones are declared
#: uninterpreted (Z3 cannot decide them anyway).
_FUNCTION_DEFS = {
    "relu": "(define-fun relu ((v Real)) Real (ite (> v 0) v 0))",
    "abs": "(define-fun abs_ ((v Real)) Real (ite (< v 0) (- v) v))",
}
_UNINTERPRETED = {"tanh", "exp", "log", "sigmoid"}
_RENAMED = {"abs": "abs_"}


def _sexpr_const(value: Fraction) -> str:
    if value < 0:
        return f"(- {_sexpr_const(-value)})"
    if value.denominator == 1:
        return f"{value.numerator}.0"
    return f"(/ {value.numerator}.0 {value.denominator}.0)"


def expr_to_sexpr(expr: Expr) -> str:
    """Render an expression as an SMT-LIB s-expression."""
    if isinstance(expr, Const):
        return _sexpr_const(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Add):
        return f"(+ {expr_to_sexpr(expr.left)} {expr_to_sexpr(expr.right)})"
    if isinstance(expr, Sub):
        return f"(- {expr_to_sexpr(expr.left)} {expr_to_sexpr(expr.right)})"
    if isinstance(expr, Mul):
        return f"(* {expr_to_sexpr(expr.left)} {expr_to_sexpr(expr.right)})"
    if isinstance(expr, Div):
        return f"(/ {expr_to_sexpr(expr.left)} {expr_to_sexpr(expr.right)})"
    if isinstance(expr, Neg):
        return f"(- {expr_to_sexpr(expr.operand)})"
    if isinstance(expr, Call):
        name = _RENAMED.get(expr.func, expr.func)
        args = " ".join(expr_to_sexpr(a) for a in expr.args)
        return f"({name} {args})"
    raise TypeError(f"cannot render {expr!r}")


def _called_functions(expr: Expr) -> set[str]:
    found: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Call):
            found.add(node.func)
        stack.extend(node.children())
    return found


def _domain_assertions(name: str, domain: Interval) -> list[str]:
    out = []
    if math.isfinite(domain.lo):
        op = ">" if domain.lo_strict else ">="
        out.append(f"(assert ({op} {name} {domain.lo:g}))")
    if math.isfinite(domain.hi):
        op = "<" if domain.hi_strict else "<="
        out.append(f"(assert ({op} {name} {domain.hi:g}))")
    return out


def emit_property2_script(
    aggregate: Aggregate,
    fprime: Expr,
    recursion_var: str,
    domains: Mapping[str, Interval] | None = None,
    program_name: str = "program",
) -> str:
    """Render the Figure-4 verification script for a program.

    The script asserts the *negation* of
    ``g(f(g(x1,y1)), f(g(x2,y2))) = g(g(g(f(x1),f(y1)),f(x2)),f(y2))``;
    Z3 answering ``unsat`` proves Property 2.
    """
    domains = domains or {}
    params = sorted(fprime.free_vars() - {recursion_var})
    lines = [f"; Property 2 check for {program_name} (paper Figure 4)"]
    for name in params:
        lines.append(f"(declare-const {name} Real)")
    for name in params:
        if name in domains:
            lines.extend(_domain_assertions(name, domains[name]))

    for func in sorted(_called_functions(fprime)):
        if func in _FUNCTION_DEFS:
            lines.append(_FUNCTION_DEFS[func])
        elif func in _UNINTERPRETED:
            lines.append(f"(declare-fun {func} (Real) Real)  ; uninterpreted")

    g_body = _G_BODIES[aggregate.name]
    lines.append(f"(define-fun g ((a Real) (b Real)) Real {g_body})")
    f_body = expr_to_sexpr(fprime.substitute({recursion_var: Var("a")}))
    lines.append(f"(define-fun f ((a Real)) Real {f_body})")

    lhs = "(g (f (g x1 y1)) (f (g x2 y2)))"
    rhs = "(g (g (g (f x1) (f y1)) (f x2)) (f y2))"
    lines.append(
        "(assert (not (forall ((x1 Real) (y1 Real) (x2 Real) (y2 Real))\n"
        f"    (= {lhs}\n       {rhs}))))"
    )
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
