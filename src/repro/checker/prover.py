"""Structural proofs of the MRA conditions.

For the program class of the paper (one aggregate over values produced by
an arithmetic ``F'``) the two properties of Theorem 1 have exact
structural characterisations:

* **Property 1** concerns only the aggregate ``G``.  In semiring terms
  it is the declaration that ``G`` folds the ``⊕`` of a commutative
  semiring; the built-in operators carry this declaration via their
  :class:`~repro.aggregates.semiring.Semiring` law flags (paper section
  5.1 predefines the min/max/sum/count/mean subset), which are
  *validated* by exhaustive rational testing plus the semiring-law
  property suite (and cross-checked by the refuter at check time).

* **Property 2** ``G ∘ F' ∘ G = G ∘ F'`` over bags of reals:

  - for additive ``G`` (sum/count -- invertible ``⊕``) it is equivalent
    to additivity of ``F'``: ``f(x + y) = f(x) + f(y)`` for all reals,
    i.e. ``F'`` is linear and homogeneous in the recursion variable
    (``f(x) = a·x`` where ``a`` may mention join parameters but not
    ``x``) -- exactly ``⊗``-distributivity over ``⊕``;
  - for selective ``G`` (min/max -- idempotent ``⊕`` over a natural
    order) it is equivalent to ``F'`` being monotone non-decreasing in
    the recursion variable, so that ``F'`` distributes over the
    selection (``f(min(x,y)) = min(f(x), f(y))``) -- exactly
    ``⊗``-monotonicity in the natural order.

Both reductions are decided exactly: linear homogeneity by rational
canonical forms (:func:`repro.expr.is_linear_homogeneous`) and
monotonicity by structural sign analysis under the program's ``assume``
domains (:func:`repro.expr.is_monotone_nondecreasing`).  A failure to
prove is *not* a refutation -- the caller then runs the refuter.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.aggregates import Aggregate, AggregateKind
from repro.checker.report import PropertyResult, Status
from repro.expr import (
    Expr,
    Interval,
    is_linear_homogeneous,
    is_monotone_nondecreasing,
)


def prove_property1(aggregate: Aggregate) -> Optional[PropertyResult]:
    """Prove Property 1 (commutativity + associativity) for ``G``.

    Returns a PROVED result for the predefined commutative-associative
    operators, ``None`` when no proof is available (refuter decides).
    """
    if aggregate.is_commutative and aggregate.is_associative:
        return PropertyResult(
            property_name="property1",
            status=Status.PROVED,
            method="predefined-operator",
            detail=(
                f"{aggregate.name} is a predefined commutative and associative "
                "operator (paper section 5.1)"
            ),
        )
    return None


def prove_property2(
    aggregate: Aggregate,
    fprime: Expr,
    recursion_var: str,
    domains: Mapping[str, Interval],
) -> Optional[PropertyResult]:
    """Prove Property 2 (``G∘F'∘G = G∘F'``) structurally.

    Returns a PROVED result or ``None`` when the structural argument does
    not apply (the refuter then searches for counterexamples).
    """
    if aggregate.kind is AggregateKind.ADDITIVE:
        if is_linear_homogeneous(fprime, recursion_var):
            return PropertyResult(
                property_name="property2",
                status=Status.PROVED,
                method="structural:linear-homogeneous",
                detail=(
                    f"F' = {fprime!r} is linear and homogeneous in "
                    f"{recursion_var!r}, hence additive: f(x+y) = f(x)+f(y), "
                    f"so {aggregate.name} can be pushed through F'"
                ),
            )
        return None
    if aggregate.kind is AggregateKind.SELECTIVE:
        if is_monotone_nondecreasing(fprime, recursion_var, domains):
            return PropertyResult(
                property_name="property2",
                status=Status.PROVED,
                method="structural:monotone",
                detail=(
                    f"F' = {fprime!r} is monotone non-decreasing in "
                    f"{recursion_var!r} under the declared domains, so it "
                    f"distributes over {aggregate.name}"
                ),
            )
        return None
    return None
