"""Counterexample search for the MRA conditions.

Where the structural prover cannot establish a property, this module
searches for concrete refutations of the Figure-4 identity

    g( f(g(x1, y1)), f(g(x2, y2)) )
        ==  g( g( g(f(x1), f(y1)), f(x2) ), f(y2) )

and of its two-input core ``g(f(g(x, y))) == g(f(x), f(y))``, over

* a grid of *directed vectors* that includes the paper's own GCN
  counterexample pattern ``(-1, 2, 1, -2)`` -- sign flips are exactly
  what breaks ``relu`` under ``sum``;
* randomised rational samples respecting the program's ``assume``
  domains.

Whenever ``F'`` uses only exact primitives, evaluation is carried out in
exact :class:`~fractions.Fraction` arithmetic, so a reported
counterexample is a genuine witness, never a rounding artefact.  For
``tanh``/``exp`` expressions a relative tolerance is used instead.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Optional

from repro.aggregates import Aggregate
from repro.checker.report import PropertyResult, Status
from repro.expr import EvalError, Expr, Interval, evaluate
from repro.expr.terms import Call, KNOWN_FUNCTIONS

#: directed test values; includes the paper's GCN counterexample pattern.
_DIRECTED_VALUES = [
    Fraction(-2),
    Fraction(-1),
    Fraction(-1, 2),
    Fraction(0),
    Fraction(1, 2),
    Fraction(1),
    Fraction(2),
    Fraction(3),
]

_FLOAT_TOLERANCE = 1e-7


@dataclass(frozen=True)
class Counterexample:
    """A concrete witness that a property fails."""

    inputs: dict
    lhs: object
    rhs: object

    def as_dict(self) -> dict:
        return {
            "inputs": {k: _pretty(v) for k, v in self.inputs.items()},
            "lhs": _pretty(self.lhs),
            "rhs": _pretty(self.rhs),
        }


def _pretty(value):
    if isinstance(value, Fraction):
        return float(value) if value.denominator != 1 else value.numerator
    return value


def _uses_inexact_primitives(expr: Expr) -> bool:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Call) and not KNOWN_FUNCTIONS[node.func]["exact"]:
            return True
        stack.extend(node.children())
    return False


def _values_differ(lhs, rhs, exact: bool) -> bool:
    if exact:
        return lhs != rhs
    scale = max(abs(float(lhs)), abs(float(rhs)), 1.0)
    return abs(float(lhs) - float(rhs)) > _FLOAT_TOLERANCE * scale


def _sample_in_domain(rng: random.Random, domain: Interval) -> Fraction:
    lo = max(domain.lo, -4.0)
    hi = min(domain.hi, 4.0)
    if lo > hi:  # domain entirely outside the sampling window
        lo = domain.lo if math.isfinite(domain.lo) else hi - 1.0
        hi = lo + 1.0
    raw = rng.uniform(lo, hi)
    value = Fraction(raw).limit_denominator(64)
    value = _clamp(value, domain)
    return value


def _clamp(value: Fraction, domain: Interval) -> Fraction:
    nudge = Fraction(1, 16)
    lo = Fraction(domain.lo) if math.isfinite(domain.lo) else None
    hi = Fraction(domain.hi) if math.isfinite(domain.hi) else None
    if lo is not None and (value < lo or (domain.lo_strict and value == lo)):
        value = lo + (nudge if domain.lo_strict else 0)
    if hi is not None and (value > hi or (domain.hi_strict and value == hi)):
        value = hi - (nudge if domain.hi_strict else 0)
    return value


def _in_domain(value: Fraction, domain: Interval) -> bool:
    v = float(value)
    if v < domain.lo or (domain.lo_strict and v == domain.lo):
        return False
    if v > domain.hi or (domain.hi_strict and v == domain.hi):
        return False
    return True


def refute_property1(
    aggregate: Aggregate, trials: int = 500, seed: int = 7
) -> Optional[Counterexample]:
    """Search for a commutativity/associativity counterexample of ``G``."""
    rng = random.Random(seed)
    g = aggregate.combine
    for a, b, c in itertools.product(_DIRECTED_VALUES, repeat=3):
        witness = _property1_violation(g, a, b, c)
        if witness is not None:
            return witness
    for _ in range(trials):
        a, b, c = (
            Fraction(rng.randint(-64, 64), rng.randint(1, 8)) for _ in range(3)
        )
        witness = _property1_violation(g, a, b, c)
        if witness is not None:
            return witness
    return None


def _property1_violation(g, a, b, c) -> Optional[Counterexample]:
    try:
        if g(a, b) != g(b, a):
            return Counterexample({"a": a, "b": b}, g(a, b), g(b, a))
        lhs = g(g(a, b), c)
        rhs = g(a, g(b, c))
        if lhs != rhs:
            return Counterexample({"a": a, "b": b, "c": c}, lhs, rhs)
    except (ZeroDivisionError, OverflowError):
        return None
    return None


def _figure4_sides(g, f, x1, y1, x2, y2):
    lhs = g(f(g(x1, y1)), f(g(x2, y2)))
    rhs = g(g(g(f(x1), f(y1)), f(x2)), f(y2))
    return lhs, rhs


def _core_sides(g, f, x, y):
    lhs = f(g(x, y))
    rhs = g(f(x), f(y))
    return lhs, rhs


def refute_property2(
    aggregate: Aggregate,
    fprime: Expr,
    recursion_var: str,
    domains: Mapping[str, Interval],
    trials: int = 800,
    seed: int = 11,
) -> Optional[Counterexample]:
    """Search for a Property-2 counterexample of ``G ∘ F' ∘ G = G ∘ F'``.

    Parameters other than the recursion variable are sampled within their
    declared domains and held fixed across both sides of the identity
    (they model per-edge constants of a single application of ``F'``).
    """
    params = sorted(fprime.free_vars() - {recursion_var})
    exact = not _uses_inexact_primitives(fprime)
    rng = random.Random(seed)
    g = aggregate.combine

    def make_f(param_env: dict):
        def f(x):
            env = dict(param_env)
            env[recursion_var] = x
            return evaluate(fprime, env)

        return f

    def param_candidates():
        # a deterministic default assignment first, then random ones
        default = {}
        for name in params:
            domain = domains.get(name, Interval.unbounded())
            default[name] = _clamp(Fraction(1), domain)
        yield default
        for _ in range(max(trials // 20, 10)):
            yield {
                name: _sample_in_domain(rng, domains.get(name, Interval.unbounded()))
                for name in params
            }

    recursion_domain = domains.get(recursion_var, Interval.unbounded())
    directed = [v for v in _DIRECTED_VALUES if _in_domain(v, recursion_domain)]

    for param_env in param_candidates():
        f = make_f(param_env)
        # directed sweep on the two-input core
        for x, y in itertools.product(directed, repeat=2):
            witness = _try_core(g, f, x, y, param_env, exact)
            if witness is not None:
                return witness
        # directed sweep on the paper's 4-input form (coarser grid)
        coarse = [v for v in directed if v.denominator == 1]
        for x1, y1, x2, y2 in itertools.product(coarse, repeat=4):
            witness = _try_figure4(g, f, x1, y1, x2, y2, param_env, exact)
            if witness is not None:
                return witness
        # randomised search
        for _ in range(trials // 10):
            x, y = (_sample_in_domain(rng, recursion_domain) for _ in range(2))
            witness = _try_core(g, f, x, y, param_env, exact)
            if witness is not None:
                return witness
    return None


def _try_core(g, f, x, y, param_env, exact) -> Optional[Counterexample]:
    try:
        lhs, rhs = _core_sides(g, f, x, y)
    except (EvalError, ZeroDivisionError, OverflowError, ValueError):
        return None
    if _values_differ(lhs, rhs, exact):
        inputs = {"x": x, "y": y, **param_env}
        return Counterexample(inputs, lhs, rhs)
    return None


def _try_figure4(g, f, x1, y1, x2, y2, param_env, exact) -> Optional[Counterexample]:
    try:
        lhs, rhs = _figure4_sides(g, f, x1, y1, x2, y2)
    except (EvalError, ZeroDivisionError, OverflowError, ValueError):
        return None
    if _values_differ(lhs, rhs, exact):
        inputs = {"x1": x1, "y1": y1, "x2": x2, "y2": y2, **param_env}
        return Counterexample(inputs, lhs, rhs)
    return None


def property_result_from_refutation(
    property_name: str, witness: Optional[Counterexample], trials_note: str
) -> PropertyResult:
    """Wrap a refutation search outcome as a :class:`PropertyResult`."""
    if witness is not None:
        return PropertyResult(
            property_name=property_name,
            status=Status.REFUTED,
            method="refuter:counterexample",
            detail=f"counterexample found: {witness.as_dict()}",
            counterexample=witness.as_dict(),
        )
    return PropertyResult(
        property_name=property_name,
        status=Status.UNKNOWN,
        method="refuter:exhausted",
        detail=f"no counterexample found ({trials_note}); no structural proof either",
    )
