"""Recovery-correctness harness: chaotic runs must match fault-free ones.

The harness runs a registered program twice on the same engine -- once
fault-free to establish the reference fixpoint (and the reference
simulated duration, used to place crashes *before* convergence), once
under a :class:`~repro.distributed.chaos.FaultSchedule` -- and asserts
agreement:

* **idempotent** aggregates (min/max) must agree *bit for bit*: every
  re-delivered or replayed delta is absorbed by ``g`` (Theorem 3), so
  chaos may cost time but never precision;
* **additive** aggregates (sum/count) must agree within a float
  tolerance: epsilon-terminated programs may legitimately stop at a
  slightly different point of the same convergent series.

``run_matrix`` sweeps the acceptance matrix of ISSUE-grade coverage --
one selective program, one exact sum program, one non-monotonic
epsilon program, on both the sync and async engines -- under a schedule
that crashes a worker, drops >= 1% of messages and duplicates
deliveries, all deterministically from one seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.distributed.aap import AAPEngine
from repro.distributed.async_engine import AsyncEngine
from repro.distributed.chaos import FaultSchedule, WorkerCrash
from repro.distributed.cluster import ClusterConfig
from repro.distributed.fault import Checkpointer
from repro.distributed.sync_engine import SyncEngine
from repro.distributed.unified import UnifiedEngine
from repro.graphs import random_dag, rmat
from repro.programs import get_program

#: engines the harness can subject to faults (naive sync is excluded:
#: it has no delta state worth protecting and rejects fault schedules)
HARNESS_ENGINES = ("sync", "async", "unified", "aap")

#: the default acceptance matrix: one selective (min), one exact
#: additive (count-as-sum), one non-monotonic epsilon program (sum)
DEFAULT_PROGRAMS = ("sssp", "dag_paths", "pagerank")

#: float tolerance for additive aggregates (idempotent ones use 0.0)
ADDITIVE_TOLERANCE = 5e-3


@dataclass
class ChaosReport:
    """Outcome of one chaotic run compared against its reference."""

    program: str
    engine: str
    schedule: str
    #: True when every key agrees within ``tolerance``
    agreed: bool
    #: largest |chaotic - reference| over all keys (inf on missing keys)
    max_error: float
    #: 0.0 for idempotent aggregates (bit-for-bit), float tol otherwise
    tolerance: float
    reference_seconds: float
    chaotic_seconds: float
    #: fault/recovery counters from the chaotic run
    stats: dict = field(default_factory=dict)
    reference_stop: str = ""
    chaotic_stop: str = ""

    @property
    def overhead(self) -> float:
        """Simulated-time cost of surviving the schedule (ratio - 1)."""
        if self.reference_seconds <= 0:
            return 0.0
        return self.chaotic_seconds / self.reference_seconds - 1.0

    def to_dict(self) -> dict:
        """Machine-readable form for ``repro chaos --format json``."""
        return {
            "program": self.program,
            "engine": self.engine,
            "schedule": self.schedule,
            "agreed": self.agreed,
            # strict JSON has no Infinity; missing keys surface as null
            "max_error": self.max_error if math.isfinite(self.max_error) else None,
            "tolerance": self.tolerance,
            "reference_seconds": self.reference_seconds,
            "chaotic_seconds": self.chaotic_seconds,
            "overhead": self.overhead,
            "stats": dict(sorted(self.stats.items())),
            "reference_stop": self.reference_stop,
            "chaotic_stop": self.chaotic_stop,
        }

    def row(self) -> str:
        verdict = "ok" if self.agreed else "MISMATCH"
        return (
            f"{self.program:12s} {self.engine:8s} {verdict:8s} "
            f"max_err={self.max_error:.2e} (tol {self.tolerance:.0e})  "
            f"time x{1.0 + self.overhead:.2f}  "
            f"crashes={self.stats.get('crashes', 0)} "
            f"drops={self.stats.get('dropped_messages', 0)} "
            f"dups={self.stats.get('duplicated_messages', 0)} "
            f"retrans={self.stats.get('retransmits', 0)} "
            f"replayed={self.stats.get('replayed_tuples', 0)} "
            f"rollbacks={self.stats.get('rollbacks', 0)}"
        )


def schedule_for(
    reference_seconds: float,
    num_workers: int,
    seed: int = 7,
    crash_fractions: tuple = (0.35,),
    drop_rate: float = 0.02,
    duplicate_rate: float = 0.01,
    reorder_jitter: float = 1e-4,
    restart_after: float = 0.005,
) -> FaultSchedule:
    """Build a schedule whose crashes land *during* the reference run.

    Crash times are fractions of the fault-free simulated duration, so
    the crash provably fires before convergence instead of after the
    heap drains; crashed workers rotate (1, 2, ...) to avoid always
    killing the shard that owns the seed vertex.
    """
    crashes = tuple(
        WorkerCrash(
            worker=1 + index % max(1, num_workers - 1),
            at=max(1e-6, reference_seconds * fraction),
            restart_after=restart_after,
        )
        for index, fraction in enumerate(crash_fractions)
    )
    return FaultSchedule(
        crashes=crashes,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        reorder_jitter=reorder_jitter,
        seed=seed,
    )


def _build_engine(engine: str, plan, cluster, checkpoint_dir, run_name, backend=None):
    if engine == "sync":
        if checkpoint_dir is not None:
            return SyncEngine(
                plan,
                cluster,
                checkpointer=Checkpointer(checkpoint_dir),
                checkpoint_every=4,
                run_name=run_name,
                backend=backend,
            )
        return SyncEngine(plan, cluster, backend=backend)
    factory = {"async": AsyncEngine, "unified": UnifiedEngine, "aap": AAPEngine}
    if engine not in factory:
        raise ValueError(
            f"unknown harness engine {engine!r} (choose from {HARNESS_ENGINES})"
        )
    if checkpoint_dir is not None:
        return factory[engine](
            plan,
            cluster,
            checkpointer=Checkpointer(checkpoint_dir),
            run_name=run_name,
            backend=backend,
        )
    return factory[engine](plan, cluster, backend=backend)


def default_graph(program_name: str, seed: int = 7):
    """A small graph the program is well-defined on.

    Path-counting programs need acyclic inputs (infinite path counts
    otherwise), pair-domain programs need tiny graphs; everything else
    runs on a power-law digraph.
    """
    spec = get_program(program_name)
    if program_name == "path_count":
        # multiplicity products grow fast; a smaller DAG keeps counts
        # below 2^53 so float64 backends match the exact python fold
        return random_dag(40, 120, seed=seed, name="chaos-dag")
    if program_name in ("dag_paths", "cost", "viterbi"):
        return random_dag(50, 160, seed=seed, name="chaos-dag")
    if spec.key_domain == "pair":
        return rmat(14, 40, seed=seed, name="chaos-pair")
    return rmat(60, 280, seed=seed, name="chaos")


def run_chaos(
    program_name: str,
    engine: str = "sync",
    graph=None,
    cluster: Optional[ClusterConfig] = None,
    schedule: Optional[FaultSchedule] = None,
    seed: int = 7,
    checkpoint_dir: Optional[str] = None,
    tolerance: Optional[float] = None,
    schedule_kwargs: Optional[dict] = None,
    backend: Optional[str] = None,
) -> ChaosReport:
    """Compare a chaotic run against the fault-free reference.

    When ``schedule`` is omitted, :func:`schedule_for` builds one from
    the reference run's duration (>= 1 crash, 2% drops, 1% duplicates);
    ``schedule_kwargs`` overrides its knobs (``drop_rate``,
    ``crash_fractions``, ...).  ``checkpoint_dir`` enables disk
    checkpoints for the chaotic run; it must not already hold
    checkpoints under the derived run name, or the engine's resume
    semantics would skip straight to the old fixpoint.  Fresh plans are
    compiled per run so the two executions share nothing.
    """
    spec = get_program(program_name)
    if graph is None:
        graph = default_graph(program_name, seed=seed)
    cluster = cluster or ClusterConfig(num_workers=4)

    reference = _build_engine(
        engine, spec.plan(graph), cluster, None, "chaos-ref", backend=backend
    ).run()

    if schedule is None:
        schedule = schedule_for(
            reference.simulated_seconds,
            cluster.num_workers,
            seed=seed,
            **(schedule_kwargs or {}),
        )
    aggregate = spec.analysis().aggregate
    if tolerance is None:
        tolerance = 0.0 if aggregate.is_idempotent else ADDITIVE_TOLERANCE

    run_name = f"chaos-{program_name}-{engine}-{schedule.seed}"
    chaotic = _build_engine(
        engine,
        spec.plan(graph),
        cluster.with_faults(schedule),
        checkpoint_dir,
        run_name,
        backend=backend,
    ).run()

    max_error = 0.0
    keys = set(reference.values) | set(chaotic.values)
    for key in keys:
        ref_value = reference.values.get(key)
        got_value = chaotic.values.get(key)
        if ref_value is None or got_value is None:
            max_error = float("inf")
            break
        max_error = max(max_error, abs(float(got_value) - float(ref_value)))

    stats = chaotic.faults.snapshot() if chaotic.faults is not None else {}
    return ChaosReport(
        program=program_name,
        engine=engine,
        schedule=schedule.describe(),
        agreed=max_error <= tolerance,
        max_error=max_error,
        tolerance=tolerance,
        reference_seconds=reference.simulated_seconds or 0.0,
        chaotic_seconds=chaotic.simulated_seconds or 0.0,
        stats=stats,
        reference_stop=reference.stop_reason,
        chaotic_stop=chaotic.stop_reason,
    )


def run_matrix(
    programs: tuple = DEFAULT_PROGRAMS,
    engines: tuple = ("sync", "async"),
    graph=None,
    num_workers: int = 4,
    seed: int = 7,
    checkpoint_dir: Optional[str] = None,
    schedule_kwargs: Optional[dict] = None,
    backend: Optional[str] = None,
) -> list:
    """The acceptance matrix: every program x engine pair must agree."""
    reports = []
    for program_name in programs:
        for engine in engines:
            reports.append(
                run_chaos(
                    program_name,
                    engine=engine,
                    graph=graph,
                    cluster=ClusterConfig(num_workers=num_workers),
                    seed=seed,
                    checkpoint_dir=checkpoint_dir,
                    schedule_kwargs=schedule_kwargs,
                    backend=backend,
                )
            )
    return reports


def format_matrix(reports: list) -> str:
    lines = [
        "chaos acceptance matrix (chaotic run vs fault-free reference)",
        f"{'program':12s} {'engine':8s} {'verdict':8s} detail",
    ]
    lines.extend(report.row() for report in reports)
    failed = sum(1 for report in reports if not report.agreed)
    lines.append(
        f"{len(reports) - failed}/{len(reports)} agreed"
        + (f" -- {failed} MISMATCHED" if failed else "")
    )
    return "\n".join(lines)
