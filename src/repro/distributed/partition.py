"""Key partitioning across workers.

Python's built-in ``hash`` is salted per process, so a dedicated stable
hash keeps partitioning -- and therefore every simulated run --
deterministic across processes and sessions.
"""

from __future__ import annotations

import zlib
from typing import Iterable


def stable_hash(key) -> int:
    """A process-independent hash for ints, floats, strings and tuples."""
    if isinstance(key, int):
        # splitmix-style mixing so consecutive vertex ids spread out
        h = (key ^ (key >> 16)) * 0x45D9F3B
        h = (h ^ (h >> 16)) * 0x45D9F3B
        return (h ^ (h >> 16)) & 0x7FFFFFFF
    if isinstance(key, tuple):
        h = 0x811C9DC5
        for part in key:
            h = (h * 0x01000193) ^ stable_hash(part)
        return h & 0x7FFFFFFF
    return zlib.crc32(repr(key).encode("utf-8")) & 0x7FFFFFFF


class HashPartitioner:
    """Assign keys to workers by stable hash."""

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers

    def owner(self, key) -> int:
        return stable_hash(key) % self.num_workers

    def split(self, keys: Iterable) -> list[list]:
        """Partition a key collection into per-worker lists."""
        shards: list[list] = [[] for _ in range(self.num_workers)]
        for key in keys:
            shards[self.owner(key)].append(key)
        return shards

    def imbalance(self, keys: Iterable) -> float:
        """max/mean shard size: 1.0 is perfectly balanced."""
        sizes = [len(s) for s in self.split(keys)]
        mean = sum(sizes) / len(sizes) if sizes else 0
        return (max(sizes) / mean) if mean else 0.0
