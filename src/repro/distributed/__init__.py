"""Distributed runtime: a deterministic discrete-event cluster simulator.

The paper evaluates PowerLog on a 17-node Aliyun cluster with OpenMPI
message passing (section 6.2).  This package substitutes a simulator that
*actually executes* the compiled plans -- results are bit-identical to
the single-node engines and are checked against them in tests -- while
accounting simulated time from genuinely measured work:

* per-tuple compute cost on each worker (scaled by per-worker speed),
* per-message latency plus per-tuple bandwidth cost on the network,
* per-superstep barrier cost (and straggler waits) for sync execution,
* per-superstep job overhead for systems that schedule each iteration as
  a job (the BigDatalog/Spark regime).

Engines:

* :class:`~repro.distributed.sync_engine.SyncEngine` -- BSP (section 4's
  strict ``G ∘ F'`` sequence), in ``incremental`` (MRA / semi-naive) or
  ``naive`` (full recomputation) mode, with optional delta-stepping for
  selective aggregates (the SociaLite SSSP optimisation of section 6.3);
* :class:`~repro.distributed.async_engine.AsyncEngine` -- event-driven
  asynchronous MRA (Definition 2), with per-destination message buffers;
* :class:`~repro.distributed.unified.UnifiedEngine` -- the paper's
  unified sync-async engine (section 5.3): the async engine plus
  adaptive buffer sizing and the section 5.4 importance threshold;
* :class:`~repro.distributed.aap.AAPEngine` -- the Grape+ adaptive
  asynchronous parallel model the paper compares against (section 6.5).
"""

from repro.distributed.cluster import ClusterConfig, CostModel
from repro.distributed.partition import HashPartitioner, stable_hash
from repro.distributed.buffers import (
    AdaptiveBuffer,
    BufferPolicy,
    FixedBuffer,
    RetransmitBuffer,
)
from repro.distributed.chaos import (
    FaultInjector,
    FaultSchedule,
    FaultStats,
    Partition,
    Straggler,
    WorkerCrash,
)
from repro.distributed.sync_engine import SyncEngine
from repro.distributed.async_engine import AsyncEngine
from repro.distributed.unified import UnifiedEngine
from repro.distributed.aap import AAPEngine
from repro.distributed.fault import (
    Checkpointer,
    CheckpointCorruptionError,
    CheckpointMismatchError,
)
from repro.distributed.chaos_harness import (
    ChaosReport,
    format_matrix,
    run_chaos,
    run_matrix,
    schedule_for,
)

__all__ = [
    "ClusterConfig",
    "CostModel",
    "HashPartitioner",
    "stable_hash",
    "AdaptiveBuffer",
    "BufferPolicy",
    "FixedBuffer",
    "RetransmitBuffer",
    "FaultInjector",
    "FaultSchedule",
    "FaultStats",
    "Partition",
    "Straggler",
    "WorkerCrash",
    "SyncEngine",
    "AsyncEngine",
    "UnifiedEngine",
    "AAPEngine",
    "Checkpointer",
    "CheckpointCorruptionError",
    "CheckpointMismatchError",
    "ChaosReport",
    "run_chaos",
    "run_matrix",
    "schedule_for",
    "format_matrix",
]
