"""Deterministic fault injection for the distributed engines.

The discrete-event simulators in :mod:`repro.distributed` make failure a
first-class, *testable* input: a :class:`FaultSchedule` hung off
:class:`~repro.distributed.cluster.ClusterConfig` describes worker
crashes, message drops/duplications/reordering, straggler slowdowns and
transient network partitions, all driven by one seeded RNG so a chaotic
run is exactly reproducible.

The recovery machinery that survives the injected faults lives in the
engines themselves (ack/timeout/retransmit on top of
:class:`~repro.distributed.buffers.RetransmitBuffer`, per-sender
sequence-number dedup, checkpoint restore and delta replay); this module
only decides *what* goes wrong and *when*, and counts what happened so
:class:`~repro.engine.result.EvalResult` can report the overhead.

Why the injected faults are survivable at all is Theorem 3 of the paper:
every delta flows through the aggregate's ``g``, so re-derived or
re-delivered deltas are absorbed for idempotent aggregates (min/max),
while non-idempotent ones (sum/count) additionally need exactly-once
delivery (sequence numbers) and globally consistent restore points.
DESIGN.md ("Fault model and recovery guarantees") maps each fault class
to the condition that makes it recoverable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.runtime.compat import np

from repro.obs import ensure_obs


@dataclass(frozen=True)
class WorkerCrash:
    """Crash worker ``worker`` at simulated time ``at``; restart later.

    The crash loses everything volatile on the worker: its MonoTable
    shard, its send buffers, its retransmit state and its dedup state.
    ``restart_after`` simulated seconds later the worker comes back and
    recovery runs (checkpoint restore + replay, or a coordinated
    rollback, depending on the aggregate class).
    """

    worker: int
    at: float
    restart_after: float = 0.02


@dataclass(frozen=True)
class Straggler:
    """Worker ``worker`` computes ``factor`` times slower in a window."""

    worker: int
    factor: float
    start: float = 0.0
    end: float = math.inf


@dataclass(frozen=True)
class Partition:
    """Messages between workers ``a`` and ``b`` are lost in a window.

    Both directions drop; the retransmit path re-delivers once the
    window closes, so a partition behaves like a burst of correlated
    message loss.
    """

    a: int
    b: int
    start: float
    end: float


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that will go wrong during one simulated run."""

    #: scheduled worker crashes (each must restart; a permanent crash
    #: cannot converge and is rejected by :meth:`validate`)
    crashes: tuple = ()
    #: i.i.d. probability that any message transmission is lost
    drop_rate: float = 0.0
    #: i.i.d. probability that a delivered message arrives twice
    duplicate_rate: float = 0.0
    #: extra uniform(0, jitter) seconds of delivery latency, enough to
    #: reorder messages that left a worker back to back
    reorder_jitter: float = 0.0
    stragglers: tuple = ()
    partitions: tuple = ()
    #: seed of the injector's RNG; the same schedule + seed + program
    #: reproduces the identical chaotic execution
    seed: int = 7
    #: base ack timeout before a message is retransmitted
    retransmit_timeout: float = 5e-3
    #: exponential backoff factor between retransmit attempts
    retransmit_backoff: float = 2.0
    #: cap on the backed-off retransmit timeout
    max_retransmit_timeout: float = 8e-2

    def is_null(self) -> bool:
        """True when the schedule injects nothing at all."""
        return (
            not self.crashes
            and not self.stragglers
            and not self.partitions
            and self.drop_rate <= 0
            and self.duplicate_rate <= 0
            and self.reorder_jitter <= 0
        )

    def validate(self, num_workers: int) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ValueError(
                f"duplicate_rate must be in [0, 1), got {self.duplicate_rate}"
            )
        for crash in self.crashes:
            if not 0 <= crash.worker < num_workers:
                raise ValueError(
                    f"crash worker {crash.worker} outside 0..{num_workers - 1}"
                )
            if crash.restart_after <= 0:
                raise ValueError(
                    "crashes must restart (restart_after > 0): a permanently "
                    "dead worker cannot reach the fixpoint"
                )
        for straggler in self.stragglers:
            if straggler.factor < 1.0:
                raise ValueError("straggler factor must be >= 1")
            if not 0 <= straggler.worker < num_workers:
                raise ValueError(f"straggler worker {straggler.worker} out of range")
        for partition in self.partitions:
            if partition.a == partition.b:
                raise ValueError("a partition needs two distinct workers")
            for endpoint in (partition.a, partition.b):
                if not 0 <= endpoint < num_workers:
                    raise ValueError(f"partition worker {endpoint} out of range")

    def with_seed(self, seed: int) -> "FaultSchedule":
        return replace(self, seed=seed)

    def describe(self) -> str:
        parts = []
        if self.crashes:
            parts.append(
                "crashes=["
                + ", ".join(f"w{c.worker}@{c.at:.3g}s" for c in self.crashes)
                + "]"
            )
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:.1%}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:.1%}")
        if self.reorder_jitter:
            parts.append(f"jitter={self.reorder_jitter:.3g}s")
        if self.stragglers:
            parts.append(
                "stragglers=["
                + ", ".join(f"w{s.worker}x{s.factor:g}" for s in self.stragglers)
                + "]"
            )
        if self.partitions:
            parts.append(
                "partitions=["
                + ", ".join(
                    f"w{p.a}|w{p.b}@[{p.start:.3g},{p.end:.3g})"
                    for p in self.partitions
                )
                + "]"
            )
        parts.append(f"seed={self.seed}")
        return "FaultSchedule(" + ", ".join(parts) + ")"


@dataclass
class FaultStats:
    """What the injector did and what recovery cost, per run.

    Attached to :class:`~repro.engine.result.EvalResult` as ``faults`` so
    benchmarks can chart fault-tolerance overhead next to the usual work
    counters.
    """

    #: worker crashes actually fired
    crashes: int = 0
    #: completed recoveries (checkpoint restore + replay, or rollback)
    recoveries: int = 0
    #: coordinated global rollbacks (non-idempotent aggregates)
    rollbacks: int = 0
    #: transmissions lost (random drops, partitions, down receivers)
    dropped_messages: int = 0
    #: deliberate duplicate deliveries injected
    duplicated_messages: int = 0
    #: duplicate deliveries absorbed (sequence dedup or g-combining)
    duplicates_absorbed: int = 0
    #: ack-timeout retransmissions
    retransmits: int = 0
    #: deltas re-derived during crash recovery replay
    replayed_tuples: int = 0
    #: deliveries that drew extra reordering latency
    reordered_messages: int = 0
    #: checkpoints/snapshots taken while faults were active
    checkpoints: int = 0

    def snapshot(self) -> dict:
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "rollbacks": self.rollbacks,
            "dropped_messages": self.dropped_messages,
            "duplicated_messages": self.duplicated_messages,
            "duplicates_absorbed": self.duplicates_absorbed,
            "retransmits": self.retransmits,
            "replayed_tuples": self.replayed_tuples,
            "reordered_messages": self.reordered_messages,
            "checkpoints": self.checkpoints,
        }

    def __repr__(self):
        fields = ", ".join(f"{k}={v}" for k, v in self.snapshot().items() if v)
        return f"FaultStats({fields or 'clean'})"


class FaultInjector:
    """Seeded source of fault decisions for one engine run.

    All randomness comes from one ``numpy`` generator consumed in event
    order, so a deterministic event loop plus a fixed schedule yields a
    bit-identical chaotic execution.

    When an :class:`~repro.obs.Observability` handle is attached, every
    :class:`FaultStats` increment flows through :meth:`record`, which
    bumps the counter *and* emits the matching ``fault.<counter>`` trace
    event in one call -- the invariant behind
    :func:`repro.obs.aggregate_fault_events` matching
    ``FaultStats.snapshot()`` exactly.
    """

    def __init__(self, schedule: FaultSchedule, num_workers: int, obs=None):
        schedule.validate(num_workers)
        self.schedule = schedule
        self.num_workers = num_workers
        self._rng = np.random.default_rng(schedule.seed)
        self.stats = FaultStats()
        self.obs = ensure_obs(obs)

    def record(self, name: str, t=None, n: int = 1, **fields) -> None:
        """Increment ``stats.<name>`` by ``n`` and trace the injection.

        ``t`` is the simulated time when the caller knows it (engines
        always do; the injector's own draws sometimes don't).
        """
        setattr(self.stats, name, getattr(self.stats, name) + n)
        if self.obs.enabled:
            self.obs.trace.emit(f"fault.{name}", t=t, n=n, **fields)

    # -- network fates ---------------------------------------------------------
    def partitioned(self, a: int, b: int, now: float) -> bool:
        for partition in self.schedule.partitions:
            if partition.start <= now < partition.end and {a, b} == {
                partition.a,
                partition.b,
            }:
                return True
        return False

    def drops(self, sender: int, target: int, now: float) -> bool:
        """Is this transmission lost (random drop or active partition)?"""
        if self.partitioned(sender, target, now):
            return True
        rate = self.schedule.drop_rate
        return rate > 0 and float(self._rng.random()) < rate

    def duplicates(self) -> bool:
        rate = self.schedule.duplicate_rate
        return rate > 0 and float(self._rng.random()) < rate

    def extra_latency(self) -> float:
        """Extra delivery delay; non-zero draws count as reorderings."""
        jitter = self.schedule.reorder_jitter
        if jitter <= 0:
            return 0.0
        extra = jitter * float(self._rng.random())
        if extra > 0:
            self.record("reordered_messages", extra=extra)
        return extra

    # -- compute fates ---------------------------------------------------------
    def slowdown(self, worker: int, now: float) -> float:
        """Multiplicative compute slowdown for a worker at a time."""
        factor = 1.0
        for straggler in self.schedule.stragglers:
            if straggler.worker == worker and straggler.start <= now < straggler.end:
                factor = max(factor, straggler.factor)
        return factor

    # -- retransmit tuning -----------------------------------------------------
    def retransmit_timeout(self, attempt: int) -> float:
        """Exponential-backoff ack timeout for the given attempt (1-based)."""
        timeout = self.schedule.retransmit_timeout * (
            self.schedule.retransmit_backoff ** max(0, attempt - 1)
        )
        return min(timeout, self.schedule.max_retransmit_timeout)


def injector_for(cluster, obs=None) -> "FaultInjector | None":
    """Build the injector for a cluster, or ``None`` for fault-free runs."""
    schedule = getattr(cluster, "faults", None)
    if schedule is None or schedule.is_null():
        return None
    return FaultInjector(schedule, cluster.num_workers, obs=obs)
