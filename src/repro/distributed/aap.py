"""The Adaptive Asynchronous Parallel (AAP) model of Grape+ (section 6.5).

The paper compares its unified engine with AAP [Fan et al., SIGMOD'18]
and, since Grape+ was not released, implements AAP from the paper's
description -- as do we.  The defining differences the paper names:

* AAP is *block-based*: "each worker decides its own execution mode by
  analyzing the sizes of in-messages" -- a worker flooded by incoming
  updates switches towards batch (SP/SSP-like) processing, a starved
  worker streams eagerly (AP-like);
* AAP's network thread "communicates with others via a fix-sized
  buffer", whereas the unified engine adapts message sizes from the
  locally *generated* updates.

This implementation realises both: fixed-size message buffers, plus a
per-worker dynamic batch limit driven by the ratio of received to
processed update volume.
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.async_engine import AsyncEngine
from repro.distributed.buffers import BufferPolicy
from repro.distributed.cluster import ClusterConfig
from repro.engine.plan import CompiledPlan
from repro.engine.termination import TerminationSpec


class AAPEngine(AsyncEngine):
    """Grape+-style adaptive asynchronous parallel execution."""

    engine_name = "mra+aap"

    def __init__(
        self,
        plan: CompiledPlan,
        cluster: Optional[ClusterConfig] = None,
        fixed_buffer_size: float = 256.0,
        stream_batch: int = 64,
        block_batch: int = 512,
        termination: Optional[TerminationSpec] = None,
        checkpointer=None,
        checkpoint_interval: float = 0.0,
        run_name: str = "aap-run",
        recovery: str = "auto",
        obs=None,
        backend: Optional[str] = None,
    ):
        policy = BufferPolicy(
            initial_beta=fixed_buffer_size, adaptive=False
        )
        super().__init__(
            plan,
            cluster=cluster,
            buffer_policy=policy,
            batch_size=stream_batch,
            termination=termination,
            checkpointer=checkpointer,
            checkpoint_interval=checkpoint_interval,
            run_name=run_name,
            recovery=recovery,
            obs=obs,
            backend=backend,
        )
        self.stream_batch = stream_batch
        self.block_batch = block_batch
        self._received: dict[int, int] = {}
        self._processed: dict[int, int] = {}
        self._batch: dict[int, Optional[int]] = {}

    def _batch_limit(self, worker: int) -> Optional[int]:
        return self._batch.get(worker, self.stream_batch)

    def _observe_delivery(self, worker: int, payload_size: int) -> None:
        self._received[worker] = self._received.get(worker, 0) + payload_size
        self._adapt(worker)

    def _observe_processing(self, worker: int, processed: int) -> None:
        self._processed[worker] = self._processed.get(worker, 0) + processed
        self._adapt(worker)

    def _adapt(self, worker: int) -> None:
        """Mode switch: flooded workers batch up, starved workers stream."""
        received = self._received.get(worker, 0)
        processed = self._processed.get(worker, 0) + 1
        ratio = received / processed
        if ratio > 2.0:
            mode_batch: Optional[int] = None  # SP/SSP-like: full sweeps
        elif ratio > 0.5:
            mode_batch = self.block_batch
        else:
            mode_batch = self.stream_batch  # AP-like: stream eagerly
        old = self._batch.get(worker, self.stream_batch)
        self._batch[worker] = mode_batch
        if self.obs.enabled and mode_batch != old:
            mode = (
                "sweep" if mode_batch is None
                else "block" if mode_batch == self.block_batch
                else "stream"
            )
            self.obs.trace.emit(
                "aap.mode", worker=worker, mode=mode, ratio=round(ratio, 4)
            )
            self.obs.metrics.inc("aap.mode_switches", worker=worker, mode=mode)
