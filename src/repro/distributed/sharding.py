"""Shared sharding scaffolding for the distributed engines.

A :class:`ShardedRun` owns the per-worker vertex-runtime kernels (one
:class:`repro.runtime.Kernel` per simulated worker), the partition map,
and the seeded initial deltas; every engine (sync, async, unified, AAP)
starts from one.  All shards share the run's :class:`WorkCounters`, so
work accounting is uniform regardless of which worker did the work.
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.cluster import ClusterConfig
from repro.distributed.partition import HashPartitioner
from repro.engine.plan import CompiledPlan
from repro.engine.result import WorkCounters
from repro.runtime import Kernel, get_kernel, resolve_backend_for_plan


class ShardedRun:
    """Plan state partitioned across the simulated workers."""

    def __init__(
        self,
        plan: CompiledPlan,
        cluster: ClusterConfig,
        backend: Optional[str] = None,
        delta_step_width: Optional[float] = None,
    ):
        self.plan = plan
        self.cluster = cluster
        self.partitioner = HashPartitioner(cluster.num_workers)
        self.owner: dict = {
            key: self.partitioner.owner(key) for key in plan.keys
        }
        self.speeds = cluster.worker_speeds()
        self.counters = WorkCounters()
        self.backend = resolve_backend_for_plan(plan, backend)
        self.kernel_cls = get_kernel(self.backend)
        #: bucket width announced to every kernel (sync delta-stepping)
        self.delta_step_width = delta_step_width

        shard_keys: list[set] = [set() for _ in range(cluster.num_workers)]
        for key, worker in self.owner.items():
            shard_keys[worker].add(key)
        self.shard_keys = shard_keys
        self.shards: list[Kernel] = [
            self._make_shard(worker) for worker in range(cluster.num_workers)
        ]

    def _make_shard(self, worker: int, initial: Optional[dict] = None) -> Kernel:
        """A fresh kernel for one worker's partition (``X⁰`` by default)."""
        kernel = self.kernel_cls.from_plan(
            self.plan,
            keys=self.shard_keys[worker],
            counters=self.counters,
            initial=initial,
        )
        if self.delta_step_width is not None:
            kernel.enable_delta_stepping(self.delta_step_width)
        return kernel

    def blank_shard(self, worker: int) -> Kernel:
        """An empty kernel for the partition (crash-recovery scratch state)."""
        return self._make_shard(worker, initial={})

    def seed_initial_delta(self) -> None:
        """Distribute ``ΔX¹`` (section 3.3) to its owners' shards."""
        for key, value in self.kernel_cls.initial_delta(self.plan).items():
            self.shards[self.owner[key]].push(key, value)

    def reseed_shard(self, shard_id: int) -> Kernel:
        """Rebuild one shard from scratch: ``X⁰`` plus its slice of ``ΔX¹``.

        Crash recovery falls back to this when no (readable) checkpoint
        exists -- the constant part ``C`` regenerates the shard's seed
        deltas, and peer replay regenerates everything derived.
        """
        shard = self._make_shard(shard_id)
        for key, value in self.kernel_cls.initial_delta(self.plan).items():
            if self.owner[key] == shard_id:
                shard.push(key, value)
        self.shards[shard_id] = shard
        return shard

    def merged_values(self) -> dict:
        merged: dict = {}
        for shard in self.shards:
            merged.update(shard.result())
        return merged

    def total_pending(self) -> int:
        return sum(shard.pending_count() for shard in self.shards)

    def checkpoint_meta(self) -> dict:
        """Run-compatibility facts recorded in (and checked against) checkpoints."""
        return {
            "program": self.plan.name,
            "num_workers": self.cluster.num_workers,
            "aggregate": self.plan.aggregate.name,
        }

    def checkpoint(self, checkpointer, run_name: str) -> None:
        """Persist every shard (paper Figure 6: checkpoint intermediates)."""
        meta = self.checkpoint_meta()
        for shard_id, shard in enumerate(self.shards):
            checkpointer.save_shard(run_name, shard_id, shard, meta=meta)

    def restore(self, checkpointer, run_name: str) -> bool:
        """Reload every shard from a checkpoint; False when none exists.

        Restores into scratch kernels first so a half-unreadable
        checkpoint set never leaves the run partially overwritten.

        For idempotent aggregates the restore finishes with a boundary
        **replay**: every shard re-derives its out-edge contributions
        from the restored accumulated column.  Per-shard checkpoints are
        written one file at a time, so a crash *between* ``save_shard``
        calls leaves shards from different epochs; a stale shard then
        misses peer contributions nobody will resend.  Replay
        regenerates all of them, and ``g`` absorbs the redundant ones
        (Theorem 3), so any mixed-epoch checkpoint set still converges.
        Additive aggregates skip the replay -- re-derived contributions
        would double count -- and rely on every shard coming from the
        same barrier, which the engines' snapshot cadence guarantees.
        """
        if not all(
            checkpointer.has_checkpoint(run_name, shard_id)
            for shard_id in range(len(self.shards))
        ):
            return False
        meta = self.checkpoint_meta()
        fresh: list[Kernel] = []
        for shard_id in range(len(self.shards)):
            table = self.blank_shard(shard_id)
            if not checkpointer.restore_shard(
                run_name, shard_id, table, expect_meta=meta
            ):
                return False
            fresh.append(table)
        self.shards[:] = fresh
        if self.plan.aggregate.is_idempotent:
            self.replay_boundaries()
        return True

    def replay_boundaries(self) -> int:
        """Re-derive every shard's out-edge contributions (Theorem 3).

        Only sound for idempotent aggregates; returns the number of
        replayed contributions (also counted as F' applications).
        """
        plan = self.plan
        replayed = 0
        for shard in list(self.shards):
            for key, value in shard.accumulated.items():
                if value is None:
                    continue
                for dst, params, fn in plan.edges_from(key):
                    self.shards[self.owner[dst]].push(dst, fn(value, *params))
                    replayed += 1
        self.counters.fprime_applications += replayed
        return replayed

    def restore_shard_state(self, checkpointer, run_name: str, shard_id: int) -> bool:
        """Restore a single crashed shard from its latest checkpoint."""
        table = self.blank_shard(shard_id)
        if not checkpointer.restore_shard(
            run_name, shard_id, table, expect_meta=self.checkpoint_meta()
        ):
            return False
        self.shards[shard_id] = table
        return True

    def global_accumulation(self) -> float:
        """Master-side global aggregate of the accumulation column.

        The paper's termination check (section 5.4) compares consecutive
        global aggregation results; summing |value| works for both
        additive and selective aggregates.
        """
        total = 0.0
        for shard in self.shards:
            for value in shard.accumulated.values():
                if value is not None:
                    total += abs(float(value))
        return total
