"""Shared sharding scaffolding for the distributed engines.

A :class:`ShardedRun` owns the per-worker MonoTable shards, the
partition map, and the seeded initial deltas; every engine (sync, async,
unified, AAP) starts from one.
"""

from __future__ import annotations


from repro.distributed.cluster import ClusterConfig
from repro.distributed.partition import HashPartitioner
from repro.engine.monotable import MonoTable
from repro.engine.mra import compute_initial_delta
from repro.engine.plan import CompiledPlan
from repro.engine.result import WorkCounters


class ShardedRun:
    """Plan state partitioned across the simulated workers."""

    def __init__(self, plan: CompiledPlan, cluster: ClusterConfig):
        self.plan = plan
        self.cluster = cluster
        self.partitioner = HashPartitioner(cluster.num_workers)
        self.owner: dict = {
            key: self.partitioner.owner(key) for key in plan.keys
        }
        self.speeds = cluster.worker_speeds()
        self.counters = WorkCounters()

        aggregate = plan.aggregate
        self.shards: list[MonoTable] = []
        shard_keys: list[set] = [set() for _ in range(cluster.num_workers)]
        for key, worker in self.owner.items():
            shard_keys[worker].add(key)
        for worker in range(cluster.num_workers):
            self.shards.append(
                MonoTable(aggregate, plan.initial, keys=shard_keys[worker])
            )
        self.shard_keys = shard_keys

    def seed_initial_delta(self) -> None:
        """Distribute ``ΔX¹`` (section 3.3) to its owners' shards."""
        for key, value in compute_initial_delta(self.plan).items():
            self.shards[self.owner[key]].push(key, value)

    def merged_values(self) -> dict:
        merged: dict = {}
        for shard in self.shards:
            merged.update(shard.result())
        return merged

    def total_pending(self) -> int:
        return sum(len(shard.intermediate) for shard in self.shards)

    def checkpoint(self, checkpointer, run_name: str) -> None:
        """Persist every shard (paper Figure 6: checkpoint intermediates)."""
        for shard_id, shard in enumerate(self.shards):
            checkpointer.save_shard(run_name, shard_id, shard)

    def restore(self, checkpointer, run_name: str) -> bool:
        """Reload every shard from a checkpoint; False when none exists."""
        if not all(
            checkpointer.has_checkpoint(run_name, shard_id)
            for shard_id in range(len(self.shards))
        ):
            return False
        for shard_id, shard in enumerate(self.shards):
            checkpointer.restore_shard(run_name, shard_id, shard)
        return True

    def global_accumulation(self) -> float:
        """Master-side global aggregate of the accumulation column.

        The paper's termination check (section 5.4) compares consecutive
        global aggregation results; summing |value| works for both
        additive and selective aggregates.
        """
        total = 0.0
        for shard in self.shards:
            for value in shard.accumulated.values():
                if value is not None:
                    total += abs(float(value))
        return total
