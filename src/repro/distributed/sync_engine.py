"""Synchronous (BSP) distributed execution.

One superstep applies ``F'`` on every worker, exchanges messages, then
crosses a global barrier before ``G`` results feed the next superstep --
the strict ``G ∘ F'`` sequence of the paper's section 4.

Two modes:

* ``incremental`` -- MRA/semi-naive: only pending deltas are processed.
  With ``delta_stepping`` (selective aggregates), each superstep only
  relaxes pending deltas within the current bucket, the Meyer-Sanders
  optimisation the paper credits for SociaLite's SSSP win on ClueWeb09.
* ``naive`` -- full recomputation: every superstep, every key pushes
  ``F'(x)`` along all its edges and every key is rebuilt from scratch,
  the per-iteration re-join cost of SociaLite/Myria on non-monotonic
  programs.

Superstep time = slowest worker's compute (including message CPU and
bandwidth) + one exchange latency + barrier + optional per-job overhead.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.distributed.cluster import ClusterConfig
from repro.distributed.sharding import ShardedRun
from repro.engine.plan import CompiledPlan
from repro.engine.result import EvalResult
from repro.engine.termination import TerminationSpec, TerminationTracker


class SyncEngine:
    """BSP execution of a compiled plan on the simulated cluster."""

    def __init__(
        self,
        plan: CompiledPlan,
        cluster: Optional[ClusterConfig] = None,
        mode: str = "incremental",
        delta_stepping: bool = False,
        delta_width: float = 10.0,
        termination: Optional[TerminationSpec] = None,
        checkpointer=None,
        checkpoint_every: int = 0,
        run_name: str = "sync-run",
    ):
        if mode not in ("incremental", "naive"):
            raise ValueError(f"unknown mode {mode!r}")
        if delta_stepping and not plan.aggregate.is_idempotent:
            raise ValueError("delta stepping requires a selective aggregate")
        if checkpoint_every and checkpointer is None:
            raise ValueError("checkpoint_every requires a checkpointer")
        self.plan = plan
        self.cluster = cluster or ClusterConfig()
        self.mode = mode
        self.delta_stepping = delta_stepping
        self.delta_width = delta_width
        self.termination = termination or plan.termination
        self.engine_name = f"{mode}+sync"
        #: optional fault tolerance (paper Figure 6): every
        #: ``checkpoint_every`` supersteps, all MonoTable shards are
        #: persisted; a rerun with the same ``run_name`` resumes from the
        #: latest checkpoint instead of the initial delta.
        self.checkpointer = checkpointer
        self.checkpoint_every = checkpoint_every
        self.run_name = run_name

    def run(self) -> EvalResult:
        if self.mode == "incremental":
            return self._run_incremental()
        return self._run_naive()

    # -- incremental (MRA / semi-naive) mode -----------------------------------
    def _run_incremental(self) -> EvalResult:
        plan = self.plan
        cluster = self.cluster
        cost = cluster.cost
        state = ShardedRun(plan, cluster)
        restored = False
        if self.checkpointer is not None:
            restored = state.restore(self.checkpointer, self.run_name)
        if not restored:
            state.seed_initial_delta()
        counters = state.counters
        aggregate = plan.aggregate
        combine = aggregate.combine
        owner = state.owner
        shards = state.shards
        num_workers = cluster.num_workers

        tracker = TerminationTracker(self.termination)
        draw_transient = cluster.transient_stream(salt=1)
        simulated = 0.0
        stop = None
        while stop is None:
            # choose this superstep's workload
            batches: list[dict] = []
            if self.delta_stepping:
                threshold = self._bucket_threshold(shards)
                for shard in shards:
                    take = {
                        key: value
                        for key, value in shard.intermediate.items()
                        if value <= threshold
                    }
                    for key in take:
                        del shard.intermediate[key]
                    batches.append(take)
            else:
                batches = [shard.drain_all() for shard in shards]

            # outboxes[sender][target] -> combined payload dict
            outboxes: list[list[dict]] = [
                [dict() for _ in range(num_workers)] for _ in range(num_workers)
            ]
            compute_seconds = [0.0] * num_workers
            changed = 0
            total_delta = 0.0
            for worker, batch in enumerate(batches):
                ops = 0
                shard = shards[worker]
                boxes = outboxes[worker]
                for key, tmp in batch.items():
                    did_change, magnitude = shard.accumulate(key, tmp)
                    ops += 1
                    if not did_change:
                        continue
                    changed += 1
                    total_delta += magnitude
                    counters.updates += 1
                    for dst, params, fn in plan.edges_from(key):
                        value = fn(tmp, *params)
                        ops += 1
                        box = boxes[owner[dst]]
                        if dst in box:
                            box[dst] = combine(box[dst], value)
                        else:
                            box[dst] = value
                counters.fprime_applications += ops
                compute_seconds[worker] += ops * cost.tuple_cost / state.speeds[worker]

            # exchange: deliver payloads, charging per-message CPU on senders
            cross = 0
            messages = 0
            for sender in range(num_workers):
                sent_tuples = 0
                for target in range(num_workers):
                    payload = outboxes[sender][target]
                    if not payload:
                        continue
                    shard = shards[target]
                    for dst, value in payload.items():
                        shard.push(dst, value)
                        counters.combines += 1
                    if target != sender:
                        messages += 1
                        cross += len(payload)
                        sent_tuples += len(payload)
                compute_seconds[sender] += (
                    (1 if sent_tuples else 0) * cost.message_cpu_cost
                    + sent_tuples * cost.tuple_net_cost
                ) / state.speeds[sender]
            counters.messages += messages
            counters.message_tuples += cross
            counters.barriers += 1
            counters.iterations += 1

            stretched = [c * draw_transient() for c in compute_seconds]
            superstep = (
                max(stretched)
                + (cost.message_latency if cross else 0.0)
                + cost.barrier_cost
                + cost.job_overhead
            )
            simulated += superstep

            if (
                self.checkpoint_every
                and counters.iterations % self.checkpoint_every == 0
            ):
                state.checkpoint(self.checkpointer, self.run_name)

            pending = state.total_pending()
            tracker.record(changed, total_delta)
            stop = tracker.stop_reason()
            if stop == "fixpoint" and pending:
                stop = None  # delta-stepping deferred work remains

        return EvalResult(
            values=state.merged_values(),
            stop_reason=stop,
            counters=counters,
            simulated_seconds=simulated,
            engine=self.engine_name + ("+delta-step" if self.delta_stepping else ""),
            trace=tracker.history,
        )

    def _bucket_threshold(self, shards) -> float:
        smallest = math.inf
        for shard in shards:
            for value in shard.intermediate.values():
                if value < smallest:
                    smallest = value
        return smallest + self.delta_width

    # -- naive mode ------------------------------------------------------------
    def _run_naive(self) -> EvalResult:
        plan = self.plan
        cluster = self.cluster
        cost = cluster.cost
        state = ShardedRun(plan, cluster)
        counters = state.counters
        aggregate = plan.aggregate
        combine = aggregate.combine
        owner = state.owner
        num_workers = cluster.num_workers

        # current values start at X⁰; every superstep rebuilds all of them
        values: dict = dict(plan.initial)
        tracker = TerminationTracker(self.termination)
        draw_transient = cluster.transient_stream(salt=2)
        # Iterated programs (``rank(i+1, ...)``) materialise a fresh
        # iteration-indexed table every superstep while the old ones
        # remain as facts, so iteration k additionally scans/manages
        # k * |keys| accumulated tuples -- the cost that makes naive
        # evaluation of non-monotonic programs collapse at scale
        # (sections 1 and 6.3).
        iterated = plan.analysis.iterated
        simulated = 0.0
        stop = None
        while stop is None:
            inboxes: list[dict] = [dict() for _ in range(num_workers)]
            compute_seconds = [0.0] * num_workers
            ops_by_worker = [0] * num_workers
            pair_tuples = [[0] * num_workers for _ in range(num_workers)]
            # push phase: every key with a value sends F'(x) on all edges
            for src, value in values.items():
                worker = owner[src]
                edges = plan.edges_from(src)
                ops_by_worker[worker] += len(edges)
                for dst, params, fn in edges:
                    contribution = fn(value, *params)
                    target = owner[dst]
                    pair_tuples[worker][target] += 1
                    inbox = inboxes[target]
                    if dst in inbox:
                        inbox[dst] = combine(inbox[dst], contribution)
                    else:
                        inbox[dst] = contribution
                    counters.combines += 1
            counters.fprime_applications += sum(ops_by_worker)
            cross = sum(
                pair_tuples[s][t]
                for s in range(num_workers)
                for t in range(num_workers)
                if s != t
            )
            messages = sum(
                1
                for s in range(num_workers)
                for t in range(num_workers)
                if s != t and pair_tuples[s][t]
            )

            # rebuild phase: every key recomputed from base, C and inbox
            next_values: dict = {}
            rebuild_ops = [0] * num_workers
            if iterated:
                # accumulated iteration-indexed history on each worker
                iteration_number = counters.iterations + 1
                for worker in range(num_workers):
                    rebuild_ops[worker] += (
                        iteration_number
                        * len(state.shard_keys[worker])
                        * int(cost.join_scan_factor)
                    )
            for worker in range(num_workers):
                inbox = inboxes[worker]
                for key in state.shard_keys[worker]:
                    pieces = []
                    base = plan.initial.get(key)
                    if base is not None:
                        pieces.append(base)
                    constant = plan.constants.get(key)
                    if constant is not None:
                        pieces.append(constant)
                    incoming = inbox.get(key)
                    if incoming is not None:
                        pieces.append(incoming)
                    rebuild_ops[worker] += 1
                    if not pieces:
                        continue
                    result = pieces[0]
                    for piece in pieces[1:]:
                        result = combine(result, piece)
                    next_values[key] = result
            for worker in range(num_workers):
                sent = sum(
                    pair_tuples[worker][t]
                    for t in range(num_workers)
                    if t != worker
                )
                sent_msgs = sum(
                    1
                    for t in range(num_workers)
                    if t != worker and pair_tuples[worker][t]
                )
                # each edge binding pays the relational join probes that
                # naive evaluation re-runs every iteration, plus the
                # result-table rebuild
                compute_seconds[worker] = (
                    ops_by_worker[worker]
                    * (cost.tuple_cost + cost.join_scan_factor * cost.scan_cost)
                    + rebuild_ops[worker] * cost.scan_cost
                    + sent_msgs * cost.message_cpu_cost
                    + sent * cost.tuple_net_cost
                ) / state.speeds[worker]

            changed = 0
            total_delta = 0.0
            for key, value in next_values.items():
                old = values.get(key)
                if old is None:
                    changed += 1
                    total_delta += aggregate.delta_magnitude(value)
                elif value != old:
                    changed += 1
                    total_delta += abs(value - old)
            changed += sum(1 for key in values if key not in next_values)
            counters.updates += changed
            values = next_values

            counters.messages += messages
            counters.message_tuples += cross
            counters.barriers += 1
            counters.iterations += 1
            stretched = [c * draw_transient() for c in compute_seconds]
            simulated += (
                max(stretched)
                + (cost.message_latency if cross else 0.0)
                + cost.barrier_cost
                + cost.job_overhead
            )

            tracker.record(changed, total_delta)
            stop = tracker.stop_reason()

        return EvalResult(
            values=values,
            stop_reason=stop,
            counters=counters,
            simulated_seconds=simulated,
            engine=self.engine_name,
            trace=tracker.history,
        )
