"""Synchronous (BSP) distributed execution.

One superstep applies ``F'`` on every worker, exchanges messages, then
crosses a global barrier before ``G`` results feed the next superstep --
the strict ``G ∘ F'`` sequence of the paper's section 4.

Two modes:

* ``incremental`` -- MRA/semi-naive: only pending deltas are processed.
  With ``delta_stepping`` (selective aggregates), each superstep only
  relaxes pending deltas within the current bucket, the Meyer-Sanders
  optimisation the paper credits for SociaLite's SSSP win on ClueWeb09.
* ``naive`` -- full recomputation: every superstep, every key pushes
  ``F'(x)`` along all its edges and every key is rebuilt from scratch,
  the per-iteration re-join cost of SociaLite/Myria on non-monotonic
  programs.

Superstep time = slowest worker's compute (including message CPU and
bandwidth) + one exchange latency + barrier + optional per-job overhead.

Fault injection (``cluster.faults``) reuses the BSP structure: the
barrier is the natural ack point, so a dropped inter-worker payload is
queued for retransmission with exponential *superstep* backoff,
duplicated deliveries are deduplicated by per-sender sequence numbers
(additive aggregates) or absorbed by ``g`` (idempotent ones), and
scheduled crashes fire at barriers -- recovering via single-shard
checkpoint restore plus boundary replay (idempotent) or a coordinated
rollback to the latest barrier snapshot (additive).  Incremental mode
only; naive mode recomputes everything each superstep and has no delta
state worth protecting.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.distributed.chaos import injector_for
from repro.distributed.cluster import ClusterConfig
from repro.distributed.fault import restore_guarding_corruption
from repro.distributed.sharding import ShardedRun
from repro.engine.plan import CompiledPlan
from repro.engine.result import EvalResult
from repro.engine.termination import TerminationSpec, TerminationTracker
from repro.obs import ensure_obs
from repro.runtime import record_backend_metrics


class SyncEngine:
    """BSP execution of a compiled plan on the simulated cluster."""

    def __init__(
        self,
        plan: CompiledPlan,
        cluster: Optional[ClusterConfig] = None,
        mode: str = "incremental",
        delta_stepping: bool = False,
        delta_width: float = 10.0,
        termination: Optional[TerminationSpec] = None,
        checkpointer=None,
        checkpoint_every: int = 0,
        run_name: str = "sync-run",
        obs=None,
        backend: Optional[str] = None,
    ):
        if mode not in ("incremental", "naive"):
            raise ValueError(f"unknown mode {mode!r}")
        if delta_stepping and not plan.aggregate.is_idempotent:
            raise ValueError("delta stepping requires a selective aggregate")
        if checkpoint_every and checkpointer is None:
            raise ValueError("checkpoint_every requires a checkpointer")
        faults = (cluster or ClusterConfig()).faults
        if mode == "naive" and faults is not None and not faults.is_null():
            raise ValueError("fault injection requires incremental mode")
        self.plan = plan
        self.cluster = cluster or ClusterConfig()
        self.mode = mode
        self.delta_stepping = delta_stepping
        self.delta_width = delta_width
        self.termination = termination or plan.termination
        self.engine_name = f"{mode}+sync"
        #: optional fault tolerance (paper Figure 6): every
        #: ``checkpoint_every`` supersteps, all MonoTable shards are
        #: persisted; a rerun with the same ``run_name`` resumes from the
        #: latest checkpoint instead of the initial delta.
        self.checkpointer = checkpointer
        self.checkpoint_every = checkpoint_every
        self.run_name = run_name
        self.obs = ensure_obs(obs)
        self.backend = backend

    def run(self) -> EvalResult:
        if self.mode == "incremental":
            return self._run_incremental()
        return self._run_naive()

    # -- incremental (MRA / semi-naive) mode -----------------------------------
    def _run_incremental(self) -> EvalResult:
        plan = self.plan
        cluster = self.cluster
        cost = cluster.cost
        obs = self.obs
        state = ShardedRun(
            plan,
            cluster,
            backend=self.backend,
            delta_step_width=self.delta_width if self.delta_stepping else None,
        )
        restored = False
        if self.checkpointer is not None:
            restored = restore_guarding_corruption(
                lambda: state.restore(self.checkpointer, self.run_name),
                what=f"sync run {self.run_name}",
                obs=obs,
            )
            if obs.enabled:
                obs.trace.emit(
                    "ckpt.restore", t=0.0, run=self.run_name, restored=restored
                )
        if not restored:
            state.seed_initial_delta()
        counters = state.counters
        aggregate = plan.aggregate
        owner = state.owner
        shards = state.shards
        num_workers = cluster.num_workers

        chaos = injector_for(cluster, obs)
        selective = aggregate.is_idempotent
        if chaos is not None:
            #: per (sender, target) sequence numbers and per-receiver
            #: dedup sets; the barrier doubles as the ack point
            seq_next = [[0] * num_workers for _ in range(num_workers)]
            seen = [
                [set() for _ in range(num_workers)] for _ in range(num_workers)
            ]
            #: (sender, target) -> {seq: {"payload", "attempt", "wait"}}
            retrans_queue: dict = {}
            remaining_crashes = sorted(
                cluster.faults.crashes, key=lambda crash: crash.at
            )
            snapshot_every = self.checkpoint_every or 4

            def apply_payload(sender: int, target: int, seq: int, payload: dict):
                if seq in seen[target][sender]:
                    chaos.record(
                        "duplicates_absorbed",
                        t=simulated,
                        sender=sender,
                        target=target,
                        seq=seq,
                    )
                    if not selective:
                        # non-idempotent aggregates must not re-apply; the
                        # idempotent path falls through and lets g absorb
                        return
                else:
                    seen[target][sender].add(seq)
                shard = shards[target]
                for dst, value in payload.items():
                    shard.push(dst, value)

            def take_snapshot() -> dict:
                return {
                    "shards": [s.snapshot() for s in shards],
                    "retrans": {
                        pair: {
                            seq: dict(entry) for seq, entry in queued.items()
                        }
                        for pair, queued in retrans_queue.items()
                    },
                    "seq_next": [list(row) for row in seq_next],
                    "seen": [[set(s) for s in row] for row in seen],
                }

            #: a barrier plus the retransmit queues is the complete global
            #: state, so any barrier snapshot is globally consistent
            snapshot = take_snapshot() if not selective else None

        tracker = TerminationTracker(self.termination)
        draw_transient = cluster.transient_stream(salt=1)
        simulated = 0.0
        stop = None
        while stop is None:
            # choose this superstep's workload
            batches: list[dict] = []
            if self.delta_stepping:
                threshold = self._bucket_threshold(shards)
                batches = [
                    shard.take_pending_below(threshold) for shard in shards
                ]
            else:
                batches = [shard.drain_all() for shard in shards]

            # outboxes[sender][target] -> combined payload dict
            outboxes: list[list[dict]] = [
                [dict() for _ in range(num_workers)] for _ in range(num_workers)
            ]
            compute_seconds = [0.0] * num_workers
            changed = 0
            total_delta = 0.0
            for worker, batch in enumerate(batches):
                shard = shards[worker]
                round_result = shard.apply_batch(batch)
                changed += round_result.changed
                total_delta += round_result.magnitude
                boxes = outboxes[worker]
                for dst, value in round_result.out_deltas.items():
                    boxes[owner[dst]][dst] = value
                compute_seconds[worker] += (
                    round_result.ops * cost.tuple_cost / state.speeds[worker]
                )

            # exchange: deliver payloads, charging per-message CPU on senders
            cross = 0
            messages = 0
            if chaos is not None:
                # retransmit pass: queued unacked payloads whose backoff
                # expired retry before this superstep's fresh traffic
                for (sender, target), queued in list(retrans_queue.items()):
                    for seq, entry in list(queued.items()):
                        entry["wait"] -= 1
                        if entry["wait"] > 0:
                            continue
                        chaos.record(
                            "retransmits",
                            t=simulated,
                            sender=sender,
                            target=target,
                            seq=seq,
                            attempt=entry["attempt"],
                        )
                        messages += 1
                        cross += len(entry["payload"])
                        compute_seconds[sender] += (
                            cost.message_cpu_cost
                            + len(entry["payload"]) * cost.tuple_net_cost
                        ) / state.speeds[sender]
                        if chaos.drops(sender, target, simulated):
                            chaos.record(
                                "dropped_messages",
                                t=simulated,
                                sender=sender,
                                target=target,
                                seq=seq,
                            )
                            entry["attempt"] += 1
                            entry["wait"] = min(2 ** entry["attempt"], 8)
                            if obs.enabled:
                                obs.trace.emit(
                                    "net.backoff",
                                    t=simulated,
                                    sender=sender,
                                    target=target,
                                    seq=seq,
                                    attempt=entry["attempt"],
                                    wait_supersteps=entry["wait"],
                                )
                            continue
                        apply_payload(sender, target, seq, entry["payload"])
                        if chaos.duplicates():
                            chaos.record(
                                "duplicated_messages",
                                t=simulated,
                                sender=sender,
                                target=target,
                                seq=seq,
                            )
                            apply_payload(sender, target, seq, entry["payload"])
                        del queued[seq]
                    if not queued:
                        del retrans_queue[(sender, target)]
            for sender in range(num_workers):
                sent_tuples = 0
                for target in range(num_workers):
                    payload = outboxes[sender][target]
                    if not payload:
                        continue
                    if chaos is None or target == sender:
                        shard = shards[target]
                        for dst, value in payload.items():
                            shard.push(dst, value)
                    else:
                        seq = seq_next[sender][target]
                        seq_next[sender][target] = seq + 1
                        if chaos.drops(sender, target, simulated):
                            chaos.record(
                                "dropped_messages",
                                t=simulated,
                                sender=sender,
                                target=target,
                                seq=seq,
                            )
                            retrans_queue.setdefault((sender, target), {})[seq] = {
                                "payload": payload,
                                "attempt": 1,
                                "wait": 1,
                            }
                            if obs.enabled:
                                obs.trace.emit(
                                    "net.backoff",
                                    t=simulated,
                                    sender=sender,
                                    target=target,
                                    seq=seq,
                                    attempt=1,
                                    wait_supersteps=1,
                                )
                        else:
                            apply_payload(sender, target, seq, payload)
                            if chaos.duplicates():
                                chaos.record(
                                    "duplicated_messages",
                                    t=simulated,
                                    sender=sender,
                                    target=target,
                                    seq=seq,
                                )
                                apply_payload(sender, target, seq, payload)
                    if target != sender:
                        messages += 1
                        cross += len(payload)
                        sent_tuples += len(payload)
                compute_seconds[sender] += (
                    (1 if sent_tuples else 0) * cost.message_cpu_cost
                    + sent_tuples * cost.tuple_net_cost
                ) / state.speeds[sender]
            counters.messages += messages
            counters.message_tuples += cross
            counters.barriers += 1
            counters.iterations += 1

            stretched = [c * draw_transient() for c in compute_seconds]
            if chaos is not None:
                stretched = [
                    c * chaos.slowdown(worker, simulated)
                    for worker, c in enumerate(stretched)
                ]
            superstep = (
                max(stretched)
                + (cost.message_latency if cross else 0.0)
                + cost.barrier_cost
                + cost.job_overhead
            )
            simulated += superstep
            if obs.enabled:
                obs.trace.emit(
                    "engine.superstep",
                    t=simulated,
                    dur=superstep,
                    round=counters.iterations,
                    changed=changed,
                    delta=total_delta,
                    messages=messages,
                    tuples=cross,
                )
                obs.metrics.observe("superstep.seconds", superstep)
                obs.metrics.inc("superstep.count")

            if (
                self.checkpoint_every
                and counters.iterations % self.checkpoint_every == 0
            ):
                state.checkpoint(self.checkpointer, self.run_name)
                if obs.enabled:
                    obs.trace.emit(
                        "ckpt.write",
                        t=simulated,
                        run=self.run_name,
                        round=counters.iterations,
                    )
            if (
                chaos is not None
                and not selective
                and counters.iterations % snapshot_every == 0
            ):
                snapshot = take_snapshot()
                chaos.record("checkpoints", t=simulated, round=counters.iterations)

            crashed = False
            if chaos is not None:
                while remaining_crashes and remaining_crashes[0].at <= simulated:
                    crash = remaining_crashes.pop(0)
                    chaos.record("crashes", t=crash.at, worker=crash.worker)
                    crashed = True
                    simulated += crash.restart_after
                    if selective:
                        simulated += self._recover_shard(
                            crash.worker, state, chaos, seen, retrans_queue, simulated
                        )
                    else:
                        # coordinated rollback: additive deltas replayed from
                        # live state would double count, so every worker
                        # returns to the latest barrier snapshot
                        chaos.record("rollbacks", t=simulated, worker=crash.worker)
                        chaos.record("recoveries", t=simulated, worker=crash.worker)
                        for w, shard_snap in enumerate(snapshot["shards"]):
                            shards[w].restore(shard_snap)
                        retrans_queue.clear()
                        retrans_queue.update(
                            {
                                pair: {
                                    seq: dict(entry)
                                    for seq, entry in queued.items()
                                }
                                for pair, queued in snapshot["retrans"].items()
                            }
                        )
                        for w in range(num_workers):
                            seq_next[w][:] = snapshot["seq_next"][w]
                            seen[w] = [set(s) for s in snapshot["seen"][w]]

            pending = state.total_pending()
            tracker.record(changed, total_delta)
            stop = tracker.stop_reason()
            if stop == "fixpoint" and pending:
                stop = None  # delta-stepping deferred work remains
            if chaos is not None and stop in ("fixpoint", "epsilon"):
                if crashed or retrans_queue:
                    # lost deltas are still awaiting retransmission, or a
                    # recovery just reset state: convergence is not real yet
                    stop = None

        result = EvalResult(
            values=state.merged_values(),
            stop_reason=stop,
            counters=counters,
            simulated_seconds=simulated,
            engine=self.engine_name + ("+delta-step" if self.delta_stepping else ""),
            trace=tracker.history,
            faults=chaos.stats if chaos is not None else None,
            backend=state.backend,
        )
        if obs.enabled:
            from repro.analysis.absint import (
                estimate_plan_cost,
                record_cost_metrics,
            )
            from repro.analysis.comm import record_comm_metrics

            obs.metrics.absorb_work_counters(counters, engine=result.engine)
            record_backend_metrics(obs.metrics, result.engine, state.backend)
            record_comm_metrics(
                obs.metrics, self.plan, self.cluster.num_workers
            )
            record_cost_metrics(obs.metrics, estimate_plan_cost(self.plan))
            result.metrics = obs.metrics
        return result

    def _recover_shard(
        self, worker, state, chaos, seen, retrans_queue, now=None
    ) -> float:
        """Single-shard recovery for idempotent aggregates.

        Restore the crashed shard from its latest checkpoint (or reseed
        from ``X⁰`` + ``ΔX¹`` when none is readable), then replay
        boundary contributions: every live peer re-derives the deltas it
        feeds the crashed shard from its *accumulated* column, and the
        restored worker replays all of its own out-edges because its
        pre-crash sends may be lost.  Sound only because ``g`` absorbs
        re-delivered deltas for idempotent aggregates (Theorem 3).
        Returns the simulated seconds the replay costs.
        """
        chaos.record("recoveries", t=now, worker=worker)
        restored = False
        if self.checkpointer is not None:
            restored = restore_guarding_corruption(
                lambda: state.restore_shard_state(
                    self.checkpointer, self.run_name, worker
                ),
                what=f"sync run {self.run_name} shard {worker}",
                obs=self.obs,
            )
            if self.obs.enabled:
                self.obs.trace.emit(
                    "ckpt.restore", t=now, run=self.run_name, worker=worker,
                    restored=restored,
                )
        if not restored:
            state.reseed_shard(worker)
        # the crashed worker's retransmit buffers and dedup memory died
        # with it; replay regenerates everything those entries carried
        for pair in [p for p in retrans_queue if p[0] == worker]:
            del retrans_queue[pair]
        for sender_seen in seen[worker]:
            sender_seen.clear()
        plan = self.plan
        owner = state.owner
        shards = state.shards
        cost = self.cluster.cost
        counters = state.counters
        num_workers = self.cluster.num_workers
        replay_ops = [0] * num_workers
        for peer in range(num_workers):
            for key, value in shards[peer].accumulated.items():
                if value is None:
                    continue
                for dst, params, fn in plan.edges_from(key):
                    target = owner[dst]
                    if peer != worker and target != worker:
                        continue
                    shards[target].push(dst, fn(value, *params))
                    replay_ops[peer] += 1
        total_replayed = sum(replay_ops)
        if total_replayed:
            chaos.record("replayed_tuples", t=now, n=total_replayed, worker=worker)
        counters.fprime_applications += total_replayed
        if not any(replay_ops):
            return 0.0
        return max(
            ops * cost.tuple_cost / state.speeds[peer]
            for peer, ops in enumerate(replay_ops)
        )

    def _bucket_threshold(self, shards) -> float:
        smallest = min(
            (shard.pending_min() for shard in shards), default=math.inf
        )
        return smallest + self.delta_width

    # -- naive mode ------------------------------------------------------------
    def _run_naive(self) -> EvalResult:
        plan = self.plan
        cluster = self.cluster
        cost = cluster.cost
        state = ShardedRun(plan, cluster, backend=self.backend)
        counters = state.counters
        aggregate = plan.aggregate
        combine = aggregate.combine
        owner = state.owner
        num_workers = cluster.num_workers

        # current values start at X⁰; every superstep rebuilds all of them
        values: dict = dict(plan.initial)
        tracker = TerminationTracker(self.termination)
        draw_transient = cluster.transient_stream(salt=2)
        # Iterated programs (``rank(i+1, ...)``) materialise a fresh
        # iteration-indexed table every superstep while the old ones
        # remain as facts, so iteration k additionally scans/manages
        # k * |keys| accumulated tuples -- the cost that makes naive
        # evaluation of non-monotonic programs collapse at scale
        # (sections 1 and 6.3).
        iterated = plan.analysis.iterated
        simulated = 0.0
        stop = None
        while stop is None:
            inboxes: list[dict] = [dict() for _ in range(num_workers)]
            compute_seconds = [0.0] * num_workers
            ops_by_worker = [0] * num_workers
            pair_tuples = [[0] * num_workers for _ in range(num_workers)]
            # push phase: every key with a value sends F'(x) on all edges
            for src, dst, contribution in state.kernel_cls.full_contributions(
                plan, values
            ):
                worker = owner[src]
                ops_by_worker[worker] += 1
                target = owner[dst]
                pair_tuples[worker][target] += 1
                inbox = inboxes[target]
                if dst in inbox:
                    inbox[dst] = combine(inbox[dst], contribution)
                    counters.combines += 1
                else:
                    inbox[dst] = contribution
            counters.fprime_applications += sum(ops_by_worker)
            cross = sum(
                pair_tuples[s][t]
                for s in range(num_workers)
                for t in range(num_workers)
                if s != t
            )
            messages = sum(
                1
                for s in range(num_workers)
                for t in range(num_workers)
                if s != t and pair_tuples[s][t]
            )

            # rebuild phase: every key recomputed from base, C and inbox
            next_values: dict = {}
            rebuild_ops = [0] * num_workers
            if iterated:
                # accumulated iteration-indexed history on each worker
                iteration_number = counters.iterations + 1
                for worker in range(num_workers):
                    rebuild_ops[worker] += (
                        iteration_number
                        * len(state.shard_keys[worker])
                        * int(cost.join_scan_factor)
                    )
            for worker in range(num_workers):
                inbox = inboxes[worker]
                for key in state.shard_keys[worker]:
                    pieces = []
                    base = plan.initial.get(key)
                    if base is not None:
                        pieces.append(base)
                    constant = plan.constants.get(key)
                    if constant is not None:
                        pieces.append(constant)
                    incoming = inbox.get(key)
                    if incoming is not None:
                        pieces.append(incoming)
                    rebuild_ops[worker] += 1
                    if not pieces:
                        continue
                    result = pieces[0]
                    for piece in pieces[1:]:
                        result = combine(result, piece)
                    next_values[key] = result
            for worker in range(num_workers):
                sent = sum(
                    pair_tuples[worker][t]
                    for t in range(num_workers)
                    if t != worker
                )
                sent_msgs = sum(
                    1
                    for t in range(num_workers)
                    if t != worker and pair_tuples[worker][t]
                )
                # each edge binding pays the relational join probes that
                # naive evaluation re-runs every iteration, plus the
                # result-table rebuild
                compute_seconds[worker] = (
                    ops_by_worker[worker]
                    * (cost.tuple_cost + cost.join_scan_factor * cost.scan_cost)
                    + rebuild_ops[worker] * cost.scan_cost
                    + sent_msgs * cost.message_cpu_cost
                    + sent * cost.tuple_net_cost
                ) / state.speeds[worker]

            changed = 0
            total_delta = 0.0
            for key, value in next_values.items():
                old = values.get(key)
                if old is None:
                    changed += 1
                    total_delta += aggregate.delta_magnitude(value)
                elif value != old:
                    changed += 1
                    total_delta += abs(value - old)
            changed += sum(1 for key in values if key not in next_values)
            counters.updates += changed
            values = next_values

            counters.messages += messages
            counters.message_tuples += cross
            counters.barriers += 1
            counters.iterations += 1
            stretched = [c * draw_transient() for c in compute_seconds]
            superstep = (
                max(stretched)
                + (cost.message_latency if cross else 0.0)
                + cost.barrier_cost
                + cost.job_overhead
            )
            simulated += superstep
            if self.obs.enabled:
                self.obs.trace.emit(
                    "engine.superstep",
                    t=simulated,
                    dur=superstep,
                    round=counters.iterations,
                    changed=changed,
                    delta=total_delta,
                    messages=messages,
                    tuples=cross,
                )
                self.obs.metrics.observe("superstep.seconds", superstep)
                self.obs.metrics.inc("superstep.count")

            tracker.record(changed, total_delta)
            stop = tracker.stop_reason()

        result = EvalResult(
            values=values,
            stop_reason=stop,
            counters=counters,
            simulated_seconds=simulated,
            engine=self.engine_name,
            trace=tracker.history,
            backend=state.backend,
        )
        if self.obs.enabled:
            self.obs.metrics.absorb_work_counters(counters, engine=self.engine_name)
            record_backend_metrics(self.obs.metrics, self.engine_name, state.backend)
            result.metrics = self.obs.metrics
        return result
