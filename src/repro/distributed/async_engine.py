"""Asynchronous distributed execution (paper section 4, Definition 2).

A deterministic discrete-event simulation: workers process pending
MonoTable deltas in batches whenever they have work, without barriers;
updates for remote keys accumulate in per-destination message buffers
that flush by size (``beta``) or age (``tau``); a master event fires
every ``termination_interval`` simulated seconds and applies the
section 5.4 termination check (global fixpoint, or the change of the
global aggregation result dropping below the program's epsilon).

Because every update flows through the aggregate's ``combine``, any
interleaving produces the fixpoint of Theorem 3 -- tests check async
results against the synchronous reference bit-for-bit (min/max) or to
float tolerance (sum).

Simulated time is the event clock: worker busy time is measured work
(tuples, message CPU, bandwidth) divided by per-worker speed; message
delivery is delayed by latency plus payload bandwidth.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from repro.distributed.buffers import AdaptiveBuffer, BufferPolicy, FixedBuffer
from repro.distributed.cluster import ClusterConfig
from repro.distributed.sharding import ShardedRun
from repro.engine.plan import CompiledPlan
from repro.engine.result import EvalResult
from repro.engine.termination import TerminationSpec, TerminationTracker


class AsyncEngine:
    """Event-driven asynchronous MRA execution."""

    engine_name = "mra+async"

    def __init__(
        self,
        plan: CompiledPlan,
        cluster: Optional[ClusterConfig] = None,
        buffer_policy: Optional[BufferPolicy] = None,
        batch_size: Optional[int] = None,
        importance_threshold: Optional[float] = None,
        termination: Optional[TerminationSpec] = None,
    ):
        self.plan = plan
        self.cluster = cluster or ClusterConfig()
        self.buffer_policy = buffer_policy or BufferPolicy(adaptive=False)
        #: keys processed per scheduling event.  Small batches mean eager
        #: (highly asynchronous) processing: a key re-propagates for every
        #: partial contribution, which multiplies work for additive
        #: aggregates.  ``None`` sweeps the whole shard per event -- keys
        #: accumulate all contributions that arrived since the last sweep
        #: before propagating once, sync-like work without barriers.
        self.batch_size = batch_size
        self.importance_threshold = importance_threshold
        self.termination = termination or plan.termination

    # -- extension hooks --------------------------------------------------------
    def _make_buffer(self):
        if self.buffer_policy.adaptive:
            return AdaptiveBuffer(self.buffer_policy)
        return FixedBuffer(self.buffer_policy.initial_beta, self.buffer_policy.tau)

    def _batch_limit(self, worker: int) -> Optional[int]:
        """Per-worker batch size; AAP overrides this dynamically."""
        return self.batch_size

    def _observe_delivery(self, worker: int, payload_size: int) -> None:
        """Hook: AAP's mode switching watches in-message volume."""

    def _observe_processing(self, worker: int, processed: int) -> None:
        """Hook: AAP's mode switching watches own progress."""

    # -- main event loop ----------------------------------------------------------
    def run(self) -> EvalResult:
        plan = self.plan
        cluster = self.cluster
        cost = cluster.cost
        num_workers = cluster.num_workers
        state = ShardedRun(plan, cluster)
        state.seed_initial_delta()
        counters = state.counters
        aggregate = plan.aggregate
        combine = aggregate.combine
        owner = state.owner
        shards = state.shards
        speeds = state.speeds
        selective = aggregate.is_idempotent

        buffers = [
            {target: self._make_buffer() for target in range(num_workers) if target != w}
            for w in range(num_workers)
        ]
        busy_until = [0.0] * num_workers
        scheduled = [False] * num_workers
        inflight = 0
        progress_magnitude = 0.0
        progress_updates = 0

        heap: list = []
        sequence = itertools.count()

        def schedule(time: float, kind: str, data=None):
            heapq.heappush(heap, (time, next(sequence), kind, data))

        def schedule_worker(worker: int, time: float):
            if not scheduled[worker]:
                scheduled[worker] = True
                schedule(max(time, busy_until[worker]), "process", worker)

        for worker in range(num_workers):
            if shards[worker].has_pending():
                schedule_worker(worker, worker * 1e-6)
        schedule(cost.termination_interval, "master", None)

        tracker = TerminationTracker(self.termination)
        draw_transient = cluster.transient_stream(salt=3)
        prev_global: Optional[float] = None
        stop: Optional[str] = None
        now = 0.0
        last_activity = 0.0

        def select_batch(worker: int) -> list:
            """Pick the keys to process this round.

            Selective aggregates process best-first (smallest pending
            delta for min), a realistic async priority; additive ones use
            arrival order, deferring deltas below the importance
            threshold (section 5.4) while any larger one exists.
            """
            shard = shards[worker]
            limit = self._batch_limit(worker)
            pending = shard.intermediate
            if selective:
                keys = sorted(pending, key=pending.get)
                return keys if limit is None else keys[:limit]
            if self.importance_threshold is not None:
                # section 5.4: only important deltas propagate now; the
                # rest stay cached in the intermediate column, combining
                # with later arrivals until they matter.
                important = [
                    key
                    for key, value in pending.items()
                    if aggregate.delta_magnitude(value) >= self.importance_threshold
                ]
                return important if limit is None else important[:limit]
            if limit is None:
                return list(pending)
            return list(itertools.islice(pending, limit))

        def flush_ready_buffers(worker: int, time: float) -> float:
            """Flush every buffer that is full or stale; returns new time."""
            nonlocal inflight
            for target, buffer in buffers[worker].items():
                if buffer.should_flush(time):
                    payload = buffer.flush(time)
                    buffer.observe_flush(time)
                    send_cpu = (
                        cost.message_cpu_cost + len(payload) * cost.tuple_net_cost
                    ) / speeds[worker]
                    time += send_cpu
                    schedule(time + cost.message_latency, "deliver", (target, payload))
                    inflight += 1
                    counters.messages += 1
                    counters.message_tuples += len(payload)
            return time

        def schedule_timer_if_buffered(worker: int, time: float) -> None:
            if any(b.pending for b in buffers[worker].values()):
                schedule(time + self.buffer_policy.tau, "timer", worker)

        def handle_process(worker: int, time: float) -> None:
            nonlocal inflight, progress_magnitude, progress_updates
            scheduled[worker] = False
            shard = shards[worker]
            if not shard.has_pending():
                return
            batch = select_batch(worker)
            if not batch:
                # everything pending is below the importance threshold;
                # idle until new deliveries make some delta important --
                # but buffered remote updates must still age out.
                finish = flush_ready_buffers(worker, time)
                busy_until[worker] = finish
                schedule_timer_if_buffered(worker, finish)
                return
            ops = 0
            send_cpu_total = 0.0

            def eager_flush(target, buffer):
                # real engines flush a full buffer mid-stream: the size
                # knob beta is exactly the communication frequency the
                # unified engine adapts (section 5.3)
                nonlocal inflight, send_cpu_total
                moment = time + ops * cost.tuple_cost / speeds[worker]
                payload = buffer.flush(moment)
                buffer.observe_flush(moment)
                send_cpu = (
                    cost.message_cpu_cost + len(payload) * cost.tuple_net_cost
                ) / speeds[worker]
                send_cpu_total += send_cpu
                schedule(
                    moment + send_cpu + cost.message_latency,
                    "deliver",
                    (target, payload),
                )
                inflight += 1
                counters.messages += 1
                counters.message_tuples += len(payload)

            for key in batch:
                tmp = shard.fetch_and_reset(key)
                if tmp is None:
                    continue
                did_change, magnitude = shard.accumulate(key, tmp)
                ops += 1
                if not did_change:
                    continue
                progress_magnitude += magnitude
                progress_updates += 1
                counters.updates += 1
                for dst, params, fn in plan.edges_from(key):
                    value = fn(tmp, *params)
                    ops += 1
                    target = owner[dst]
                    if target == worker:
                        shard.push(dst, value)
                        counters.combines += 1
                    else:
                        buffer = buffers[worker][target]
                        buffer.add(dst, value, combine)
                        if buffer.pending_count >= buffer.beta:
                            eager_flush(target, buffer)
            counters.fprime_applications += ops
            self._observe_processing(worker, len(batch))
            compute = (
                ops * cost.tuple_cost * draw_transient() / speeds[worker]
                + send_cpu_total
            )
            finish = flush_ready_buffers(worker, time + compute)

            busy_until[worker] = finish
            if shard.has_pending():
                schedule_worker(worker, finish)
            else:
                schedule_timer_if_buffered(worker, finish)

        def handle_deliver(data, time: float) -> None:
            nonlocal inflight
            inflight -= 1
            target, payload = data
            shard = shards[target]
            for dst, value in payload.items():
                shard.push(dst, value)
                counters.combines += 1
            self._observe_delivery(target, len(payload))
            schedule_worker(target, time)

        def handle_timer(worker: int, time: float) -> None:
            finish = flush_ready_buffers(worker, time)
            schedule_timer_if_buffered(worker, finish)

        def quiescent() -> bool:
            if inflight:
                return False
            if any(shard.has_pending() for shard in shards):
                return False
            return not any(
                buffer.pending
                for worker_buffers in buffers
                for buffer in worker_buffers.values()
            )

        work_events_since_check = 0
        while heap and stop is None:
            now, _, kind, data = heapq.heappop(heap)
            if kind == "process":
                handle_process(data, now)
                last_activity = max(last_activity, busy_until[data])
                work_events_since_check += 1
            elif kind == "deliver":
                handle_deliver(data, now)
                last_activity = max(last_activity, now)
                work_events_since_check += 1
            elif kind == "timer":
                handle_timer(data, now)
            elif kind == "master":
                if quiescent():
                    counters.iterations += 1
                    stop = "fixpoint"
                    break
                buffered = any(
                    buffer.pending
                    for worker_buffers in buffers
                    for buffer in worker_buffers.values()
                )
                # "idle" requires genuinely nothing in flight anywhere:
                # no messages travelling, no worker scheduled, and no
                # updates sitting in a send buffer waiting for its timer.
                all_idle = inflight == 0 and not any(scheduled) and not buffered
                if progress_updates == 0 and not all_idle:
                    # workers are mid-burst (or only deliveries landed):
                    # the accumulation column has not moved since the
                    # last check, so comparing two identical snapshots
                    # would fake convergence.  Wait for the clock to
                    # catch up with the busy workers.
                    schedule(now + cost.termination_interval, "master", None)
                    continue
                counters.iterations += 1
                tracker.record(progress_updates, progress_magnitude)
                progress_updates = 0
                progress_magnitude = 0.0
                work_events_since_check = 0
                current_global = state.global_accumulation()
                epsilon_reached = (
                    self.termination.epsilon is not None
                    and prev_global is not None
                    and self.termination.epsilon_met(abs(current_global - prev_global))
                )
                if epsilon_reached or (
                    all_idle and self.termination.epsilon is not None
                ):
                    # either genuine convergence, or only sub-threshold
                    # deferred residue remains (section 5.4)
                    stop = "epsilon"
                    break
                prev_global = current_global
                if tracker.iterations >= self.termination.max_iterations:
                    stop = "iteration-limit"
                    break
                schedule(now + cost.termination_interval, "master", None)

        if stop is None:
            # the heap drained before a master event observed quiescence
            stop = "fixpoint" if quiescent() else "iteration-limit"
        # a fixpoint is reached when the last work event finishes, not when
        # the master's periodic check happens to observe it
        finished_at = last_activity if stop == "fixpoint" else now

        return EvalResult(
            values=state.merged_values(),
            stop_reason=stop,
            counters=counters,
            simulated_seconds=finished_at,
            engine=self.engine_name,
            trace=tracker.history,
        )
