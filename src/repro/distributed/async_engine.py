"""Asynchronous distributed execution (paper section 4, Definition 2).

A deterministic discrete-event simulation: workers process pending
MonoTable deltas in batches whenever they have work, without barriers;
updates for remote keys accumulate in per-destination message buffers
that flush by size (``beta``) or age (``tau``); a master event fires
every ``termination_interval`` simulated seconds and applies the
section 5.4 termination check (global fixpoint, or the change of the
global aggregation result dropping below the program's epsilon).

Because every update flows through the aggregate's ``combine``, any
interleaving produces the fixpoint of Theorem 3 -- tests check async
results against the synchronous reference bit-for-bit (min/max) or to
float tolerance (sum).

Simulated time is the event clock: worker busy time is measured work
(tuples, message CPU, bandwidth) divided by per-worker speed; message
delivery is delayed by latency plus payload bandwidth.

Fault injection (``cluster.faults``, see :mod:`repro.distributed.chaos`)
wires failure into the same event clock:

* every message carries a per-destination sequence number and is held in
  a :class:`~repro.distributed.buffers.RetransmitBuffer` until acked;
  drops and partitions are recovered by exponential-backoff
  retransmission, duplicates are absorbed by ``g``-combining (idempotent
  aggregates) or suppressed by per-sender sequence dedup (additive
  ones);
* scheduled worker crashes lose all volatile state; recovery restores
  the shard from its latest :class:`~repro.distributed.fault.Checkpointer`
  checkpoint (or reseeds it from the constant part ``C``) and replays
  boundary deltas from the live workers' accumulated columns -- sound
  for idempotent aggregates, where re-derivation is absorbed.  For
  non-idempotent aggregates a crash instead triggers a coordinated
  rollback to the latest globally consistent snapshot, because replayed
  sums would double count (DESIGN.md, "Fault model and recovery
  guarantees");
* periodic event-clock checkpoints (``checkpoint_interval`` simulated
  seconds) extend the sync engine's Figure-6 checkpointing to the
  asynchronous engine, both on disk (when a checkpointer is given) and
  as the in-memory snapshots the rollback path restores.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from repro.distributed.buffers import (
    AdaptiveBuffer,
    BufferPolicy,
    FixedBuffer,
    RetransmitBuffer,
)
from repro.distributed.chaos import injector_for
from repro.distributed.cluster import ClusterConfig
from repro.distributed.fault import restore_guarding_corruption
from repro.distributed.sharding import ShardedRun
from repro.engine.plan import CompiledPlan
from repro.engine.result import EvalResult
from repro.engine.termination import TerminationSpec, TerminationTracker
from repro.obs import ensure_obs
from repro.runtime import record_backend_metrics


class AsyncEngine:
    """Event-driven asynchronous MRA execution."""

    engine_name = "mra+async"

    def __init__(
        self,
        plan: CompiledPlan,
        cluster: Optional[ClusterConfig] = None,
        buffer_policy: Optional[BufferPolicy] = None,
        batch_size: Optional[int] = None,
        importance_threshold: Optional[float] = None,
        termination: Optional[TerminationSpec] = None,
        checkpointer=None,
        checkpoint_interval: float = 0.0,
        run_name: str = "async-run",
        recovery: str = "auto",
        obs=None,
        backend: Optional[str] = None,
    ):
        if recovery not in ("auto", "local", "global"):
            raise ValueError(f"unknown recovery mode {recovery!r}")
        # Theorem-3 gate: asynchronous evaluation only converges to the
        # synchronous fixpoint for MRA-satisfiable programs, so refuse
        # uncertified ones up front (with the RA310 diagnostic) instead
        # of silently computing wrong answers under message reordering.
        from repro.analysis.asynccert import require_async_certified

        self.async_certificate = require_async_certified(plan.analysis)
        self.obs = ensure_obs(obs)
        self.backend = backend
        self.plan = plan
        self.cluster = cluster or ClusterConfig()
        self.buffer_policy = buffer_policy or BufferPolicy(adaptive=False)
        #: keys processed per scheduling event.  Small batches mean eager
        #: (highly asynchronous) processing: a key re-propagates for every
        #: partial contribution, which multiplies work for additive
        #: aggregates.  ``None`` sweeps the whole shard per event -- keys
        #: accumulate all contributions that arrived since the last sweep
        #: before propagating once, sync-like work without barriers.
        self.batch_size = batch_size
        self.importance_threshold = importance_threshold
        self.termination = termination or plan.termination
        #: optional fault tolerance: every ``checkpoint_interval``
        #: simulated seconds each shard is persisted; a rerun with the
        #: same ``run_name`` resumes from the checkpoint, and crash
        #: recovery restores from it mid-run.
        self.checkpointer = checkpointer
        self.checkpoint_interval = checkpoint_interval
        self.run_name = run_name
        #: crash-recovery strategy: ``local`` (restore one shard +
        #: Theorem-3 replay, sound for idempotent aggregates), ``global``
        #: (coordinated rollback, required for additive aggregates), or
        #: ``auto`` to pick by aggregate class.
        self.recovery = recovery

    # -- extension hooks --------------------------------------------------------
    def _make_buffer(self, worker: int = -1, target: int = -1):
        if self.buffer_policy.adaptive:
            buffer = AdaptiveBuffer(self.buffer_policy)
            obs = self.obs
            if obs.enabled and worker >= 0:
                def on_adapt(now, old, new, pace, _w=worker, _t=target):
                    obs.trace.emit(
                        "buffer.beta", t=now, worker=_w, target=_t,
                        old=old, new=new, pace=pace,
                    )
                    obs.metrics.gauge("buffer.beta", new, t=now, worker=_w, target=_t)
                    obs.metrics.inc("buffer.adaptations", worker=_w, target=_t)

                buffer.on_adapt = on_adapt
            return buffer
        return FixedBuffer(self.buffer_policy.initial_beta, self.buffer_policy.tau)

    def _batch_limit(self, worker: int) -> Optional[int]:
        """Per-worker batch size; AAP overrides this dynamically."""
        return self.batch_size

    def _observe_delivery(self, worker: int, payload_size: int) -> None:
        """Hook: AAP's mode switching watches in-message volume."""

    def _observe_processing(self, worker: int, processed: int) -> None:
        """Hook: AAP's mode switching watches own progress."""

    # -- main event loop ----------------------------------------------------------
    def run(self) -> EvalResult:
        plan = self.plan
        cluster = self.cluster
        cost = cluster.cost
        obs = self.obs
        num_workers = cluster.num_workers
        state = ShardedRun(plan, cluster, backend=self.backend)
        restored = False
        if self.checkpointer is not None:
            restored = restore_guarding_corruption(
                lambda: state.restore(self.checkpointer, self.run_name),
                what=f"async run {self.run_name}",
                obs=obs,
            )
            if obs.enabled:
                obs.trace.emit(
                    "ckpt.restore", t=0.0, run=self.run_name, restored=restored
                )
        if not restored:
            state.seed_initial_delta()
        counters = state.counters
        aggregate = plan.aggregate
        combine = aggregate.combine
        owner = state.owner
        shards = state.shards
        speeds = state.speeds
        selective = aggregate.is_idempotent

        chaos = injector_for(cluster, obs)
        recovery_mode = self.recovery
        if recovery_mode == "auto":
            recovery_mode = "local" if selective else "global"
        checkpoint_interval = self.checkpoint_interval
        if checkpoint_interval <= 0 and (
            chaos is not None or self.checkpointer is not None
        ):
            checkpoint_interval = cost.termination_interval

        buffers = [
            {
                target: self._make_buffer(w, target)
                for target in range(num_workers)
                if target != w
            }
            for w in range(num_workers)
        ]
        busy_until = [0.0] * num_workers
        scheduled = [False] * num_workers
        inflight = 0
        progress_magnitude = 0.0
        progress_updates = 0

        # -- chaos state (all unused on the fault-free path) -------------------
        if chaos is not None:
            schedule_cfg = cluster.faults
            down = [False] * num_workers
            seq_next = [[0] * num_workers for _ in range(num_workers)]
            retrans = [
                {
                    target: RetransmitBuffer(
                        schedule_cfg.retransmit_timeout,
                        schedule_cfg.retransmit_backoff,
                        schedule_cfg.max_retransmit_timeout,
                    )
                    for target in range(num_workers)
                    if target != w
                }
                for w in range(num_workers)
            ]
            #: seen[target][sender] -> sequence numbers already applied
            seen = [
                [set() for _ in range(num_workers)] for _ in range(num_workers)
            ]
            remaining_crashes = sorted(
                schedule_cfg.crashes, key=lambda crash: crash.at
            )
        else:
            down = retrans = seen = None
            remaining_crashes = []

        heap: list = []
        sequence = itertools.count()

        def schedule(time: float, kind: str, data=None):
            heapq.heappush(heap, (time, next(sequence), kind, data))

        def schedule_worker(worker: int, time: float):
            if chaos is not None and down[worker]:
                return
            if not scheduled[worker]:
                scheduled[worker] = True
                schedule(max(time, busy_until[worker]), "process", worker)

        # -- transmission: the only way a payload crosses workers ---------------
        def transmit(worker: int, target: int, payload: dict, send_time: float):
            nonlocal inflight
            counters.messages += 1
            counters.message_tuples += len(payload)
            if chaos is None:
                schedule(send_time + cost.message_latency, "deliver", (target, payload))
                inflight += 1
                return
            seq = seq_next[worker][target]
            seq_next[worker][target] = seq + 1
            rbuffer = retrans[worker][target]
            rbuffer.track(seq, payload)
            schedule(send_time + rbuffer.timeout(1), "rto", (worker, target, seq, 1))
            launch(worker, target, seq, payload, send_time)

        def launch(sender: int, target: int, seq: int, payload: dict, send_time: float):
            """One transmission attempt, with its injected fate."""
            nonlocal inflight
            if down[target] or chaos.drops(sender, target, send_time):
                chaos.record(
                    "dropped_messages",
                    t=send_time,
                    sender=sender,
                    target=target,
                    seq=seq,
                )
                return
            delay = cost.message_latency + chaos.extra_latency()
            schedule(send_time + delay, "deliver", (target, payload, sender, seq))
            inflight += 1
            if chaos.duplicates():
                chaos.record(
                    "duplicated_messages",
                    t=send_time,
                    sender=sender,
                    target=target,
                    seq=seq,
                )
                schedule(
                    send_time + delay + chaos.extra_latency(),
                    "deliver",
                    (target, payload, sender, seq),
                )
                inflight += 1

        for worker in range(num_workers):
            if shards[worker].has_pending():
                schedule_worker(worker, worker * 1e-6)
        schedule(cost.termination_interval, "master", None)
        if checkpoint_interval > 0:
            schedule(checkpoint_interval, "ckpt", None)
        for crash in remaining_crashes:
            schedule(crash.at, "crash", crash)

        tracker = TerminationTracker(self.termination)
        draw_transient = cluster.transient_stream(salt=3)
        prev_global: Optional[float] = None
        stop: Optional[str] = None
        now = 0.0
        last_activity = 0.0

        def select_batch(worker: int) -> list:
            """Pick the keys to process this round.

            Selective aggregates process best-first (smallest pending
            delta for min), a realistic async priority; additive ones use
            arrival order, deferring deltas below the importance
            threshold (section 5.4) while any larger one exists.
            """
            shard = shards[worker]
            limit = self._batch_limit(worker)
            pending = shard.intermediate
            if selective:
                keys = sorted(pending, key=pending.get)
                return keys if limit is None else keys[:limit]
            if self.importance_threshold is not None:
                # section 5.4: only important deltas propagate now; the
                # rest stay cached in the intermediate column, combining
                # with later arrivals until they matter.
                important = [
                    key
                    for key, value in pending.items()
                    if aggregate.delta_magnitude(value) >= self.importance_threshold
                ]
                return important if limit is None else important[:limit]
            if limit is None:
                return list(pending)
            return list(itertools.islice(pending, limit))

        def flush_ready_buffers(worker: int, time: float) -> float:
            """Flush every buffer that is full or stale; returns new time."""
            for target, buffer in buffers[worker].items():
                if buffer.should_flush(time):
                    payload = buffer.flush(time)
                    buffer.observe_flush(time)
                    if obs.enabled:
                        obs.trace.emit(
                            "buffer.flush", t=time, worker=worker, target=target,
                            size=len(payload), reason="ready",
                        )
                        obs.metrics.inc("buffer.flushes", worker=worker)
                        obs.metrics.observe("buffer.flush_size", len(payload))
                    send_cpu = (
                        cost.message_cpu_cost + len(payload) * cost.tuple_net_cost
                    ) / speeds[worker]
                    time += send_cpu
                    transmit(worker, target, payload, time)
            return time

        def schedule_timer_if_buffered(worker: int, time: float) -> None:
            if any(b.pending for b in buffers[worker].values()):
                schedule(time + self.buffer_policy.tau, "timer", worker)

        def handle_process(worker: int, time: float) -> None:
            nonlocal progress_magnitude, progress_updates
            scheduled[worker] = False
            if chaos is not None and down[worker]:
                return
            shard = shards[worker]
            if not shard.has_pending():
                return
            batch = select_batch(worker)
            if not batch:
                # everything pending is below the importance threshold;
                # idle until new deliveries make some delta important --
                # but buffered remote updates must still age out.
                finish = flush_ready_buffers(worker, time)
                busy_until[worker] = finish
                schedule_timer_if_buffered(worker, finish)
                return
            send_cpu_total = 0.0

            def emit(dst, value, ops_so_far):
                # foreign-edge contribution: buffer it, flushing mid-batch
                # when full -- the size knob beta is exactly the
                # communication frequency the unified engine adapts
                # (section 5.3)
                nonlocal send_cpu_total
                target = owner[dst]
                buffer = buffers[worker][target]
                buffer.add(dst, value, combine)
                if buffer.pending_count < buffer.beta:
                    return
                moment = time + ops_so_far * cost.tuple_cost / speeds[worker]
                payload = buffer.flush(moment)
                buffer.observe_flush(moment)
                if obs.enabled:
                    obs.trace.emit(
                        "buffer.flush", t=moment, worker=worker, target=target,
                        size=len(payload), reason="full",
                    )
                    obs.metrics.inc("buffer.flushes", worker=worker)
                    obs.metrics.observe("buffer.flush_size", len(payload))
                send_cpu = (
                    cost.message_cpu_cost + len(payload) * cost.tuple_net_cost
                ) / speeds[worker]
                send_cpu_total += send_cpu
                transmit(worker, target, payload, moment + send_cpu)

            batch_result = shard.apply_batch(keys=batch, emit=emit)
            ops = batch_result.ops
            progress_magnitude += batch_result.magnitude
            progress_updates += batch_result.changed
            self._observe_processing(worker, len(batch))
            stretch = draw_transient()
            if chaos is not None:
                stretch *= chaos.slowdown(worker, time)
            compute = (
                ops * cost.tuple_cost * stretch / speeds[worker]
                + send_cpu_total
            )
            finish = flush_ready_buffers(worker, time + compute)

            busy_until[worker] = finish
            if shard.has_pending():
                schedule_worker(worker, finish)
            else:
                schedule_timer_if_buffered(worker, finish)

        def handle_deliver(data, time: float) -> None:
            nonlocal inflight
            inflight -= 1
            if chaos is None:
                target, payload = data
            else:
                target, payload, sender, seq = data
                if down[target]:
                    # lost on a dead worker; the sender's rto re-sends it
                    chaos.record(
                        "dropped_messages", t=time, sender=sender, target=target, seq=seq
                    )
                    return
                # ack the delivery (acks can be lost too; the rto covers it)
                if chaos.drops(target, sender, time):
                    chaos.record(
                        "dropped_messages",
                        t=time,
                        sender=target,
                        target=sender,
                        seq=seq,
                        ack=True,
                    )
                else:
                    schedule(time + cost.message_latency, "ack", (sender, target, seq))
                if seq in seen[target][sender]:
                    chaos.record(
                        "duplicates_absorbed",
                        t=time,
                        sender=sender,
                        target=target,
                        seq=seq,
                    )
                    if not selective:
                        # non-idempotent aggregates must not re-apply; the
                        # idempotent path falls through and lets g absorb
                        return
                else:
                    seen[target][sender].add(seq)
            shard = shards[target]
            for dst, value in payload.items():
                shard.push(dst, value)
            self._observe_delivery(target, len(payload))
            schedule_worker(target, time)

        def handle_ack(data, time: float) -> None:
            sender, target, seq = data
            if down[sender]:
                return  # the sender's retransmit state died with it
            retrans[sender][target].ack(seq)
            if obs.enabled:
                obs.trace.emit("net.ack", t=time, sender=sender, target=target, seq=seq)

        def handle_rto(data, time: float) -> None:
            sender, target, seq, attempt = data
            if down[sender]:
                return
            rbuffer = retrans[sender][target]
            payload = rbuffer.get(seq)
            if payload is None:
                return  # acked in the meantime
            chaos.record(
                "retransmits", t=time, sender=sender, target=target, seq=seq,
                attempt=attempt,
            )
            launch(sender, target, seq, payload, time)
            next_timeout = rbuffer.timeout(attempt + 1)
            if obs.enabled:
                obs.trace.emit(
                    "net.backoff", t=time, sender=sender, target=target, seq=seq,
                    attempt=attempt + 1, timeout=next_timeout,
                )
            schedule(
                time + next_timeout,
                "rto",
                (sender, target, seq, attempt + 1),
            )

        # -- checkpoints and the two recovery strategies ------------------------
        latest_snapshot: list = [None]

        def take_snapshot() -> dict:
            return {
                "shards": [s.snapshot() for s in shards],
                "buffers": [
                    {
                        t: (dict(b.pending), b.pending_count, b.last_flush_time, b.beta)
                        for t, b in worker_buffers.items()
                    }
                    for worker_buffers in buffers
                ],
                "retrans": [
                    {t: dict(r.unacked) for t, r in worker_retrans.items()}
                    for worker_retrans in retrans
                ],
                "seq_next": [list(row) for row in seq_next],
                "seen": [[set(s) for s in row] for row in seen],
                "progress": (progress_updates, progress_magnitude, prev_global),
            }

        if chaos is not None and recovery_mode == "global":
            latest_snapshot[0] = take_snapshot()

        def handle_ckpt(time: float) -> None:
            if chaos is not None and any(down):
                # a shard is a hole right now; try again next interval
                schedule(time + checkpoint_interval, "ckpt", None)
                return
            if self.checkpointer is not None:
                state.checkpoint(self.checkpointer, self.run_name)
                if obs.enabled:
                    obs.trace.emit("ckpt.write", t=time, run=self.run_name)
            if chaos is not None:
                if recovery_mode == "global":
                    latest_snapshot[0] = take_snapshot()
                chaos.record("checkpoints", t=time)
            schedule(time + checkpoint_interval, "ckpt", None)

        def handle_crash(crash, time: float) -> None:
            worker = crash.worker
            remaining_crashes.remove(crash)
            if down[worker]:
                return  # already dead; the scheduled crash is moot
            chaos.record("crashes", t=time, worker=worker)
            if recovery_mode == "global":
                rollback(time, crash.restart_after)
                return
            down[worker] = True
            scheduled[worker] = False
            busy_until[worker] = time
            # everything volatile dies: shard, send buffers, retransmit
            # state, dedup state
            for buffer in buffers[worker].values():
                buffer.flush(time)
            for rbuffer in retrans[worker].values():
                rbuffer.clear()
            for sender_seen in seen[worker]:
                sender_seen.clear()
            state.shards[worker] = state.blank_shard(worker)
            schedule(time + crash.restart_after, "restart", worker)

        def handle_restart(worker: int, time: float) -> None:
            """Local recovery: checkpoint (or ``C``) restore + Theorem-3 replay."""
            down[worker] = False
            restored_shard = False
            if self.checkpointer is not None:
                restored_shard = restore_guarding_corruption(
                    lambda: state.restore_shard_state(
                        self.checkpointer, self.run_name, worker
                    ),
                    what=f"async run {self.run_name} shard {worker}",
                    obs=obs,
                )
            if obs.enabled:
                obs.trace.emit(
                    "ckpt.restore",
                    t=time,
                    run=self.run_name,
                    worker=worker,
                    restored=restored_shard,
                )
            if not restored_shard:
                state.reseed_shard(worker)
            chaos.record("recoveries", t=time, worker=worker)
            # every live worker re-derives the deltas that cross the
            # crashed worker's boundary from its *accumulated* column;
            # re-delivery is absorbed by g-combining (idempotent
            # aggregates only -- additive ones take the rollback path)
            for peer in range(num_workers):
                if down[peer]:
                    continue
                source = shards[peer]
                outbound: dict[int, dict] = {}
                ops = 0
                for key, value in source.accumulated.items():
                    if value is None:
                        continue
                    for dst, params, fn in plan.edges_from(key):
                        target = owner[dst]
                        if peer != worker and target != worker:
                            continue  # only edges touching the crashed worker
                        contribution = fn(value, *params)
                        ops += 1
                        if target == peer:
                            source.push(dst, contribution)
                        else:
                            box = outbound.setdefault(target, {})
                            if dst in box:
                                box[dst] = combine(box[dst], contribution)
                            else:
                                box[dst] = contribution
                if ops:
                    chaos.record(
                        "replayed_tuples", t=time, n=ops, peer=peer, worker=worker
                    )
                    counters.fprime_applications += ops
                    send_time = (
                        max(time, busy_until[peer])
                        + ops * cost.tuple_cost / speeds[peer]
                    )
                    busy_until[peer] = send_time
                    for target, payload in outbound.items():
                        transmit(peer, target, payload, send_time)
                if source.has_pending():
                    schedule_worker(peer, max(time, busy_until[peer]))

        def rollback(time: float, restart_after: float) -> None:
            """Coordinated recovery: every worker returns to the latest
            globally consistent snapshot; the clock keeps moving forward."""
            nonlocal inflight, progress_updates, progress_magnitude, prev_global
            chaos.record("recoveries", t=time)
            chaos.record("rollbacks", t=time)
            snap = latest_snapshot[0]
            resume = time + restart_after
            for w, shard_snap in enumerate(snap["shards"]):
                shards[w].restore(shard_snap)
            for w, snap_buffers in enumerate(snap["buffers"]):
                for t, (pending, count, last_flush, beta) in snap_buffers.items():
                    buffer = buffers[w][t]
                    buffer.pending = dict(pending)
                    buffer.pending_count = count
                    buffer.last_flush_time = last_flush
                    buffer.beta = beta
            for w, snap_retrans in enumerate(snap["retrans"]):
                for t, unacked in snap_retrans.items():
                    retrans[w][t].unacked = dict(unacked)
            for w in range(num_workers):
                seq_next[w][:] = snap["seq_next"][w]
                seen[w] = [set(s) for s in snap["seen"][w]]
            progress_updates, progress_magnitude, prev_global = snap["progress"]
            # every queued event refers to pre-rollback state: wipe the
            # future and rebuild it from the restored state
            heap.clear()
            inflight = 0
            for w in range(num_workers):
                scheduled[w] = False
                busy_until[w] = resume
                down[w] = False
            for w in range(num_workers):
                for t, rbuffer in retrans[w].items():
                    for seq in rbuffer.unacked:
                        schedule(resume + rbuffer.timeout(1), "rto", (w, t, seq, 1))
                if shards[w].has_pending():
                    schedule_worker(w, resume)
                if any(b.pending for b in buffers[w].values()):
                    schedule(resume + self.buffer_policy.tau, "timer", w)
            for crash in remaining_crashes:
                schedule(max(crash.at, resume), "crash", crash)
            if checkpoint_interval > 0:
                schedule(resume + checkpoint_interval, "ckpt", None)
            schedule(resume + cost.termination_interval, "master", None)

        def handle_timer(worker: int, time: float) -> None:
            if chaos is not None and down[worker]:
                return
            finish = flush_ready_buffers(worker, time)
            schedule_timer_if_buffered(worker, finish)

        def net_quiet() -> bool:
            """No lost-but-unacked deltas and no dead workers."""
            if chaos is None:
                return True
            if any(down):
                return False
            return not any(
                rbuffer.pending
                for worker_retrans in retrans
                for rbuffer in worker_retrans.values()
            )

        def quiescent() -> bool:
            if inflight:
                return False
            if not net_quiet():
                return False
            if any(shard.has_pending() for shard in shards):
                return False
            return not any(
                buffer.pending
                for worker_buffers in buffers
                for buffer in worker_buffers.values()
            )

        idle_checks = 0
        while heap and stop is None:
            now, _, kind, data = heapq.heappop(heap)
            if kind == "process":
                handle_process(data, now)
                last_activity = max(last_activity, busy_until[data])
            elif kind == "deliver":
                handle_deliver(data, now)
                last_activity = max(last_activity, now)
            elif kind == "timer":
                handle_timer(data, now)
            elif kind == "ack":
                handle_ack(data, now)
            elif kind == "rto":
                handle_rto(data, now)
            elif kind == "ckpt":
                handle_ckpt(now)
            elif kind == "crash":
                handle_crash(data, now)
                last_activity = max(last_activity, now)
            elif kind == "restart":
                handle_restart(data, now)
                last_activity = max(last_activity, now)
            elif kind == "master":
                if quiescent():
                    counters.iterations += 1
                    stop = "fixpoint"
                    break
                buffered = any(
                    buffer.pending
                    for worker_buffers in buffers
                    for buffer in worker_buffers.values()
                )
                # "idle" requires genuinely nothing in flight anywhere:
                # no messages travelling, no worker scheduled, no updates
                # sitting in a send buffer waiting for its timer, and --
                # under fault injection -- no unacked message awaiting a
                # retransmit and no crashed worker awaiting restart.
                all_idle = (
                    inflight == 0
                    and not any(scheduled)
                    and not buffered
                    and net_quiet()
                )
                if progress_updates == 0 and not all_idle:
                    # workers are mid-burst (or only deliveries landed):
                    # the accumulation column has not moved since the
                    # last check, so comparing two identical snapshots
                    # would fake convergence.  Wait for the clock to
                    # catch up with the busy workers.
                    idle_checks += 1
                    if idle_checks > self.termination.max_iterations:
                        stop = "iteration-limit"
                        break
                    schedule(now + cost.termination_interval, "master", None)
                    continue
                idle_checks = 0
                counters.iterations += 1
                tracker.record(progress_updates, progress_magnitude)
                if obs.enabled:
                    obs.trace.emit(
                        "engine.epoch",
                        t=now,
                        engine=self.engine_name,
                        round=counters.iterations,
                        changed=progress_updates,
                        delta=progress_magnitude,
                    )
                progress_updates = 0
                progress_magnitude = 0.0
                current_global = state.global_accumulation()
                epsilon_reached = (
                    self.termination.epsilon is not None
                    and prev_global is not None
                    and net_quiet()
                    and self.termination.epsilon_met(abs(current_global - prev_global))
                )
                if epsilon_reached or (
                    all_idle and self.termination.epsilon is not None
                ):
                    # either genuine convergence, or only sub-threshold
                    # deferred residue remains (section 5.4)
                    stop = "epsilon"
                    break
                prev_global = current_global
                if tracker.iterations >= self.termination.max_iterations:
                    stop = "iteration-limit"
                    break
                schedule(now + cost.termination_interval, "master", None)

        if stop is None:
            # the heap drained before a master event observed quiescence
            stop = "fixpoint" if quiescent() else "iteration-limit"
        # a fixpoint is reached when the last work event finishes, not when
        # the master's periodic check happens to observe it
        finished_at = last_activity if stop == "fixpoint" else now

        result = EvalResult(
            values=state.merged_values(),
            stop_reason=stop,
            counters=counters,
            simulated_seconds=finished_at,
            engine=self.engine_name,
            trace=tracker.history,
            faults=chaos.stats if chaos is not None else None,
            backend=state.backend,
        )
        if obs.enabled:
            from repro.analysis.absint import (
                estimate_plan_cost,
                record_cost_metrics,
            )
            from repro.analysis.comm import record_comm_metrics

            obs.metrics.absorb_work_counters(counters, engine=self.engine_name)
            record_backend_metrics(obs.metrics, self.engine_name, state.backend)
            record_comm_metrics(
                obs.metrics, self.plan, self.cluster.num_workers
            )
            record_cost_metrics(obs.metrics, estimate_plan_cost(self.plan))
            result.metrics = obs.metrics
        return result
