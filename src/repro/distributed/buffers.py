"""Per-destination message buffers with adaptive sizing (paper section 5.3).

Each worker in an N-node cluster keeps N-1 buffers, one per peer.  A
buffer flushes when it holds ``beta(i,j)`` updates or when ``tau``
seconds have passed since the last flush.  The adaptive policy implements
the paper's rule: over a measurement window ``dT`` accumulating ``|B|``
updates,

* fast pace  (``|B|/dT >  r * beta/tau``)  -> grow ``beta``,
* slow pace  (``|B|/dT <  beta/(r*tau)``)  -> shrink ``beta``,

with ``beta = alpha * tau * |B|/dT``, ``alpha = 0.8`` and ``r = 2``
(the paper's fixed damping factor and configurable threshold).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BufferPolicy:
    """Parameters of the adaptive buffer rule."""

    initial_beta: float = 64.0
    tau: float = 5e-3  # flush interval in simulated seconds
    alpha: float = 0.8  # damping factor (paper: fixed to 0.8)
    r: float = 2.0  # pace threshold (paper: set to 2)
    min_beta: float = 4.0
    max_beta: float = 8192.0
    adaptive: bool = True


class FixedBuffer:
    """A non-adaptive buffer: flush at ``beta`` updates or ``tau`` elapsed."""

    def __init__(self, beta: float, tau: float):
        self.beta = beta
        self.tau = tau
        self.pending: dict = {}
        self.pending_count = 0
        self.last_flush_time = 0.0

    def add(self, key, value, combine) -> None:
        """Combine an update into the buffer (g-combining duplicates)."""
        if key in self.pending:
            self.pending[key] = combine(self.pending[key], value)
        else:
            self.pending[key] = value
            self.pending_count += 1

    def should_flush(self, now: float) -> bool:
        if not self.pending:
            return False
        if self.pending_count >= self.beta:
            return True
        return (now - self.last_flush_time) >= self.tau

    def flush(self, now: float) -> dict:
        payload = self.pending
        self.pending = {}
        self.pending_count = 0
        self.last_flush_time = now
        return payload

    def observe_flush(self, now: float) -> None:  # pragma: no cover - FixedBuffer no-op
        """Hook for adaptive subclasses; fixed buffers do nothing."""


class RetransmitBuffer:
    """Unacked-message store backing the chaos layer's reliable delivery.

    Sits next to the flush buffers: every transmitted message is tracked
    under its per-destination sequence number until the receiver's ack
    arrives; an ack timeout retransmits with exponential backoff.  The
    payload keeps its original sequence number across retries so the
    receiver can deduplicate (non-idempotent aggregates) or absorb
    (idempotent aggregates) redundant deliveries.
    """

    def __init__(self, base_timeout: float, backoff: float = 2.0, max_timeout: float = 8e-2):
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.unacked: dict = {}

    def track(self, seq: int, payload: dict) -> None:
        self.unacked[seq] = payload

    def ack(self, seq: int) -> None:
        self.unacked.pop(seq, None)

    def get(self, seq: int):
        """The payload still awaiting an ack, or ``None`` once acked."""
        return self.unacked.get(seq)

    def timeout(self, attempt: int) -> float:
        """Backed-off ack timeout for the given attempt (1-based)."""
        return min(
            self.base_timeout * self.backoff ** max(0, attempt - 1),
            self.max_timeout,
        )

    @property
    def pending(self) -> bool:
        return bool(self.unacked)

    def clear(self) -> None:
        self.unacked.clear()

    def __len__(self):
        return len(self.unacked)


class AdaptiveBuffer(FixedBuffer):
    """The paper's adaptive buffer: ``beta`` follows the update pace.

    ``on_adapt`` is an optional observability hook: whenever the pace
    rule actually adjusts ``beta`` it is called as
    ``on_adapt(now, old_beta, new_beta, pace)``.  The owning engine
    attaches it with the buffer's ``(worker, target)`` context bound in;
    the buffer itself stays context-free.
    """

    def __init__(self, policy: BufferPolicy, on_adapt=None):
        super().__init__(policy.initial_beta, policy.tau)
        self.policy = policy
        self.on_adapt = on_adapt
        self._window_start = 0.0
        self._window_updates = 0

    def add(self, key, value, combine) -> None:
        super().add(key, value, combine)
        self._window_updates += 1

    def observe_flush(self, now: float) -> None:
        """Adapt ``beta`` from the pace observed since the last window."""
        if not self.policy.adaptive:
            return
        window = now - self._window_start
        if window <= 0:
            return
        pace = self._window_updates / window  # |B| / dT
        threshold = self.beta / self.policy.tau  # beta / tau
        if pace > self.policy.r * threshold or pace < threshold / self.policy.r:
            new_beta = self.policy.alpha * self.policy.tau * pace
            old_beta = self.beta
            self.beta = min(
                self.policy.max_beta, max(self.policy.min_beta, new_beta)
            )
            if self.on_adapt is not None and self.beta != old_beta:
                self.on_adapt(now, old_beta, self.beta, pace)
        self._window_start = now
        self._window_updates = 0
