"""Cluster configuration and the simulated cost model.

The cost model converts *measured* work counters into simulated seconds.
The defaults are calibrated to the paper's testbed regime (section 6.2:
4-vCPU nodes, 1.5 Gbps network): per-tuple costs in the tens of
nanoseconds of useful work per core, millisecond-scale message latency,
and barrier costs dominated by coordination round trips.  What matters
for reproduction is the *ratios* -- compute vs message vs barrier -- not
the absolute values; EXPERIMENTS.md records the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.runtime.compat import np

from repro.distributed.chaos import FaultSchedule


@dataclass(frozen=True)
class CostModel:
    """Simulated costs, all in seconds."""

    #: CPU cost of one F' application / combine on a worker.  Calibrated
    #: to the JVM-based Datalog engines the paper benchmarks (hundreds of
    #: thousands of tuples per second per core).
    tuple_cost: float = 5e-6
    #: CPU cost of one stored-tuple access (hash probe / insert) in the
    #: relational path that naive evaluation takes
    scan_cost: float = 4e-6
    #: hash probes per edge binding in naive evaluation's per-iteration
    #: join (probe the recursive table, the edge index, auxiliaries, and
    #: materialise the binding) -- the "additional join in each
    #: iteration" of section 6.3
    join_scan_factor: float = 3.0
    #: fixed network latency per message
    message_latency: float = 1e-3
    #: additional network cost per payload tuple (bandwidth term)
    tuple_net_cost: float = 5e-7
    #: per-message CPU overhead on the sender (serialisation, syscalls)
    message_cpu_cost: float = 5e-5
    #: coordination cost of one global barrier
    barrier_cost: float = 2.5e-3
    #: extra per-superstep scheduling overhead (Spark-style job launch)
    job_overhead: float = 0.0
    #: period of the async master's termination check (section 5.4)
    termination_interval: float = 5e-2

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ClusterConfig:
    """A simulated cluster: workers, speeds, and the cost model.

    The default mirrors the paper's setup: 16 workers (17 nodes, one
    dedicated master).  ``speed_jitter`` introduces deterministic
    per-worker speed variation, the source of straggler waits at
    barriers.
    """

    num_workers: int = 16
    cost: CostModel = field(default_factory=CostModel)
    #: static per-worker speed variation (hardware heterogeneity)
    speed_jitter: float = 0.15
    #: transient per-burst slowdown (cloud noisy neighbours, GC pauses):
    #: each compute burst is stretched by up to this factor.  Synchronous
    #: execution waits for the per-superstep *maximum* stretch at every
    #: barrier; asynchronous execution only pays the *mean*, which is the
    #: "synchronization overhead is the most expensive" effect of
    #: section 5.3.
    transient_jitter: float = 0.5
    seed: int = 42
    #: deterministic fault-injection schedule (``None`` = fault-free);
    #: when set, the engines route every message through the chaos
    #: layer's ack/retransmit/dedup path and run the scheduled crashes
    #: and recoveries (see :mod:`repro.distributed.chaos`)
    faults: Optional[FaultSchedule] = None

    def worker_speeds(self) -> list[float]:
        """Deterministic relative speeds centred on 1.0."""
        if self.speed_jitter <= 0:
            return [1.0] * self.num_workers
        rng = np.random.default_rng(self.seed)
        speeds = rng.uniform(
            1.0 - self.speed_jitter, 1.0 + self.speed_jitter, self.num_workers
        )
        return speeds.tolist()

    def transient_stream(self, salt: int = 0):
        """Deterministic stream of compute-burst stretch factors >= 1."""
        rng = np.random.default_rng(self.seed * 7919 + salt)
        jitter = self.transient_jitter

        def draw() -> float:
            return 1.0 + jitter * float(rng.random())

        return draw

    def with_workers(self, num_workers: int) -> "ClusterConfig":
        return replace(self, num_workers=num_workers)

    def with_cost(self, **kwargs) -> "ClusterConfig":
        return replace(self, cost=self.cost.with_overrides(**kwargs))

    def with_faults(self, faults: Optional[FaultSchedule]) -> "ClusterConfig":
        if faults is not None:
            faults.validate(self.num_workers)
        return replace(self, faults=faults)


#: canonical cluster used by the benchmark harness (paper section 6.2)
def paper_cluster() -> ClusterConfig:
    return ClusterConfig(num_workers=16)
