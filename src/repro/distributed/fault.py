"""Fault tolerance: MonoTable checkpointing (paper Figure 6).

PowerLog checkpoints intermediates to HDFS; this reproduction
checkpoints the sharded MonoTable state to local JSON files and can
restore a run after a simulated worker failure.  Because MRA state is a
pair of per-key aggregates (accumulation + intermediate), a checkpoint
is simply both columns; restoring and continuing evaluation reaches the
same fixpoint by Theorem 3 (any delta re-delivery is ``g``-combined).
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.engine.monotable import MonoTable


def _encode_key(key) -> str:
    if isinstance(key, tuple):
        return json.dumps(list(key))
    return json.dumps(key)


def _decode_key(text: str):
    value = json.loads(text)
    if isinstance(value, list):
        return tuple(value)
    return value


class Checkpointer:
    """Write and restore MonoTable shard checkpoints."""

    def __init__(self, directory: Union[str, os.PathLike]):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, run_name: str, shard_id: int) -> str:
        return os.path.join(self.directory, f"{run_name}.shard{shard_id}.json")

    def save_shard(self, run_name: str, shard_id: int, table: MonoTable) -> str:
        """Checkpoint one shard's accumulation and intermediate columns."""
        payload = {
            "aggregate": table.aggregate.name,
            "accumulated": {
                _encode_key(k): v for k, v in table.accumulated.items()
            },
            "intermediate": {
                _encode_key(k): v for k, v in table.intermediate.items()
            },
        }
        path = self._path(run_name, shard_id)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return path

    def restore_shard(self, run_name: str, shard_id: int, table: MonoTable) -> None:
        """Load a checkpoint back into a shard (in place)."""
        path = self._path(run_name, shard_id)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload["aggregate"] != table.aggregate.name:
            raise ValueError(
                f"checkpoint aggregate {payload['aggregate']!r} does not match "
                f"table aggregate {table.aggregate.name!r}"
            )
        table.accumulated = {
            _decode_key(k): v for k, v in payload["accumulated"].items()
        }
        table.intermediate = {
            _decode_key(k): v for k, v in payload["intermediate"].items()
        }

    def has_checkpoint(self, run_name: str, shard_id: int) -> bool:
        return os.path.exists(self._path(run_name, shard_id))
