"""Fault tolerance: MonoTable checkpointing (paper Figure 6).

PowerLog checkpoints intermediates to HDFS; this reproduction
checkpoints the sharded MonoTable state to local JSON files and can
restore a run after a simulated worker failure.  Because MRA state is a
pair of per-key aggregates (accumulation + intermediate), a checkpoint
is simply both columns; restoring and continuing evaluation reaches the
same fixpoint by Theorem 3 (any delta re-delivery is ``g``-combined).

Robustness guarantees of the on-disk format:

* writes are **atomic** (temp file + ``os.replace``), so a crash
  mid-write can never leave a truncated JSON that poisons the next
  restore;
* an unreadable or unparseable checkpoint is treated as "no checkpoint"
  with a warning -- recovery falls back to reseeding -- rather than
  raising into the engine;
* checkpoints carry **run-compatibility metadata** (program name,
  ``num_workers``, shard id, schema version); restoring into an
  incompatible run fails loudly with :class:`CheckpointMismatchError`
  instead of silently loading wrong keys into wrong shards;
* payloads carry a **content checksum** (CRC32 over the canonical
  encoding); a bit-flipped shard that still parses as JSON raises
  :class:`CheckpointCorruptionError` instead of restoring silently
  wrong aggregates.  The error is a :class:`CheckpointMismatchError`
  subclass, and the engines catch exactly it -- corruption falls back
  to reseed-and-replay, while a genuine run mismatch (wrong program,
  wrong worker count) stays loud.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from typing import Optional, Union

from repro.engine.monotable import MonoTable
from repro.obs import ensure_obs

#: bump when the on-disk payload layout changes incompatibly
CHECKPOINT_SCHEMA_VERSION = 3


class CheckpointMismatchError(ValueError):
    """A checkpoint exists but belongs to an incompatible run."""


class CheckpointCorruptionError(CheckpointMismatchError):
    """A checkpoint parses but its content fails checksum validation."""


def _payload_checksum(payload: dict) -> int:
    """CRC32 over the canonical encoding of the restorable content."""
    body = [
        payload.get("aggregate"),
        payload.get("shard_id"),
        payload.get("meta") or {},
        payload.get("accumulated") or {},
        payload.get("intermediate") or {},
    ]
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def _encode_key(key) -> str:
    if isinstance(key, tuple):
        return json.dumps(list(key))
    return json.dumps(key)


def _decode_key(text: str):
    value = json.loads(text)
    if isinstance(value, list):
        return tuple(value)
    return value


class Checkpointer:
    """Write and restore MonoTable shard checkpoints.

    With an :class:`~repro.obs.Observability` handle attached, every
    shard write/restore emits a ``ckpt.shard_write`` /
    ``ckpt.shard_restore`` trace event (disk side, so no simulated
    timestamp -- the engines emit the clocked ``ckpt.write`` /
    ``ckpt.restore`` spans).
    """

    def __init__(self, directory: Union[str, os.PathLike], obs=None):
        self.directory = str(directory)
        self.obs = ensure_obs(obs)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, run_name: str, shard_id: int) -> str:
        return os.path.join(self.directory, f"{run_name}.shard{shard_id}.json")

    def save_shard(
        self,
        run_name: str,
        shard_id: int,
        table: MonoTable,
        meta: Optional[dict] = None,
    ) -> str:
        """Checkpoint one shard's accumulation and intermediate columns.

        ``meta`` records run-compatibility facts (program name,
        ``num_workers``, ...) that :meth:`restore_shard` validates.  The
        write is atomic: a crash mid-write leaves the previous checkpoint
        intact.
        """
        payload = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "aggregate": table.aggregate.name,
            "shard_id": shard_id,
            "meta": dict(meta) if meta else {},
            "accumulated": {
                _encode_key(k): v for k, v in table.accumulated.items()
            },
            "intermediate": {
                _encode_key(k): v for k, v in table.intermediate.items()
            },
        }
        payload["checksum"] = _payload_checksum(payload)
        path = self._path(run_name, shard_id)
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)
        if self.obs.enabled:
            self.obs.trace.emit(
                "ckpt.shard_write",
                run=run_name,
                shard=shard_id,
                keys=len(payload["accumulated"]),
                pending=len(payload["intermediate"]),
            )
            self.obs.metrics.inc("ckpt.shard_writes", shard=shard_id)
        return path

    def restore_shard(
        self,
        run_name: str,
        shard_id: int,
        table: MonoTable,
        expect_meta: Optional[dict] = None,
    ) -> bool:
        """Load a checkpoint back into a shard (in place).

        Returns ``False`` (with a warning) when the checkpoint is missing
        or unreadable -- the caller reseeds instead.  Raises
        :class:`CheckpointMismatchError` when a *readable* checkpoint
        belongs to a different run (wrong aggregate, wrong shard, or any
        ``expect_meta`` entry that does not match), and the narrower
        :class:`CheckpointCorruptionError` when a schema-3 payload fails
        its content checksum (e.g. a bit flip on disk).
        """
        path = self._path(run_name, shard_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            accumulated = payload["accumulated"]
            intermediate = payload["intermediate"]
        except FileNotFoundError:
            return False
        except (json.JSONDecodeError, KeyError, UnicodeDecodeError, OSError) as exc:
            warnings.warn(
                f"checkpoint {path} is unreadable ({exc!r}); treating as missing",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        # schema >= 3 payloads are checksummed; older payloads (or
        # hand-written fixtures) predate the field and skip validation
        if payload.get("schema", 0) >= 3 or "checksum" in payload:
            recorded_sum = payload.get("checksum")
            actual_sum = _payload_checksum(payload)
            if recorded_sum != actual_sum:
                raise CheckpointCorruptionError(
                    f"checkpoint {path} fails its content checksum "
                    f"(recorded {recorded_sum!r}, computed {actual_sum}); "
                    f"the shard is corrupt and must not be restored"
                )
        if payload["aggregate"] != table.aggregate.name:
            raise CheckpointMismatchError(
                f"checkpoint aggregate {payload['aggregate']!r} does not match "
                f"table aggregate {table.aggregate.name!r}"
            )
        recorded_shard = payload.get("shard_id")
        if recorded_shard is not None and recorded_shard != shard_id:
            raise CheckpointMismatchError(
                f"checkpoint {path} records shard {recorded_shard}, "
                f"but shard {shard_id} does not match"
            )
        if expect_meta:
            recorded_meta = payload.get("meta") or {}
            for key, expected in expect_meta.items():
                recorded = recorded_meta.get(key)
                if recorded != expected:
                    raise CheckpointMismatchError(
                        f"checkpoint {path} metadata {key}={recorded!r} does "
                        f"not match this run's {key}={expected!r}; refusing to "
                        f"load state from an incompatible run"
                    )
        table.accumulated = {
            _decode_key(k): v for k, v in accumulated.items()
        }
        table.intermediate = {
            _decode_key(k): v for k, v in intermediate.items()
        }
        if self.obs.enabled:
            self.obs.trace.emit(
                "ckpt.shard_restore",
                run=run_name,
                shard=shard_id,
                keys=len(table.accumulated),
                pending=len(table.intermediate),
            )
            self.obs.metrics.inc("ckpt.shard_restores", shard=shard_id)
        return True

    def has_checkpoint(self, run_name: str, shard_id: int) -> bool:
        return os.path.exists(self._path(run_name, shard_id))


def restore_guarding_corruption(restore_call, what: str, obs=None) -> bool:
    """Run a restore callable, degrading *corruption* to "no checkpoint".

    The engines recover through this guard: a checksum-corrupt shard
    (bit flip, torn media) is recoverable state loss -- recovery falls
    back to reseed-and-replay and the run still converges -- so it must
    not crash a serving loop.  Any other
    :class:`CheckpointMismatchError` (wrong program, wrong worker
    count, wrong aggregate) means the caller is about to load state
    from a *different run* and keeps propagating loudly.
    """
    obs = ensure_obs(obs)
    try:
        return bool(restore_call())
    except CheckpointCorruptionError as exc:
        warnings.warn(
            f"{what}: {exc}; falling back to reseed-and-replay",
            RuntimeWarning,
            stacklevel=2,
        )
        if obs.enabled:
            obs.trace.emit("ckpt.corrupt", what=what, error=str(exc))
            obs.metrics.inc("ckpt.corrupt_restores")
        return False
