"""The unified sync-async engine (paper section 5.3).

Architecturally the unified engine *is* the async framework -- "our
method is in a framework of async computing" -- with the communication
frequency as the control knob:

* each worker's per-destination message buffers adapt their size
  ``beta(i,j)`` to the locally observed update pace (the paper's
  ``beta = alpha * tau * |B|/dT`` rule with ``alpha = 0.8``, ``r = 2``),
  spanning the spectrum from eager per-update messaging (maximum
  asynchrony) to full batching (equivalent to sync execution);
* for ``sum`` aggregations the section 5.4 importance optimisation
  defers deltas below a threshold, accumulating them locally until they
  matter -- fewer messages and fewer ``F'`` applications;
* the sync part of the design is the master's periodic global
  termination check, inherited from the async engine.
"""

from __future__ import annotations

from typing import Optional

from repro.aggregates import AggregateKind
from repro.distributed.async_engine import AsyncEngine
from repro.distributed.buffers import BufferPolicy
from repro.distributed.cluster import ClusterConfig
from repro.engine.plan import CompiledPlan
from repro.engine.termination import TerminationSpec


def _default_importance_threshold(plan: CompiledPlan) -> Optional[float]:
    """A conservative default for the section 5.4 threshold.

    Deltas below ``4 * eps / |keys|`` are deferred; the total deferred
    mass is therefore bounded by ``4 * eps`` (times the recursion's
    amplification factor), i.e. a per-key error well
    under the user's convergence tolerance, while the convergence tail --
    where per-key deltas shrink below the threshold -- stops paying full
    sweeps.
    """
    epsilon = plan.termination.epsilon
    if epsilon is None or not plan.keys:
        return None
    return 4.0 * epsilon / len(plan.keys)


class UnifiedEngine(AsyncEngine):
    """Adaptive sync-async execution: async core + adaptive buffers."""

    engine_name = "mra+sync-async"

    def __init__(
        self,
        plan: CompiledPlan,
        cluster: Optional[ClusterConfig] = None,
        buffer_policy: Optional[BufferPolicy] = None,
        batch_size: Optional[int] = None,
        importance_threshold: Optional[float] = None,
        termination: Optional[TerminationSpec] = None,
        checkpointer=None,
        checkpoint_interval: float = 0.0,
        run_name: str = "unified-run",
        recovery: str = "auto",
        obs=None,
        backend: Optional[str] = None,
    ):
        policy = buffer_policy or BufferPolicy(adaptive=True)
        if importance_threshold is None and plan.aggregate.kind is AggregateKind.ADDITIVE:
            importance_threshold = _default_importance_threshold(plan)
        super().__init__(
            plan,
            cluster=cluster,
            buffer_policy=policy,
            batch_size=batch_size,
            importance_threshold=importance_threshold,
            termination=termination,
            checkpointer=checkpointer,
            checkpoint_interval=checkpoint_interval,
            run_name=run_name,
            recovery=recovery,
            obs=obs,
            backend=backend,
        )
