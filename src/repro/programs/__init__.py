"""The paper's recursive aggregate program library (Table 1).

Fourteen programs: twelve that pass the MRA condition check (SSSP, CC,
PageRank, Adsorption, Katz metric, Belief Propagation, Paths-in-DAG,
Cost, Viterbi, SimRank, Lowest Common Ancestor, APSP) and two that fail
(CommNet, GCN-Forward).  Each :class:`ProgramSpec` carries the Datalog
source, the expected Table-1 verdict, and a database builder that turns a
:class:`~repro.graphs.Graph` into the program's EDB relations.
"""

from repro.programs.registry import (
    PROGRAMS,
    ProgramSpec,
    get_program,
    program_names,
    benchmark_programs,
)

__all__ = [
    "PROGRAMS",
    "ProgramSpec",
    "get_program",
    "program_names",
    "benchmark_programs",
]
