"""Database builders: turn a Graph into each program's EDB relations.

These perform the data preparation the paper's experiments assume:
weighted edge relations for SSSP/APSP, symmetrised edges for CC,
row-normalised weighted adjacency for the spectral programs
(Adsorption, Katz, Belief Propagation -- normalisation keeps the
recursions contractive at our graph scale, preserving the convergent
regime of the paper's runs), probability-weighted DAGs for
Cost/Viterbi, parent trees for LCA, and in-neighbour predecessor
relations for SimRank.

Counting inputs are certified rather than clamped:
:func:`multiplicity_dag_db` proves the exact walk-count bound of its
output (via the RA35x abstract interpreter's
:func:`~repro.analysis.absint.counting_walk_bound`) and raises with the
RA351 verdict when float64 exactness cannot be guaranteed, instead of
relying on a multiplicity clamp to keep counts small.
"""

from __future__ import annotations

from repro.runtime.compat import np

from repro.engine.relation import Database
from repro.graphs.graph import Graph


def weighted_graph_db(graph: Graph) -> Database:
    """``edge(src, dst, weight)`` with integer weights, plus ``node``."""
    return graph.as_database(weighted=True)


def plain_graph_db(graph: Graph) -> Database:
    """``edge(src, dst)`` and ``node(v)``."""
    return graph.as_database(weighted=False)


def symmetrized_db(graph: Graph) -> Database:
    """Undirected view for CC: every edge present in both directions."""
    edges = set(graph.edges)
    edges.update((dst, src) for src, dst in graph.edges)
    db = Database()
    db.add_facts("edge", sorted(edges), arity=2)
    db.add_facts("node", [(v,) for v in graph.vertices()], arity=1)
    return db


def _normalized_weights(graph: Graph) -> list[tuple[int, int, float]]:
    degrees = graph.out_degrees()
    return [
        (src, dst, 1.0 / degrees[src])
        for src, dst in graph.edges
    ]


def adsorption_db(graph: Graph) -> Database:
    """Adsorption EDB: stochastic adjacency A, weights pc/pi, init I."""
    db = Database()
    db.add_facts("a", _normalized_weights(graph))
    db.add_facts("node", [(v,) for v in graph.vertices()])
    db.add_facts("pc", [(v, 0.9) for v in graph.vertices()])
    db.add_facts("pi", [(v, 0.25) for v in graph.vertices()])
    db.add_facts("inj", [(v, 1.0) for v in graph.vertices()])
    return db


def katz_db(graph: Graph) -> Database:
    """Katz EDB: row-normalised adjacency (keeps alpha=0.5 contractive)
    and the source vertex with its initial metric score."""
    db = Database()
    db.add_facts("a", _normalized_weights(graph))
    db.add_facts("node", [(v,) for v in graph.vertices()])
    db.add_facts("src", [(0, 1000.0)])
    return db


def bp_db(graph: Graph, num_classes: int = 2) -> Database:
    """Belief propagation EDB: network E, coupling H, initial beliefs I."""
    db = Database()
    db.add_facts("enet", _normalized_weights(graph))
    coupling = []
    for c1 in range(num_classes):
        for c2 in range(num_classes):
            coupling.append((c1, c2, 0.6 if c1 == c2 else 0.4))
    db.add_facts("h", coupling)
    rng = np.random.default_rng(graph.seed + 0xBE11EF)
    beliefs = []
    for v in graph.vertices():
        p = float(rng.uniform(0.3, 0.7))
        beliefs.append((v, 0, p))
        beliefs.append((v, 1, 1.0 - p))
    db.add_facts("beliefs0", beliefs)
    return db


def probability_dag_db(graph: Graph) -> Database:
    """DAG with edge probabilities in (0, 1] for Cost and Viterbi."""
    db = Database()
    rows = [
        (src, dst, weight / 10.0) for src, dst, weight in graph.weighted_edges()
    ]
    db.add_facts("edge", rows)
    db.add_facts("node", [(v,) for v in graph.vertices()])
    return db


def dag_db(graph: Graph) -> Database:
    """Unweighted DAG for path counting.

    Cyclic inputs (the social datasets) are canonicalised to their
    forward sub-DAG -- only edges ``src < dst`` are kept -- so walk
    counting is well-defined and terminates.  The DAG generators emit
    topologically-id-ordered edges, so acyclic fixtures pass through
    unchanged.
    """
    db = Database()
    db.add_facts(
        "edge", [(src, dst) for src, dst in graph.edges if src < dst], arity=2
    )
    db.add_facts("node", [(v,) for v in graph.vertices()], arity=1)
    return db


def multiplicity_dag_db(graph: Graph) -> Database:
    """DAG with integer edge multiplicities for weighted counting.

    Float64 exactness is *certified*, not assumed: the builder computes
    the exact counting-semiring walk bound of the emitted forward
    sub-DAG (:func:`repro.analysis.absint.counting_walk_bound` -- the
    same number the RA35x range analysis proves for ``path_count``) and
    refuses any input whose counts could leave the exact-integer range,
    instead of clamping multiplicities and silently trusting the clamp.
    Statically bounded inputs run unclamped.  As in :func:`dag_db`,
    cyclic inputs are canonicalised to the forward sub-DAG (``src <
    dst``) so the counting fixpoint terminates.
    """
    from repro.analysis.absint import FLOAT64_EXACT_LIMIT, counting_walk_bound

    multiplicities = (
        graph.weights if graph.weights is not None else graph.generate_weights(1, 3)
    )
    rows = [
        (src, dst, m)
        for (src, dst), m in zip(graph.edges, multiplicities)
        if src < dst
    ]
    bound = counting_walk_bound(rows)
    if bound >= FLOAT64_EXACT_LIMIT:
        raise ValueError(
            f"RA351: walk counts reach {bound:g} >= 2**53 on this "
            "multiplicity DAG; the counting semiring's float64 carrier "
            "would lose precision.  Shrink the graph or its "
            "multiplicities -- the builder no longer saturates silently."
        )
    db = Database()
    db.add_facts("edge", rows)
    db.add_facts("node", [(v,) for v in graph.vertices()])
    return db


def probability_graph_db(graph: Graph) -> Database:
    """General digraph with edge success probabilities in (0, 1].

    Unlike :func:`probability_dag_db` the input may be cyclic: products
    of probabilities never increase along a walk, so the Viterbi-style
    max fixpoint still terminates.
    """
    return probability_dag_db(graph)


def tree_db(graph: Graph) -> Database:
    """LCA EDB: a parent tree derived from BFS over the graph, plus the
    two deepest leaves as the query pair."""
    from repro.graphs.stats import bfs_depths

    depths = bfs_depths(graph, 0)
    adjacency = graph.out_adjacency()
    parents = []
    seen = {0}
    order = sorted(depths, key=depths.get)
    parent_of = {}
    for vertex in order:
        for child in adjacency[vertex]:
            if child not in seen:
                seen.add(child)
                parent_of[child] = vertex
                parents.append((child, vertex))  # parent(child) = vertex
    db = Database()
    db.add_facts("parent", parents)
    deepest = sorted(seen, key=lambda v: depths.get(v, 0))[-2:]
    db.add_facts("query", [(v,) for v in deepest])
    db.add_facts("node", [(v,) for v in graph.vertices()])
    return db


def simrank_db(graph: Graph) -> Database:
    """SimRank EDB: ``pred(in_neighbour, vertex, 1/|I(vertex)|)``."""
    in_adjacency = graph.in_adjacency()
    rows = []
    for vertex, in_neighbours in enumerate(in_adjacency):
        if not in_neighbours:
            continue
        weight = 1.0 / len(in_neighbours)
        rows.extend((u, vertex, weight) for u in in_neighbours)
    db = Database()
    db.add_facts("pred", rows)
    db.add_facts("node", [(v,) for v in graph.vertices()])
    return db


def embedding_db(graph: Graph) -> Database:
    """GCN/CommNet EDB: normalised adjacency, learned parameter, inputs."""
    db = Database()
    db.add_facts("a", _normalized_weights(graph))
    db.add_facts("para", [(0.7,)])
    rng = np.random.default_rng(graph.seed + 0x6C4)
    db.add_facts(
        "feat", [(v, float(rng.uniform(-1.0, 1.0))) for v in graph.vertices()]
    )
    db.add_facts("node", [(v,) for v in graph.vertices()])
    return db
