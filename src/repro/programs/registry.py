"""Registry of the paper's fourteen recursive aggregate programs, plus
four semiring-family extensions.

Each program is given in the paper's Datalog dialect; sources follow the
paper's listings (Programs 1-7) where available.  Two deliberate,
documented deviations keep the recursions convergent at reproduction
scale: Katz and the other spectral programs run on a row-normalised
adjacency with an attenuation constant below 1 (the paper's
``k1 = 0.1*k`` on a raw multi-hundred-degree adjacency diverges on dense
graphs), and Paths-in-DAG / Cost express counting as summation, which is
exactly the paper's runtime semantics for ``count``
(``return sum(r, count[d])``, section 2.3).

Beyond Table 1, four program families exercise one registered semiring
each: ``why_reach`` (boolean -- why-provenance reachability),
``path_count`` (counting -- multiplicity-weighted walk counting),
``kpaths`` (k-tropical -- top-k shortest path lengths) and
``reach_prob`` (Viterbi -- maximum path success probability).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.datalog import ProgramAnalysis, analyze, parse_program
from repro.engine.plan import CompiledPlan, compile_plan
from repro.engine.relation import Database
from repro.graphs.graph import Graph
from repro.programs import builders


@dataclass(frozen=True)
class ProgramSpec:
    """One Table-1 program: source, expected verdict, EDB builder."""

    name: str
    title: str
    source: str
    #: aggregator named in Table 1 (display; the engine aggregate may be
    #: ``sum`` where the paper's runtime semantics for ``count`` applies)
    aggregator: str
    #: expected "MRA sat." verdict from Table 1
    expected_mra: bool
    build_database: Callable[[Graph], Database]
    #: True when the program is one of the six evaluated in Figures 9-11
    benchmarked: bool = False
    #: "vertex" or "pair" key domain (pair programs run on small graphs)
    key_domain: str = "vertex"
    notes: str = ""

    def parse(self):
        return parse_program(self.source, name=self.name)

    def analysis(self) -> ProgramAnalysis:
        return _analysis_for_source(self.name, self.source)

    def plan(self, graph: Graph) -> CompiledPlan:
        return compile_plan(self.analysis(), self.build_database(graph))


_SSSP = """
% Program 1 (paper): single source shortest path from vertex 0.
sssp(X, d) :- X = 0, d = 0.
sssp(Y, min[dy]) :- sssp(X, dx), edge(X, Y, dxy), dy = dx + dxy.
"""

_CC = """
% Program 3 (paper): connected components by label propagation.
% The EDB is symmetrised, so components are the undirected ones.
cc(X, X) :- edge(X, _).
cc(Y, min[v]) :- cc(X, v), edge(X, Y).
"""

_PAGERANK = """
% Program 2 (paper): PageRank, declarative + imperative form.
assume d > 0.
degree(X, count[Y]) :- edge(X, Y).
rank(0, X, r) :- node(X), r = 0.
rank(i+1, Y, sum[ry]) :- node(Y), ry = 0.15;
    :- rank(i, X, rx), edge(X, Y), degree(X, d),
       ry = 0.85 * rx / d, {sum[delta] < 0.001}.
"""

_ADSORPTION = """
% Program 4 (paper): adsorption label propagation (Markov process form).
assume w >= 0.
assume p >= 0.
lab(0, x, l) :- node(x), l = 0.
lab(j+1, y, sum[a1]) :- inj(y, i), pi(y, p2), a1 = i * p2;
    :- lab(j, x, a), a(x, y, w), pc(x, p),
       a1 = 0.7 * a * w * p, {sum[da] < 0.001}.
"""

_KATZ = """
% Program 5 (paper): Katz metric from source 0.  Reproduction note: the
% adjacency is row-normalised and the attenuation is 0.5 so the series
% converges at reproduction scale (the paper's 0.1 on a raw adjacency
% assumes spectral radius < 10).
assume w >= 0.
katz(i+1, y, sum[k1]) :- src(y, j), k1 = j;
    :- katz(i, x, k), a(x, y, w), k1 = 0.5 * k * w, {sum[dk] < 0.001}.
"""

_BP = """
% Program 6 (paper): belief propagation on a weighted network with
% coupling scores h over classes.
assume w >= 0.
assume h >= 0.
bel(0, v, c, b) :- beliefs0(v, c, b).
bel(j+1, t, c2, sum[b1]) :- bel(j, s, c1, b), enet(s, t, w), h(c1, c2, hc),
    b1 = 0.8 * w * b * hc, {sum[db] < 0.0001}.
"""

_DAG_PATHS = """
% Computing paths in a DAG [DeALS]: number of distinct source-0 paths
% reaching each vertex.  Counting is summation of path counts -- the
% paper's runtime semantics for count is sum(r, count[d]).
paths(X, c) :- X = 0, c = 1.
paths(Y, sum[c1]) :- paths(X, c), edge(X, Y), c1 = c.
"""

_COST = """
% Cost [DeALS]: total probability-weighted cost over all source-0 paths
% of a DAG with edge success probabilities.
assume p >= 0.
cost(X, c) :- X = 0, c = 1.
cost(Y, sum[c1]) :- cost(X, c), edge(X, Y, p), c1 = c * p.
"""

_VITERBI = """
% Viterbi [DeALS]: maximum-probability path from vertex 0 over a trellis
% with transition probabilities.
assume p >= 0.
vit(X, v) :- X = 0, v = 1.
vit(Y, max[v1]) :- vit(X, v), edge(X, Y, p), v1 = v * p.
"""

_SIMRANK = """
% SimRank [Jeh-Widom], linearised series form over vertex pairs:
% s(a,b) accumulates 0.8 * wa * wb * s(x,y) over in-neighbour pairs.
assume wa >= 0.
assume wb >= 0.
sim(X, X2, s) :- node(X), X2 = X, s = 1.
sim(A, B, sum[s1]) :- sim(X, Y, s), pred(X, A, wa), pred(Y, B, wb),
    s1 = 0.8 * s * wa * wb, {sum[ds] < 0.001}.
"""

_LCA = """
% Lowest common ancestor [Schieber-Vishkin]: minimum hop distance from
% each query vertex to each of its ancestors; the LCA of the query pair
% is the common ancestor minimising the distance sum (computed outside
% the recursion).
anc(S, S2, d) :- query(S), S2 = S, d = 0.
anc(S, Z, min[dz]) :- anc(S, Y, dy), parent(Y, Z), dz = dy + 1.
"""

_APSP = """
% All pairs shortest paths [DeALS] over vertex-pair keys.
apsp(S, S2, d) :- node(S), S2 = S, d = 0.
apsp(S, Y, min[dy]) :- apsp(S, X, dx), edge(X, Y, dxy), dy = dx + dxy.
"""

_COMMNET = """
% CommNet [Sukhbaatar et al.]: communication step of a multi-agent net;
% the tanh non-linearity breaks Property 2 (Table 1: MRA sat. = no).
comm(0, v, g) :- feat(v, g).
comm(j+1, Y, sum[g1]) :- comm(j, X, g), a(X, Y, w), para(p),
    g1 = tanh(g * p) * w, {sum[dg] < 0.001}.
"""

_GCN = """
% Program 7 (paper): GCN forward pass; relu breaks Property 2
% (Table 1: MRA sat. = no), e.g. sum(relu(-1+2), relu(1-2)) = 1 but
% sum(relu(-1), relu(2), relu(1), relu(-2)) = 3.
gcn(0, v, g) :- feat(v, g).
gcn(j+1, Y, sum[g1]) :- gcn(j, X, g), a(X, Y, w), para(p),
    g1 = relu(g * p) * w, {sum[dg] < 0.001}.
"""


_WHY_REACH = """
% Why-provenance reachability over the boolean semiring: a vertex is
% derivable iff some source-0 path witnesses it (⊕ = or, ⊗ = and).
reach(X, r) :- X = 0, r = 1.
reach(Y, or[ry]) :- reach(X, rx), edge(X, Y), ry = rx.
"""

_PATH_COUNT = """
% Path counting over the counting semiring: walks from source 0 in a
% DAG with integer edge multiplicities; each edge multiplies the walk
% count by its multiplicity (⊕ = +, ⊗ = ×).
assume m >= 0.
pc(X, c) :- X = 0, c = 1.
pc(Y, sum[c1]) :- pc(X, c), edge(X, Y, m), c1 = c * m.
"""

_KPATHS = """
% Top-k shortest paths over the k-tropical semiring: the k smallest
% distinct source-0 path lengths per vertex (k = 3); ⊕ is the sorted
% distinct-truncating merge, ⊗ shifts every component by the edge
% weight.
kp(X, d) :- X = 0, d = ktup(0).
kp(Y, topk[dy]) :- kp(X, dx), edge(X, Y, w), dy = dx + w.
"""

_REACH_PROB = """
% Probabilistic reachability over the Viterbi semiring: the maximum
% success probability over source-0 paths with independent edge
% probabilities (⊕ = max, ⊗ = ×).
assume p >= 0.
rp(X, v) :- X = 0, v = 1.
rp(Y, best[v1]) :- rp(X, v), edge(X, Y, p), v1 = v * p.
"""


PROGRAMS: dict[str, ProgramSpec] = {
    spec.name: spec
    for spec in [
        ProgramSpec(
            "sssp", "SSSP", _SSSP, "min", True,
            builders.weighted_graph_db, benchmarked=True,
        ),
        ProgramSpec(
            "cc", "CC", _CC, "min", True,
            builders.symmetrized_db, benchmarked=True,
        ),
        ProgramSpec(
            "pagerank", "PageRank", _PAGERANK, "sum", True,
            builders.plain_graph_db, benchmarked=True,
        ),
        ProgramSpec(
            "adsorption", "Adsorption", _ADSORPTION, "sum", True,
            builders.adsorption_db, benchmarked=True,
        ),
        ProgramSpec(
            "katz", "Katz metric", _KATZ, "sum", True,
            builders.katz_db, benchmarked=True,
            notes="row-normalised adjacency, attenuation 0.5 (see module doc)",
        ),
        ProgramSpec(
            "bp", "Belief Propagation", _BP, "sum", True,
            builders.bp_db, benchmarked=True, key_domain="pair",
        ),
        ProgramSpec(
            "dag_paths", "Computing Paths in DAG", _DAG_PATHS, "count", True,
            builders.dag_db,
            notes="count expressed as summation (paper section 2.3 semantics)",
        ),
        ProgramSpec(
            "cost", "Cost", _COST, "sum", True, builders.probability_dag_db,
        ),
        ProgramSpec(
            "viterbi", "Viterbi Algorithm", _VITERBI, "max", True,
            builders.probability_dag_db,
        ),
        ProgramSpec(
            "simrank", "SimRank", _SIMRANK, "sum", True,
            builders.simrank_db, key_domain="pair",
        ),
        ProgramSpec(
            "lca", "Lowest Common Ancestor", _LCA, "min", True,
            builders.tree_db, key_domain="pair",
        ),
        ProgramSpec(
            "apsp", "APSP", _APSP, "min", True,
            builders.weighted_graph_db, key_domain="pair",
        ),
        ProgramSpec(
            "commnet", "CommNet", _COMMNET, "sum", False,
            builders.embedding_db,
        ),
        ProgramSpec(
            "gcn", "GCN-Forward", _GCN, "sum", False,
            builders.embedding_db,
        ),
        ProgramSpec(
            "why_reach", "Why-Provenance Reachability", _WHY_REACH, "or",
            True, builders.plain_graph_db,
            notes="boolean semiring; witness = some derivation path exists",
        ),
        ProgramSpec(
            "path_count", "Weighted Path Counting", _PATH_COUNT, "sum",
            True, builders.multiplicity_dag_db,
            notes="counting semiring over edge multiplicities (DAG input)",
        ),
        ProgramSpec(
            "kpaths", "Top-K Shortest Paths", _KPATHS, "topk",
            True, builders.weighted_graph_db,
            notes="k-tropical semiring, k = 3 distinct path lengths",
        ),
        ProgramSpec(
            "reach_prob", "Probabilistic Reachability", _REACH_PROB, "best",
            True, builders.probability_graph_db,
            notes="Viterbi semiring; exact on cyclic inputs (p <= 1)",
        ),
    ]
}


@lru_cache(maxsize=None)
def _analysis_for_source(name: str, source: str) -> ProgramAnalysis:
    return analyze(parse_program(source, name=name))


def get_program(name: str) -> ProgramSpec:
    """Look up a Table-1 program by name (raises ``KeyError`` if unknown)."""
    try:
        return PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; expected one of {sorted(PROGRAMS)}"
        ) from None


def program_names() -> list[str]:
    """All program names, Table-1 order."""
    return list(PROGRAMS)


def benchmark_programs() -> list[str]:
    """The six programs evaluated in the paper's Figures 9-11."""
    return [name for name, spec in PROGRAMS.items() if spec.benchmarked]
