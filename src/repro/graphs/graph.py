"""The Graph container shared by generators, datasets and engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.runtime.compat import np

from repro.engine.relation import Database


@dataclass
class Graph:
    """A directed graph over vertices ``0..num_vertices-1``.

    ``weights`` is optional; weighted consumers (SSSP, APSP) ask for
    :meth:`as_database` with ``weighted=True``, which generates
    deterministic integer weights when none were provided.
    """

    num_vertices: int
    edges: list[tuple[int, int]]
    weights: Optional[list] = None
    name: str = "graph"
    seed: int = 0

    def __post_init__(self):
        if self.weights is not None and len(self.weights) != len(self.edges):
            raise ValueError("weights must align with edges")

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def vertices(self) -> range:
        return range(self.num_vertices)

    def weighted_edges(self) -> Iterator[tuple[int, int, object]]:
        """Edges with weights, generating integer weights if absent."""
        weights = self.weights
        if weights is None:
            weights = self.generate_weights()
        for (src, dst), weight in zip(self.edges, weights):
            yield src, dst, weight

    def generate_weights(self, low: int = 1, high: int = 10) -> list[int]:
        """Deterministic integer weights in ``[low, high]`` from the seed."""
        rng = np.random.default_rng(self.seed + 0x5EED)
        return rng.integers(low, high + 1, size=len(self.edges)).tolist()

    def with_weights(self, low: int = 1, high: int = 10) -> "Graph":
        return Graph(
            self.num_vertices,
            list(self.edges),
            self.generate_weights(low, high),
            name=self.name,
            seed=self.seed,
        )

    def out_adjacency(self) -> list[list[int]]:
        adj: list[list[int]] = [[] for _ in range(self.num_vertices)]
        for src, dst in self.edges:
            adj[src].append(dst)
        return adj

    def in_adjacency(self) -> list[list[int]]:
        adj: list[list[int]] = [[] for _ in range(self.num_vertices)]
        for src, dst in self.edges:
            adj[dst].append(src)
        return adj

    def out_degrees(self) -> list[int]:
        degrees = [0] * self.num_vertices
        for src, _ in self.edges:
            degrees[src] += 1
        return degrees

    def reversed(self) -> "Graph":
        return Graph(
            self.num_vertices,
            [(dst, src) for src, dst in self.edges],
            self.weights,
            name=f"{self.name}-rev",
            seed=self.seed,
        )

    def as_database(self, weighted: bool = False) -> Database:
        """Materialise the graph as EDB relations ``edge`` and ``node``.

        ``edge`` has arity 3 (src, dst, weight) when weighted, else 2.
        """
        db = Database()
        if weighted:
            db.add_facts("edge", list(self.weighted_edges()), arity=3)
        else:
            db.add_facts("edge", self.edges, arity=2)
        db.add_facts("node", [(v,) for v in self.vertices()], arity=1)
        return db

    def __repr__(self):
        return (
            f"Graph({self.name}: {self.num_vertices} vertices, "
            f"{self.num_edges} edges)"
        )


def deduplicate_edges(
    edges: Sequence[tuple[int, int]], drop_self_loops: bool = True
) -> list[tuple[int, int]]:
    """Remove duplicate edges (and self loops) preserving determinism."""
    seen: set[tuple[int, int]] = set()
    out: list[tuple[int, int]] = []
    for src, dst in edges:
        if drop_self_loops and src == dst:
            continue
        if (src, dst) in seen:
            continue
        seen.add((src, dst))
        out.append((src, dst))
    return out
