"""Seeded synthetic graph generators.

Each generator is deterministic in its ``seed`` and chosen to reproduce
one structural regime of the paper's datasets:

* :func:`rmat` -- recursive-matrix power-law graphs (social networks:
  Flickr, LiveJournal, Orkut, Wiki-link);
* :func:`small_world` -- ring lattice plus long-range shortcuts (small
  diameter, like ClueWeb09, where the paper notes delta-stepping wins);
* :func:`locality_crawl` -- edges drawn mostly to nearby vertex ids
  (high diameter / high locality, like the Arabic-2005 crawl);
* :func:`random_dag`, :func:`grid_graph`, :func:`chain`, :func:`star` --
  structured graphs for the DAG-counting programs and for tests.
"""

from __future__ import annotations

from repro.runtime.compat import np

from repro.graphs.graph import Graph, deduplicate_edges


def _spanning_backbone(n: int, rng: np.random.Generator) -> list[tuple[int, int]]:
    """A random tree rooted at vertex 0 so every vertex is reachable.

    Keeps single-source experiments (SSSP, Katz) meaningful on sparse
    random graphs; its n-1 edges are a small fraction of the total.
    """
    edges = []
    for v in range(1, n):
        parent = int(rng.integers(0, v))
        edges.append((parent, v))
    return edges


def rmat(
    n: int,
    m: int,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    name: str = "rmat",
    connected: bool = True,
) -> Graph:
    """R-MAT power-law digraph with ``~n`` vertices and ``~m`` edges."""
    rng = np.random.default_rng(seed)
    bits = max(1, int(np.ceil(np.log2(max(n, 2)))))
    d = 1.0 - a - b - c
    probs = np.array([a, b, c, d])
    # oversample to compensate for duplicates, then deduplicate
    samples = int(m * 1.4) + 16
    quadrant = rng.choice(4, size=(samples, bits), p=probs)
    src_bits = (quadrant >= 2).astype(np.int64)
    dst_bits = (quadrant % 2).astype(np.int64)
    powers = 1 << np.arange(bits - 1, -1, -1, dtype=np.int64)
    srcs = (src_bits * powers).sum(axis=1) % n
    dsts = (dst_bits * powers).sum(axis=1) % n
    edges = deduplicate_edges(list(zip(srcs.tolist(), dsts.tolist())))[:m]
    if connected:
        edges = deduplicate_edges(_spanning_backbone(n, rng) + edges)
    return Graph(n, edges, name=name, seed=seed)


def erdos_renyi(n: int, m: int, seed: int = 0, name: str = "er") -> Graph:
    """Uniform random digraph with ``n`` vertices and ``~m`` edges."""
    rng = np.random.default_rng(seed)
    samples = int(m * 1.2) + 16
    srcs = rng.integers(0, n, size=samples)
    dsts = rng.integers(0, n, size=samples)
    edges = deduplicate_edges(list(zip(srcs.tolist(), dsts.tolist())))[:m]
    edges = deduplicate_edges(_spanning_backbone(n, rng) + edges)
    return Graph(n, edges, name=name, seed=seed)


def small_world(
    n: int,
    m: int,
    seed: int = 0,
    rewire: float = 0.3,
    name: str = "small-world",
) -> Graph:
    """Watts-Strogatz-style digraph: ring lattice + random shortcuts.

    The shortcuts give a small diameter regardless of size, matching the
    ClueWeb09 regime where few iterations reach the whole graph.
    """
    rng = np.random.default_rng(seed)
    k = max(1, m // (2 * n))  # lattice half-degree
    edges: list[tuple[int, int]] = []
    for v in range(n):
        for offset in range(1, k + 1):
            edges.append((v, (v + offset) % n))
            edges.append((v, (v - offset) % n))
    # rewire a fraction of lattice edges into long-range shortcuts
    edges = [
        (src, int(rng.integers(0, n))) if rng.random() < rewire else (src, dst)
        for src, dst in edges
    ]
    remaining = m - len(edges)
    if remaining > 0:
        srcs = rng.integers(0, n, size=remaining)
        dsts = rng.integers(0, n, size=remaining)
        edges.extend(zip(srcs.tolist(), dsts.tolist()))
    edges = deduplicate_edges(_spanning_backbone(n, rng) + edges)[: m + n]
    return Graph(n, edges, name=name, seed=seed)


def locality_crawl(
    n: int,
    m: int,
    seed: int = 0,
    spread: float = 0.01,
    long_range: float = 0.02,
    name: str = "crawl",
) -> Graph:
    """A high-locality crawl-like digraph with a large diameter.

    Most edges connect vertices whose ids are within ``spread * n`` of
    each other (web crawls order pages by site), so information travels
    slowly -- the Arabic-2005 regime where synchronous engines pay many
    supersteps.
    """
    rng = np.random.default_rng(seed)
    window = max(2, int(spread * n))
    samples = int(m * 1.3) + 16
    srcs = rng.integers(0, n, size=samples)
    offsets = rng.integers(-window, window + 1, size=samples)
    dsts = (srcs + offsets) % n
    longs = rng.random(samples) < long_range
    dsts = np.where(longs, rng.integers(0, n, size=samples), dsts)
    edges = deduplicate_edges(list(zip(srcs.tolist(), dsts.tolist())))[:m]
    # chain backbone (not a random tree) to preserve the large diameter
    backbone = [(v, v + 1) for v in range(n - 1)]
    edges = deduplicate_edges(backbone + edges)
    return Graph(n, edges, name=name, seed=seed)


def grid_graph(rows: int, cols: int, name: str = "grid") -> Graph:
    """A directed 2D grid (edges right and down): deterministic, high diameter."""
    n = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(n, edges, name=name)


def random_dag(n: int, m: int, seed: int = 0, name: str = "dag") -> Graph:
    """A random DAG (edges go from lower to higher vertex id)."""
    rng = np.random.default_rng(seed)
    samples = int(m * 1.5) + 16
    srcs = rng.integers(0, n - 1, size=samples)
    spans = rng.integers(1, max(2, n // 4), size=samples)
    dsts = np.minimum(srcs + spans, n - 1)
    edges = deduplicate_edges(list(zip(srcs.tolist(), dsts.tolist())))[:m]
    backbone = [(v, v + 1) for v in range(n - 1)]
    edges = deduplicate_edges(backbone + edges)
    return Graph(n, edges, name=name, seed=seed)


def chain(n: int, name: str = "chain") -> Graph:
    """A directed path 0 -> 1 -> ... -> n-1."""
    return Graph(n, [(v, v + 1) for v in range(n - 1)], name=name)


def star(n: int, name: str = "star") -> Graph:
    """A star with centre 0 and spokes 0 -> v."""
    return Graph(n, [(0, v) for v in range(1, n)], name=name)
