"""Edge-list IO.

The paper's PowerLog loads graphs from HDFS; here graphs round-trip
through plain tab-separated edge-list files (``src<TAB>dst[<TAB>weight]``
with a ``# vertices <n>`` header) so experiments can be exported and
re-imported deterministically.
"""

from __future__ import annotations

import os
from typing import Union

from repro.graphs.graph import Graph


def write_edge_list(graph: Graph, path: Union[str, os.PathLike]) -> None:
    """Write a graph as a TSV edge list (weights included if present)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        handle.write(f"# name {graph.name}\n")
        if graph.weights is None:
            for src, dst in graph.edges:
                handle.write(f"{src}\t{dst}\n")
        else:
            for (src, dst), weight in zip(graph.edges, graph.weights):
                handle.write(f"{src}\t{dst}\t{weight}\n")


def read_edge_list(path: Union[str, os.PathLike]) -> Graph:
    """Read a graph written by :func:`write_edge_list`.

    Also accepts plain headerless edge lists, inferring the vertex count
    as ``max id + 1``.
    """
    edges: list[tuple[int, int]] = []
    weights: list = []
    num_vertices = None
    name = "graph"
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    num_vertices = int(parts[1])
                elif len(parts) == 2 and parts[0] == "name":
                    name = parts[1]
                continue
            fields = line.split("\t")
            if len(fields) == 1:
                fields = line.split()
            src, dst = int(fields[0]), int(fields[1])
            edges.append((src, dst))
            if len(fields) >= 3:
                raw = fields[2]
                weights.append(float(raw) if "." in raw else int(raw))
    if weights and len(weights) != len(edges):
        raise ValueError(f"{path}: some edges have weights and some do not")
    if num_vertices is None:
        num_vertices = 1 + max(
            (max(src, dst) for src, dst in edges), default=-1
        )
    return Graph(num_vertices, edges, weights or None, name=name)
