"""The six Table-2 dataset stand-ins.

Each spec mirrors one of the paper's datasets (Table 2), scaled down by
roughly three orders of magnitude for a pure-Python engine while
preserving the structural regime the experiments exercise:

=============  ============================  =========================
paper dataset  paper size (V / E)            stand-in regime
=============  ============================  =========================
Flickr         2.3M / 33.1M                  power-law social
LiveJournal    4.8M / 68.5M                  power-law social, larger
Orkut          3.1M / 117.2M                 power-law, much denser
ClueWeb09      20.0M / 243.1M                small diameter (web)
Wiki-link      12.2M / 378.1M                power-law, dense, skewed
Arabic-2005    22.7M / 640.0M                high locality, large diameter
=============  ============================  =========================

Graphs are cached per (name, scale) so benchmark grids reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.graphs.generators import locality_crawl, rmat, small_world
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """A synthetic stand-in for one paper dataset."""

    name: str
    paper_name: str
    paper_vertices: int
    paper_edges: int
    base_vertices: int
    base_edges: int
    builder: Callable[[int, int, int, str], Graph]
    seed: int
    regime: str

    def build(self, scale: float = 1.0) -> Graph:
        n = max(32, int(self.base_vertices * scale))
        m = max(64, int(self.base_edges * scale))
        return self.builder(n, m, self.seed, self.name)


def _social(n: int, m: int, seed: int, name: str) -> Graph:
    return rmat(n, m, seed=seed, name=name)


def _skewed(n: int, m: int, seed: int, name: str) -> Graph:
    return rmat(n, m, seed=seed, a=0.75, b=0.1, c=0.1, name=name)


def _web(n: int, m: int, seed: int, name: str) -> Graph:
    return small_world(n, m, seed=seed, rewire=0.4, name=name)


def _crawl(n: int, m: int, seed: int, name: str) -> Graph:
    return locality_crawl(n, m, seed=seed, spread=0.006, long_range=0.0004, name=name)


DATASETS: dict[str, DatasetSpec] = {
    "flickr": DatasetSpec(
        "flickr", "Flickr", 2_302_925, 33_140_017, 600, 8_600, _social, 101,
        "power-law social",
    ),
    "livej": DatasetSpec(
        "livej", "LiveJournal", 4_847_571, 68_475_391, 1_200, 17_000, _social, 102,
        "power-law social",
    ),
    "orkut": DatasetSpec(
        "orkut", "Orkut", 3_072_441, 117_184_899, 800, 30_000, _social, 103,
        "power-law, dense",
    ),
    "web": DatasetSpec(
        "web", "ClueWeb09", 20_000_000, 243_063_334, 1_300, 16_000, _web, 104,
        "small diameter",
    ),
    "wiki": DatasetSpec(
        "wiki", "Wiki-link", 12_150_976, 378_142_420, 1_500, 78_000, _skewed, 105,
        "power-law, very dense, skewed",
    ),
    "arabic": DatasetSpec(
        "arabic", "Arabic-2005", 22_744_080, 639_999_458, 1_400, 39_000, _crawl, 106,
        "high locality, large diameter",
    ),
}


def dataset_names() -> list[str]:
    """Dataset keys in the paper's Table-2 order."""
    return ["flickr", "livej", "orkut", "web", "wiki", "arabic"]


@lru_cache(maxsize=32)
def load_dataset(name: str, scale: float = 1.0) -> Graph:
    """Build (or fetch from cache) a dataset stand-in at the given scale."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        ) from None
    return spec.build(scale)
