"""Graph statistics: degree distribution, reachability, diameter estimate.

Used by the dataset benchmarks (Table 2) to demonstrate that each
stand-in reproduces its paper dataset's structural regime, and by tests
as generator sanity checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.runtime.compat import np

from repro.graphs.graph import Graph


@dataclass(frozen=True)
class GraphStats:
    name: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    max_out_degree: int
    degree_skew: float  # max / avg, a proxy for power-law skew
    reachable_from_0: int
    eccentricity_from_0: int  # BFS depth from vertex 0 (diameter proxy)

    def row(self) -> dict:
        return {
            "dataset": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_deg": round(self.avg_degree, 1),
            "max_deg": self.max_out_degree,
            "skew": round(self.degree_skew, 1),
            "reach(0)": self.reachable_from_0,
            "ecc(0)": self.eccentricity_from_0,
        }


def bfs_depths(graph: Graph, source: int = 0) -> dict[int, int]:
    """BFS hop distance from ``source`` to every reachable vertex."""
    adjacency = graph.out_adjacency()
    depths = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        depth = depths[vertex]
        for neighbour in adjacency[vertex]:
            if neighbour not in depths:
                depths[neighbour] = depth + 1
                queue.append(neighbour)
    return depths


def compute_stats(graph: Graph) -> GraphStats:
    degrees = np.array(graph.out_degrees(), dtype=np.float64)
    avg = float(degrees.mean()) if len(degrees) else 0.0
    max_deg = int(degrees.max()) if len(degrees) else 0
    depths = bfs_depths(graph, 0)
    return GraphStats(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=avg,
        max_out_degree=max_deg,
        degree_skew=(max_deg / avg) if avg else 0.0,
        reachable_from_0=len(depths),
        eccentricity_from_0=max(depths.values()) if depths else 0,
    )
