"""Graph substrate: generators, datasets, IO and statistics.

The paper evaluates on six real-world graphs (Table 2: Flickr,
LiveJournal, Orkut, ClueWeb09, Wiki-link, Arabic-2005).  Those datasets
are unavailable offline and far too large for a pure-Python engine, so
:mod:`repro.graphs.datasets` provides seeded synthetic stand-ins scaled
down while preserving the *relative* properties the experiments depend
on: density (work per iteration), degree skew (worker imbalance, hence
barrier cost) and diameter (iteration count, hence async benefit).
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    rmat,
    erdos_renyi,
    small_world,
    locality_crawl,
    grid_graph,
    random_dag,
    chain,
    star,
)
from repro.graphs.datasets import DATASETS, DatasetSpec, load_dataset, dataset_names
from repro.graphs.io import write_edge_list, read_edge_list
from repro.graphs.stats import GraphStats, compute_stats

__all__ = [
    "Graph",
    "rmat",
    "erdos_renyi",
    "small_world",
    "locality_crawl",
    "grid_graph",
    "random_dag",
    "chain",
    "star",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_names",
    "write_edge_list",
    "read_edge_list",
    "GraphStats",
    "compute_stats",
]
