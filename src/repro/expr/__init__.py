"""Symbolic expression algebra for recursive aggregate programs.

This package implements the small expression language in which the
non-aggregate operation ``F'`` of a recursive aggregate program is written
(paper section 2.1): rational arithmetic over variables and parameters plus
a handful of non-linear primitives (``relu``, ``tanh``, ``abs``, ``exp``)
needed for the two programs that *fail* the MRA condition check
(GCN-Forward and CommNet, Table 1).

The algebra offers three capabilities, each in its own module:

* :mod:`repro.expr.terms` -- immutable expression trees with structural
  equality, substitution and pretty printing;
* :mod:`repro.expr.evaluate` -- exact (``fractions.Fraction``) and float
  evaluation, and compilation of expressions into fast Python callables;
* :mod:`repro.expr.simplify` -- canonicalisation to rational normal form
  (a pair of multivariate polynomials) used by the condition checker for
  exact algebraic equality proofs;
* :mod:`repro.expr.analysis` -- linearity, sign and monotonicity analysis
  under declared variable domains.
"""

from repro.expr.terms import (
    Expr,
    Const,
    Var,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Call,
    KNOWN_FUNCTIONS,
    const,
    var,
)
from repro.expr.evaluate import evaluate, compile_fn, EvalError
from repro.expr.simplify import Polynomial, RationalForm, rational_form, exprs_equal
from repro.expr.analysis import (
    Interval,
    Sign,
    affine_in,
    interval_of,
    is_linear_homogeneous,
    is_monotone_nondecreasing,
)

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Neg",
    "Call",
    "KNOWN_FUNCTIONS",
    "const",
    "var",
    "evaluate",
    "compile_fn",
    "EvalError",
    "Polynomial",
    "RationalForm",
    "rational_form",
    "exprs_equal",
    "Interval",
    "Sign",
    "affine_in",
    "interval_of",
    "is_linear_homogeneous",
    "is_monotone_nondecreasing",
]
