"""Expression evaluation and compilation.

Two evaluation paths are provided:

* :func:`evaluate` -- a direct tree-walking interpreter.  When every input
  is a :class:`~fractions.Fraction` and the expression uses only exact
  primitives, the result is an exact rational; this is what the condition
  checker's refuter uses so that counterexamples are not artefacts of
  floating-point rounding.
* :func:`compile_fn` -- compiles an expression into a plain Python function
  of named arguments.  The execution engines apply ``F'`` millions of
  times, so the per-call overhead matters; compiled functions avoid all
  dispatch by emitting a single ``lambda`` source string.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.expr.terms import (
    Add,
    Call,
    Const,
    Div,
    Expr,
    KNOWN_FUNCTIONS,
    Mul,
    Neg,
    Sub,
    Var,
)


class EvalError(Exception):
    """Raised on evaluation failures (unbound variable, division by zero)."""


def evaluate(expr: Expr, env: Mapping[str, object]):
    """Evaluate ``expr`` with variable bindings from ``env``.

    Values may be ints, floats or Fractions; arithmetic follows Python
    numeric coercion, so all-Fraction inputs produce Fraction outputs for
    exact primitives.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError as exc:
            raise EvalError(f"unbound variable {expr.name!r}") from exc
    if isinstance(expr, Add):
        return evaluate(expr.left, env) + evaluate(expr.right, env)
    if isinstance(expr, Sub):
        return evaluate(expr.left, env) - evaluate(expr.right, env)
    if isinstance(expr, Mul):
        return evaluate(expr.left, env) * evaluate(expr.right, env)
    if isinstance(expr, Div):
        denom = evaluate(expr.right, env)
        if denom == 0:
            raise EvalError(f"division by zero in {expr!r}")
        return evaluate(expr.left, env) / denom
    if isinstance(expr, Neg):
        return -evaluate(expr.operand, env)
    if isinstance(expr, Call):
        spec = KNOWN_FUNCTIONS[expr.func]
        args = [evaluate(a, env) for a in expr.args]
        return spec["impl"](*args)
    raise EvalError(f"cannot evaluate node {expr!r}")


def _emit(expr: Expr) -> str:
    """Render an expression as Python source over its variable names."""
    if isinstance(expr, Const):
        value = expr.value
        if value.denominator == 1:
            return repr(value.numerator)
        return repr(float(value))
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Add):
        return f"({_emit(expr.left)} + {_emit(expr.right)})"
    if isinstance(expr, Sub):
        return f"({_emit(expr.left)} - {_emit(expr.right)})"
    if isinstance(expr, Mul):
        return f"({_emit(expr.left)} * {_emit(expr.right)})"
    if isinstance(expr, Div):
        return f"({_emit(expr.left)} / {_emit(expr.right)})"
    if isinstance(expr, Neg):
        return f"(-{_emit(expr.operand)})"
    if isinstance(expr, Call):
        inner = ", ".join(_emit(a) for a in expr.args)
        return f"__fn_{expr.func}({inner})"
    raise EvalError(f"cannot compile node {expr!r}")


def compile_fn(expr: Expr, argnames: Sequence[str]) -> Callable:
    """Compile ``expr`` into ``f(*argnames)``.

    Every free variable of the expression must appear in ``argnames``.
    The result is an ordinary Python function suitable for hot loops.
    """
    missing = expr.free_vars() - set(argnames)
    if missing:
        raise EvalError(f"expression uses unbound arguments: {sorted(missing)}")
    source = f"lambda {', '.join(argnames)}: {_emit(expr)}"
    namespace = {
        f"__fn_{name}": spec["impl"] for name, spec in KNOWN_FUNCTIONS.items()
    }
    fn = eval(source, namespace)  # noqa: S307 -- source is generated, not user input
    fn.__name__ = "compiled_expr"
    fn.__doc__ = f"compiled from: {expr!r}"
    return fn
