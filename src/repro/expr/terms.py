"""Immutable expression trees.

Expressions are built from constants, variables, the four arithmetic
operators, unary negation and calls to a small set of known functions.
All nodes are frozen dataclasses: they hash, compare structurally and can
be used as dictionary keys (the polynomial canonicaliser relies on this).

Python operator overloading is provided so expressions compose naturally::

    >>> x, w = var("x"), var("w")
    >>> e = const(0.85) * x / w
    >>> sorted(e.free_vars())
    ['w', 'x']
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

Number = Union[int, float, Fraction]


def _ktup_lift(v):
    """``ktup(x)``: lift a scalar into the k-tropical semiring carrier."""
    from repro.aggregates.semiring import KTuple

    if isinstance(v, KTuple):
        return v
    return KTuple((float(v),))


#: Functions allowed in ``Call`` nodes, with float implementations and the
#: monotonicity flag used by :mod:`repro.expr.analysis`.  ``relu`` and
#: ``abs`` are exactly representable over rationals; ``tanh``/``exp``/
#: ``log`` force float evaluation.
KNOWN_FUNCTIONS: dict[str, dict] = {
    "relu": {"impl": lambda v: v if v > 0 else type(v)(0), "monotone": True, "exact": True},
    "abs": {"impl": abs, "monotone": False, "exact": True},
    "tanh": {"impl": math.tanh, "monotone": True, "exact": False},
    "exp": {"impl": math.exp, "monotone": True, "exact": False},
    "log": {"impl": math.log, "monotone": True, "exact": False},
    "sigmoid": {
        "impl": lambda v: 1.0 / (1.0 + math.exp(-v)),
        "monotone": True,
        "exact": False,
    },
    # lift a scalar length into the k-tropical carrier (top-k programs'
    # base rules, e.g. ``d = ktup(0)``); monotone in the natural order
    # of the k-tropical semiring and exact (the float is kept as-is).
    "ktup": {"impl": _ktup_lift, "monotone": True, "exact": True},
}


def _coerce(value: "Expr | Number") -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, Fraction)):
        return Const(_to_fraction(value))
    raise TypeError(f"cannot build an expression from {value!r}")


def _to_fraction(value: Number) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    # ``Fraction(float)`` is exact; literals like 0.85 become their binary
    # float value, which is fine because evaluation uses the same value.
    return Fraction(value).limit_denominator(10**9)


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    # -- construction sugar -------------------------------------------------
    def __add__(self, other):
        return Add(self, _coerce(other))

    def __radd__(self, other):
        return Add(_coerce(other), self)

    def __sub__(self, other):
        return Sub(self, _coerce(other))

    def __rsub__(self, other):
        return Sub(_coerce(other), self)

    def __mul__(self, other):
        return Mul(self, _coerce(other))

    def __rmul__(self, other):
        return Mul(_coerce(other), self)

    def __truediv__(self, other):
        return Div(self, _coerce(other))

    def __rtruediv__(self, other):
        return Div(_coerce(other), self)

    def __neg__(self):
        return Neg(self)

    # -- tree utilities ------------------------------------------------------
    def children(self) -> tuple["Expr", ...]:
        return ()

    def free_vars(self) -> set[str]:
        """Names of all variables appearing in the expression."""
        names: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                names.add(node.name)
            stack.extend(node.children())
        return names

    def substitute(self, bindings: Mapping[str, "Expr | Number"]) -> "Expr":
        """Return a copy with variables replaced by expressions/constants."""
        resolved = {name: _coerce(value) for name, value in bindings.items()}
        return self._substitute(resolved)

    def _substitute(self, bindings: Mapping[str, "Expr"]) -> "Expr":
        raise NotImplementedError

    def contains_call(self) -> bool:
        """True if any ``Call`` node (non-polynomial primitive) appears."""
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Call):
                return True
            stack.extend(node.children())
        return False


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """A rational constant."""

    value: Fraction

    def __post_init__(self):
        if not isinstance(self.value, Fraction):
            object.__setattr__(self, "value", _to_fraction(self.value))

    def _substitute(self, bindings):
        return self

    def __repr__(self):
        if self.value.denominator == 1:
            return str(self.value.numerator)
        return f"{float(self.value):g}"


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A named variable (recursion variable or parameter)."""

    name: str

    def _substitute(self, bindings):
        return bindings.get(self.name, self)

    def __repr__(self):
        return self.name


@dataclass(frozen=True, slots=True)
class Add(Expr):
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def _substitute(self, bindings):
        return Add(self.left._substitute(bindings), self.right._substitute(bindings))

    def __repr__(self):
        return f"({self.left!r} + {self.right!r})"


@dataclass(frozen=True, slots=True)
class Sub(Expr):
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def _substitute(self, bindings):
        return Sub(self.left._substitute(bindings), self.right._substitute(bindings))

    def __repr__(self):
        return f"({self.left!r} - {self.right!r})"


@dataclass(frozen=True, slots=True)
class Mul(Expr):
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def _substitute(self, bindings):
        return Mul(self.left._substitute(bindings), self.right._substitute(bindings))

    def __repr__(self):
        return f"({self.left!r} * {self.right!r})"


@dataclass(frozen=True, slots=True)
class Div(Expr):
    left: Expr
    right: Expr

    def children(self):
        return (self.left, self.right)

    def _substitute(self, bindings):
        return Div(self.left._substitute(bindings), self.right._substitute(bindings))

    def __repr__(self):
        return f"({self.left!r} / {self.right!r})"


@dataclass(frozen=True, slots=True)
class Neg(Expr):
    operand: Expr

    def children(self):
        return (self.operand,)

    def _substitute(self, bindings):
        return Neg(self.operand._substitute(bindings))

    def __repr__(self):
        return f"(-{self.operand!r})"


@dataclass(frozen=True, slots=True)
class Call(Expr):
    """Application of a known non-polynomial primitive, e.g. ``relu(x)``."""

    func: str
    args: tuple[Expr, ...]

    def __post_init__(self):
        if self.func not in KNOWN_FUNCTIONS:
            raise ValueError(f"unknown function {self.func!r}")
        object.__setattr__(self, "args", tuple(self.args))

    def children(self):
        return self.args

    def _substitute(self, bindings):
        return Call(self.func, tuple(a._substitute(bindings) for a in self.args))

    def __repr__(self):
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.func}({inner})"


def const(value: Number) -> Const:
    """Build a constant node from an int/float/Fraction."""
    return Const(_to_fraction(value))


def var(name: str) -> Var:
    """Build a variable node."""
    return Var(name)
