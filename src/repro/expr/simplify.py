"""Canonicalisation of expressions to rational normal form.

The condition checker needs to *prove* algebraic identities such as
Property 2 of Theorem 1 for the linear/affine fragment where all of the
paper's satisfiable programs live.  We do this by rewriting both sides of
an identity into a canonical rational form ``P / Q`` where ``P`` and ``Q``
are multivariate polynomials with exact :class:`~fractions.Fraction`
coefficients, then comparing ``P1*Q2 == P2*Q1``.

Non-polynomial primitives (``relu``, ``tanh``...) are treated as *opaque
atoms*: two ``relu(...)`` terms are the same atom only when their argument
canonicalises identically.  This keeps the prover sound (it never claims
an identity that does not hold); identities it cannot prove are handed to
the refuter, which searches for counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.expr.terms import (
    Add,
    Call,
    Const,
    Div,
    Expr,
    Mul,
    Neg,
    Sub,
    Var,
)

# A monomial maps atom -> positive integer power; stored as a sorted tuple
# of (atom_key, power) pairs so it can key a dict.  Atom keys are strings:
# either a variable name or the canonical rendering of an opaque call.
Monomial = tuple[tuple[str, int], ...]

_ONE: Monomial = ()


class NonRationalError(Exception):
    """Raised when an expression cannot be put in rational form.

    This happens only for division by a polynomial that mentions an opaque
    call in a way we refuse to invert; the checker then falls back to
    random refutation.
    """


@dataclass(frozen=True)
class Polynomial:
    """A multivariate polynomial with Fraction coefficients.

    ``coeffs`` maps monomials to non-zero coefficients; the zero polynomial
    has an empty mapping.
    """

    coeffs: tuple[tuple[Monomial, Fraction], ...]

    @staticmethod
    def from_dict(coeffs: Mapping[Monomial, Fraction]) -> "Polynomial":
        cleaned = {m: c for m, c in coeffs.items() if c != 0}
        return Polynomial(tuple(sorted(cleaned.items())))

    @staticmethod
    def constant(value: Fraction) -> "Polynomial":
        if value == 0:
            return Polynomial(())
        return Polynomial(((_ONE, value),))

    @staticmethod
    def atom(key: str) -> "Polynomial":
        return Polynomial(((((key, 1),), Fraction(1)),))

    def as_dict(self) -> dict[Monomial, Fraction]:
        return dict(self.coeffs)

    def is_zero(self) -> bool:
        return not self.coeffs

    def is_constant(self) -> bool:
        return all(m == _ONE for m, _ in self.coeffs)

    def constant_value(self) -> Fraction:
        if not self.is_constant():
            raise ValueError("polynomial is not constant")
        return self.coeffs[0][1] if self.coeffs else Fraction(0)

    def __add__(self, other: "Polynomial") -> "Polynomial":
        out = self.as_dict()
        for m, c in other.coeffs:
            out[m] = out.get(m, Fraction(0)) + c
        return Polynomial.from_dict(out)

    def __neg__(self) -> "Polynomial":
        return Polynomial(tuple((m, -c) for m, c in self.coeffs))

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        out: dict[Monomial, Fraction] = {}
        for m1, c1 in self.coeffs:
            for m2, c2 in other.coeffs:
                m = _merge_monomials(m1, m2)
                out[m] = out.get(m, Fraction(0)) + c1 * c2
        return Polynomial.from_dict(out)

    def degree_in(self, atom_key: str) -> int:
        """Highest power of ``atom_key`` across all monomials."""
        best = 0
        for m, _ in self.coeffs:
            for key, power in m:
                if key == atom_key:
                    best = max(best, power)
        return best

    def mentions(self, atom_key: str) -> bool:
        return self.degree_in(atom_key) > 0

    def coefficient_of(self, atom_key: str, power: int) -> "Polynomial":
        """The polynomial coefficient of ``atom_key ** power``.

        ``power == 0`` returns the part not mentioning the atom at all.
        """
        out: dict[Monomial, Fraction] = {}
        for m, c in self.coeffs:
            present = dict(m).get(atom_key, 0)
            if present != power:
                continue
            rest = tuple((k, p) for k, p in m if k != atom_key)
            out[rest] = out.get(rest, Fraction(0)) + c
        return Polynomial.from_dict(out)


def _merge_monomials(m1: Monomial, m2: Monomial) -> Monomial:
    powers = dict(m1)
    for key, power in m2:
        powers[key] = powers.get(key, 0) + power
    return tuple(sorted((k, p) for k, p in powers.items() if p))


@dataclass(frozen=True)
class RationalForm:
    """A ratio ``num / den`` of polynomials in canonical form."""

    num: Polynomial
    den: Polynomial

    def __add__(self, other: "RationalForm") -> "RationalForm":
        return RationalForm(
            self.num * other.den + other.num * self.den, self.den * other.den
        )

    def __neg__(self) -> "RationalForm":
        return RationalForm(-self.num, self.den)

    def __sub__(self, other: "RationalForm") -> "RationalForm":
        return self + (-other)

    def __mul__(self, other: "RationalForm") -> "RationalForm":
        return RationalForm(self.num * other.num, self.den * other.den)

    def __truediv__(self, other: "RationalForm") -> "RationalForm":
        if other.num.is_zero():
            raise NonRationalError("division by zero polynomial")
        return RationalForm(self.num * other.den, self.den * other.num)

    def equals(self, other: "RationalForm") -> bool:
        """Exact equality as rational functions (cross multiplication)."""
        return (self.num * other.den - other.num * self.den).is_zero()


def _atom_key_for_call(call: Call) -> str:
    arg_keys = []
    for arg in call.args:
        form = rational_form(arg)
        arg_keys.append(f"{form.num.coeffs!r}/{form.den.coeffs!r}")
    return f"{call.func}({'|'.join(arg_keys)})"


def rational_form(expr: Expr) -> RationalForm:
    """Rewrite ``expr`` into canonical rational form.

    Raises :class:`NonRationalError` when the expression divides by a
    non-constant opaque structure that cannot be safely inverted.
    """
    one = Polynomial.constant(Fraction(1))
    if isinstance(expr, Const):
        return RationalForm(Polynomial.constant(expr.value), one)
    if isinstance(expr, Var):
        return RationalForm(Polynomial.atom(expr.name), one)
    if isinstance(expr, Add):
        return rational_form(expr.left) + rational_form(expr.right)
    if isinstance(expr, Sub):
        return rational_form(expr.left) - rational_form(expr.right)
    if isinstance(expr, Mul):
        return rational_form(expr.left) * rational_form(expr.right)
    if isinstance(expr, Div):
        return rational_form(expr.left) / rational_form(expr.right)
    if isinstance(expr, Neg):
        return -rational_form(expr.operand)
    if isinstance(expr, Call):
        return RationalForm(Polynomial.atom(_atom_key_for_call(expr)), one)
    raise NonRationalError(f"unsupported node {expr!r}")


def exprs_equal(left: Expr, right: Expr) -> bool:
    """Prove that two expressions are identical as rational functions.

    A ``True`` result is a proof (up to opaque-atom identification); a
    ``False`` result merely means the prover could not establish equality.
    """
    try:
        return rational_form(left).equals(rational_form(right))
    except NonRationalError:
        return False
