"""Linearity, sign and monotonicity analysis of expressions.

These analyses power the *structural prover* of the condition checker:

* ``sum``/``count`` programs satisfy Property 2 of Theorem 1 exactly when
  ``F'`` is linear and homogeneous in the recursion variable
  (``f(x + y) = f(x) + f(y)``) -- decided by :func:`is_linear_homogeneous`;
* ``min``/``max`` programs satisfy Property 2 exactly when ``F'`` is
  monotone non-decreasing in the recursion variable
  (``f(min(x, y)) = min(f(x), f(y))``) -- decided by
  :func:`is_monotone_nondecreasing` under the program's declared parameter
  domains (e.g. ``assume d > 0`` in the paper's Figure 4).

All positive answers are proofs; a negative answer means "could not
prove", and the checker falls back to counterexample search.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.expr.simplify import (
    NonRationalError,
    Polynomial,
    RationalForm,
    rational_form,
)
from repro.expr.terms import Add, Call, Const, Div, Expr, Mul, Neg, Sub, Var


class Sign(enum.Enum):
    """Coarse sign classification derived from an interval."""

    POSITIVE = "positive"
    NONNEGATIVE = "nonnegative"
    NEGATIVE = "negative"
    NONPOSITIVE = "nonpositive"
    ZERO = "zero"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class Interval:
    """A real interval with optionally strict bounds.

    ``lo``/``hi`` may be ``-inf``/``inf``.  ``lo_strict`` records that the
    lower bound is excluded, which matters for division: ``d > 0`` makes
    ``1/d`` well defined even though ``lo == 0``.
    """

    lo: float = -math.inf
    hi: float = math.inf
    lo_strict: bool = False
    hi_strict: bool = False

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- classification ------------------------------------------------------
    def sign(self) -> Sign:
        if self.lo == self.hi == 0:
            return Sign.ZERO
        if self.lo > 0 or (self.lo == 0 and self.lo_strict):
            return Sign.POSITIVE
        if self.lo >= 0:
            return Sign.NONNEGATIVE
        if self.hi < 0 or (self.hi == 0 and self.hi_strict):
            return Sign.NEGATIVE
        if self.hi <= 0:
            return Sign.NONPOSITIVE
        return Sign.UNKNOWN

    def is_nonnegative(self) -> bool:
        return self.sign() in (Sign.POSITIVE, Sign.NONNEGATIVE, Sign.ZERO)

    def is_nonpositive(self) -> bool:
        return self.sign() in (Sign.NEGATIVE, Sign.NONPOSITIVE, Sign.ZERO)

    def excludes_zero(self) -> bool:
        return self.sign() in (Sign.POSITIVE, Sign.NEGATIVE)

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(
            self.lo + other.lo,
            self.hi + other.hi,
            self.lo_strict or other.lo_strict,
            self.hi_strict or other.hi_strict,
        )

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo, self.hi_strict, self.lo_strict)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def __mul__(self, other: "Interval") -> "Interval":
        candidates = [
            _mul_bound(self.lo, other.lo),
            _mul_bound(self.lo, other.hi),
            _mul_bound(self.hi, other.lo),
            _mul_bound(self.hi, other.hi),
        ]
        # Strictness is conservatively dropped on multiplication.
        return Interval(min(candidates), max(candidates))

    def __truediv__(self, other: "Interval") -> "Interval":
        if not other.excludes_zero():
            raise ZeroDivisionError("divisor interval may contain zero")
        inv_lo = 1.0 / other.hi if math.isfinite(other.hi) else 0.0
        inv_hi = 1.0 / other.lo if other.lo != 0 else math.inf
        if other.lo == 0:  # strictly positive divisor approaching zero
            inv_hi = math.inf
        inverse = Interval(min(inv_lo, inv_hi), max(inv_lo, inv_hi))
        return self * inverse

    @staticmethod
    def point(value: float) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def nonnegative() -> "Interval":
        return Interval(0.0, math.inf)

    @staticmethod
    def positive() -> "Interval":
        return Interval(0.0, math.inf, lo_strict=True)

    @staticmethod
    def unbounded() -> "Interval":
        return Interval()


def _mul_bound(a: float, b: float) -> float:
    # IEEE makes 0 * inf = nan; in interval arithmetic it is 0.
    if (a == 0 and math.isinf(b)) or (b == 0 and math.isinf(a)):
        return 0.0
    return a * b


_CALL_RANGES = {
    "relu": lambda arg: Interval(max(0.0, arg.lo), max(0.0, arg.hi)),
    "abs": lambda arg: _abs_interval(arg),
    "tanh": lambda arg: Interval(math.tanh(arg.lo), math.tanh(arg.hi)),
    "exp": lambda arg: Interval(
        math.exp(arg.lo) if math.isfinite(arg.lo) else 0.0,
        math.exp(arg.hi) if math.isfinite(arg.hi) else math.inf,
    ),
    "sigmoid": lambda arg: Interval(0.0, 1.0),
    "log": lambda arg: Interval.unbounded(),
}


def _abs_interval(arg: Interval) -> Interval:
    if arg.lo >= 0:
        return arg
    if arg.hi <= 0:
        return -arg
    return Interval(0.0, max(-arg.lo, arg.hi))


def interval_of(expr: Expr, domains: Mapping[str, Interval]) -> Interval:
    """Bound the value of ``expr`` given variable domains.

    Unknown variables default to the full real line.
    """
    if isinstance(expr, Const):
        return Interval.point(float(expr.value))
    if isinstance(expr, Var):
        return domains.get(expr.name, Interval.unbounded())
    if isinstance(expr, Add):
        return interval_of(expr.left, domains) + interval_of(expr.right, domains)
    if isinstance(expr, Sub):
        return interval_of(expr.left, domains) - interval_of(expr.right, domains)
    if isinstance(expr, Mul):
        return interval_of(expr.left, domains) * interval_of(expr.right, domains)
    if isinstance(expr, Div):
        return interval_of(expr.left, domains) / interval_of(expr.right, domains)
    if isinstance(expr, Neg):
        return -interval_of(expr.operand, domains)
    if isinstance(expr, Call):
        arg = interval_of(expr.args[0], domains)
        return _CALL_RANGES[expr.func](arg)
    raise TypeError(f"cannot bound node {expr!r}")


def affine_in(expr: Expr, name: str) -> Optional[tuple[RationalForm, RationalForm]]:
    """Decompose ``expr`` as ``a * name + b`` as rational functions.

    Returns ``(a, b)`` or ``None`` when the expression is not affine in
    ``name`` (higher degree, the variable in a denominator, or hidden
    inside an opaque call).
    """
    if _mentioned_inside_call(expr, name):
        return None
    try:
        form = rational_form(expr)
    except NonRationalError:
        return None
    if form.den.mentions(name):
        return None
    if form.num.degree_in(name) > 1:
        return None
    a = RationalForm(form.num.coefficient_of(name, 1), form.den)
    b = RationalForm(form.num.coefficient_of(name, 0), form.den)
    return a, b


def _mentioned_inside_call(expr: Expr, name: str) -> bool:
    if isinstance(expr, Call):
        return any(name in a.free_vars() for a in expr.args)
    return any(_mentioned_inside_call(c, name) for c in expr.children())


def is_linear_homogeneous(expr: Expr, name: str) -> bool:
    """True iff ``expr == a * name`` exactly (zero constant part).

    This is the additivity condition ``f(x + y) = f(x) + f(y)`` required
    by Property 2 for ``sum``-like aggregates.
    """
    decomposed = affine_in(expr, name)
    if decomposed is None:
        return False
    _, b = decomposed
    return b.num.is_zero()


def _interval_of_polynomial(
    poly: Polynomial, domains: Mapping[str, Interval]
) -> Optional[Interval]:
    total = Interval.point(0.0)
    for monomial, coeff in poly.coeffs:
        term = Interval.point(float(coeff))
        for atom_key, power in monomial:
            if atom_key not in domains and "(" in atom_key:
                return None  # opaque call atom with unknown range
            base = domains.get(atom_key, Interval.unbounded())
            for _ in range(power):
                term = term * base
        total = total + term
    return total


def interval_of_rational(
    form: RationalForm, domains: Mapping[str, Interval]
) -> Optional[Interval]:
    """Bound a rational form; ``None`` when opaque atoms block the bound."""
    num = _interval_of_polynomial(form.num, domains)
    den = _interval_of_polynomial(form.den, domains)
    if num is None or den is None:
        return None
    try:
        return num / den
    except ZeroDivisionError:
        return None


def is_monotone_nondecreasing(
    expr: Expr, name: str, domains: Mapping[str, Interval]
) -> bool:
    """Prove that ``expr`` is monotone non-decreasing in ``name``.

    The proof is structural: constants are flat, sums preserve direction,
    multiplication/division by sign-definite factors preserves or flips
    it, and monotone primitives (``relu``, ``tanh``, ``exp``) compose.
    A ``False`` answer means "not proved", not "not monotone".
    """
    return _monotone(expr, name, domains, +1)


def _monotone(
    expr: Expr, name: str, domains: Mapping[str, Interval], direction: int
) -> bool:
    if name not in expr.free_vars():
        return True
    if isinstance(expr, Var):
        return direction > 0
    if isinstance(expr, Add):
        return _monotone(expr.left, name, domains, direction) and _monotone(
            expr.right, name, domains, direction
        )
    if isinstance(expr, Sub):
        return _monotone(expr.left, name, domains, direction) and _monotone(
            expr.right, name, domains, -direction
        )
    if isinstance(expr, Neg):
        return _monotone(expr.operand, name, domains, -direction)
    if isinstance(expr, Mul):
        for factor, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if name in factor.free_vars():
                continue
            bound = interval_of(factor, domains)
            if bound.is_nonnegative():
                return _monotone(other, name, domains, direction)
            if bound.is_nonpositive():
                return _monotone(other, name, domains, -direction)
        return False
    if isinstance(expr, Div):
        if name not in expr.right.free_vars():
            bound = interval_of(expr.right, domains)
            if bound.sign() == Sign.POSITIVE:
                return _monotone(expr.left, name, domains, direction)
            if bound.sign() == Sign.NEGATIVE:
                return _monotone(expr.left, name, domains, -direction)
            return False
        if name not in expr.left.free_vars():
            numer = interval_of(expr.left, domains)
            denom = interval_of(expr.right, domains)
            if not denom.excludes_zero():
                return False
            # c / g(x) with c >= 0, g > 0: non-decreasing iff g non-increasing.
            if numer.is_nonnegative():
                return _monotone(expr.right, name, domains, -direction)
            if numer.is_nonpositive():
                return _monotone(expr.right, name, domains, direction)
        return False
    if isinstance(expr, Call):
        from repro.expr.terms import KNOWN_FUNCTIONS

        if not KNOWN_FUNCTIONS[expr.func]["monotone"]:
            return False
        return _monotone(expr.args[0], name, domains, direction)
    return False
