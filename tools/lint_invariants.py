#!/usr/bin/env python3
"""Self-lint: enforce the repo's determinism invariants by AST walk.

The engines are deterministic discrete-event simulations: every run of a
program with the same seed must produce the same result, trace and
metrics, or the fault-injection and cross-backend equivalence suites
become flaky.  Two classes of call break that:

* **wall clock** -- ``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()``, ``datetime.now()``/``utcnow()``/``today()``:
  simulated time must come from the event clock, never the host;
* **unseeded randomness** -- module-level ``random.random()`` etc.,
  ``random.Random()`` with no seed, ``numpy.random.default_rng()`` with
  no seed: all randomness must flow from an explicit seed.

Scope: ``src/repro/engine``, ``src/repro/runtime``,
``src/repro/distributed``, ``src/repro/serving`` and ``src/repro/delta``
(the deterministic core plus the simulated-clock serving loop and the
delta-repair subsystem, whose byte-identical SLO reports and repair
replays depend on the same invariants).  The CLI, bench harness and obs
layers may legitimately read the host clock.

Exit code 0 when clean, 1 with one ``file:line: message`` per violation
otherwise.  Pure stdlib; wired into ``make lint`` and CI.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SCOPE = (
    REPO_ROOT / "src" / "repro" / "engine",
    REPO_ROOT / "src" / "repro" / "runtime",
    REPO_ROOT / "src" / "repro" / "distributed",
    REPO_ROOT / "src" / "repro" / "serving",
    REPO_ROOT / "src" / "repro" / "delta",
)

#: (module, attribute) calls that read the host wall clock
WALL_CLOCK = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "time_ns"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: module-level random functions that use the hidden global state
GLOBAL_RANDOM = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "gauss",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "seed",
}

#: constructors that take their seed as the first positional argument
SEEDED_CONSTRUCTORS = {
    ("random", "Random"),
    ("np.random", "default_rng"),
    ("numpy.random", "default_rng"),
    ("random", "default_rng"),  # from numpy import random as random
}


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target ('np.random.default_rng')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _has_seed_argument(call: ast.Call) -> bool:
    if call.args:
        return True
    return any(kw.arg in ("seed", "x") for kw in call.keywords)


def check_file(path: Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    violations: list[str] = []
    try:
        relative = path.relative_to(REPO_ROOT)
    except ValueError:
        relative = path

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if not dotted:
            continue
        head, _, tail = dotted.rpartition(".")
        leaf_module = head.rpartition(".")[2] if head else ""

        if (leaf_module, tail) in WALL_CLOCK:
            violations.append(
                f"{relative}:{node.lineno}: wall-clock call {dotted}(): "
                "use the simulated event clock instead"
            )
            continue

        if head in ("random",) and tail in GLOBAL_RANDOM:
            violations.append(
                f"{relative}:{node.lineno}: global-state randomness "
                f"{dotted}(): use a seeded random.Random / Generator"
            )
            continue

        for module, constructor in SEEDED_CONSTRUCTORS:
            if dotted.endswith(f"{module}.{constructor}") or dotted == constructor and head == module:
                if not _has_seed_argument(node):
                    violations.append(
                        f"{relative}:{node.lineno}: unseeded {dotted}(): "
                        "pass an explicit seed"
                    )
                break
    return violations


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    roots = [Path(arg) for arg in args] or list(DEFAULT_SCOPE)
    violations: list[str] = []
    checked = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            violations.extend(check_file(path))
            checked += 1
    if violations:
        print(f"determinism invariants violated ({len(violations)}):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"determinism invariants hold ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
