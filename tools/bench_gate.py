"""CI perf-regression gate over the committed benchmark baselines.

Reruns the kernel and delta benchmarks fresh, then compares them
against the committed byte-stable baselines
(``benchmarks/results/BENCH_kernels.json`` and ``BENCH_delta.json``):

* every deterministic ``work.*`` counter (and iteration count) must
  match its committed value **exactly** -- work counters do not have
  noise, so any drift is a real behaviour change;
* the wall-clock speedup floors (numpy >= 3x over python on the
  dense-frontier programs, sparse >= 3x over numpy on sssp/cc) must
  hold within a tolerance band: a fresh ratio below
  ``floor * (1 - tolerance)`` fails the gate, so CI machines slower
  than the baseline host get slack but a genuine perf regression does
  not.

The full comparison is written as a JSON diff artifact (``--out``) for
upload; the process exits 1 on any regression.

Usage::

    python tools/bench_gate.py [--out benchmarks/results/bench-gate-diff.json]
                               [--tolerance 0.15] [--repeats 3]
                               [--skip-delta]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

KERNELS_BASELINE = os.path.join("benchmarks", "results", "BENCH_kernels.json")
DELTA_BASELINE = os.path.join("benchmarks", "results", "BENCH_delta.json")
DEFAULT_OUT = os.path.join("benchmarks", "results", "bench-gate-diff.json")

#: fresh speedup ratios may undershoot the floor by this fraction
#: before the gate fails (CI hosts are slower and noisier than the
#: baseline host; work counters get no band -- they are deterministic)
DEFAULT_TOLERANCE = 0.15


def _row_key(row: dict) -> tuple:
    return (row["program"], row["scale"], row["backend"])


def compare_kernel_rows(baseline: dict, fresh_rows: list) -> list:
    """Exact comparison of the deterministic columns, row by row.

    Rows are matched on (program, scale, backend); rows present only on
    one side (e.g. the jit backend on a leg without numba) are skipped,
    mismatched counters are reported.
    """
    fresh_by_key = {_row_key(row): row for row in fresh_rows}
    mismatches = []
    for row in baseline["rows"]:
        fresh = fresh_by_key.get(_row_key(row))
        if fresh is None:
            continue
        for column in ("iterations", "work", "fixpoint_matches"):
            if row[column] != fresh[column]:
                mismatches.append(
                    {
                        "program": row["program"],
                        "scale": row["scale"],
                        "backend": row["backend"],
                        "column": column,
                        "baseline": row[column],
                        "fresh": fresh[column],
                    }
                )
    return mismatches


def check_speedup_floors(
    baseline: dict, report, tolerance: float
) -> list:
    """Floor checks with the tolerance band; returns failure records."""
    failures = []
    checks = []
    floor = baseline["speedup_floor"]
    for program in baseline["dense_programs"]:
        checks.append(
            (program, "numpy/python", report.speedups.get(program), floor)
        )
    if report.check_scale >= baseline["sparse_floor_scale"]:
        sparse_floor = baseline["sparse_floor"]
        for program in baseline["sparse_programs"]:
            checks.append(
                (
                    program,
                    "sparse/numpy",
                    report.sparse_speedups.get(program),
                    sparse_floor,
                )
            )
    for program, ratio_name, measured, required in checks:
        bar = required * (1.0 - tolerance)
        if measured is None or measured < bar:
            failures.append(
                {
                    "program": program,
                    "ratio": ratio_name,
                    "measured": measured,
                    "floor": required,
                    "tolerance": tolerance,
                    "bar": round(bar, 4),
                }
            )
    return failures


def _stable_delta_rows(rows: list) -> list:
    return [
        {k: v for k, v in row.items() if not k.endswith("_seconds")}
        for row in rows
    ]


def compare_delta_rows(baseline: dict, fresh_rows: list) -> list:
    """The delta baseline is fully deterministic: exact row equality."""
    mismatches = []
    fresh_stable = _stable_delta_rows(fresh_rows)
    for row, fresh in zip(baseline["rows"], fresh_stable):
        if row != fresh:
            mismatches.append({"baseline": row, "fresh": fresh})
    if len(baseline["rows"]) != len(fresh_stable):
        mismatches.append(
            {
                "baseline": f"{len(baseline['rows'])} rows",
                "fresh": f"{len(fresh_stable)} rows",
            }
        )
    return mismatches


def run_gate(
    tolerance: float = DEFAULT_TOLERANCE,
    repeats: int = 3,
    skip_delta: bool = False,
) -> dict:
    """Rerun both benches and diff them against the committed baselines."""
    from repro.bench.delta import run_delta_bench
    from repro.bench.kernels import run_kernel_bench

    with open(KERNELS_BASELINE, encoding="utf-8") as handle:
        kernels_baseline = json.load(handle)

    scales = sorted({row["scale"] for row in kernels_baseline["rows"]})
    report = run_kernel_bench(
        scale=min(scales), speedup_scale=max(scales), repeats=repeats
    )
    diff = {
        "kernels": {
            "baseline": KERNELS_BASELINE,
            "scales": scales,
            "counter_mismatches": compare_kernel_rows(
                kernels_baseline, report.rows
            ),
            "speedup_failures": check_speedup_floors(
                kernels_baseline, report, tolerance
            ),
            "measured_speedups": {
                "numpy_over_python": report.speedups,
                "sparse_over_numpy": report.sparse_speedups,
                "crossover": report.crossover,
            },
        }
    }

    if not skip_delta:
        with open(DELTA_BASELINE, encoding="utf-8") as handle:
            delta_baseline = json.load(handle)
        delta_report = run_delta_bench(scale=0.25)
        diff["delta"] = {
            "baseline": DELTA_BASELINE,
            "row_mismatches": compare_delta_rows(
                delta_baseline, delta_report.rows
            ),
        }

    diff["ok"] = (
        not diff["kernels"]["counter_mismatches"]
        and not diff["kernels"]["speedup_failures"]
        and not diff.get("delta", {}).get("row_mismatches")
    )
    return diff


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--skip-delta", action="store_true")
    args = parser.parse_args(argv)

    diff = run_gate(
        tolerance=args.tolerance,
        repeats=args.repeats,
        skip_delta=args.skip_delta,
    )

    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(diff, handle, indent=2)
        handle.write("\n")

    kernels = diff["kernels"]
    print(f"bench-gate: diff written to {args.out}")
    print(
        f"  kernel counters: {len(kernels['counter_mismatches'])} mismatch(es)"
    )
    for miss in kernels["counter_mismatches"]:
        print(
            f"    {miss['program']}@{miss['scale']}/{miss['backend']} "
            f"{miss['column']}: {miss['baseline']} -> {miss['fresh']}"
        )
    print(
        f"  speedup floors:  {len(kernels['speedup_failures'])} failure(s)"
    )
    for fail in kernels["speedup_failures"]:
        print(
            f"    {fail['program']} {fail['ratio']}: {fail['measured']} "
            f"< {fail['bar']} (floor {fail['floor']} - {fail['tolerance']:.0%})"
        )
    if "delta" in diff:
        print(
            f"  delta rows:      "
            f"{len(diff['delta']['row_mismatches'])} mismatch(es)"
        )
    print(f"  verdict: {'PASS' if diff['ok'] else 'FAIL'}")
    return 0 if diff["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
