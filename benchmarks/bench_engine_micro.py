"""Single-node engine micro-benchmarks across all twelve programs.

Not a paper figure: a regression guard on the work-counter relationships
the simulated cost model depends on (naive re-joins vs semi-naive deltas
vs MRA MonoTable updates), plus wall-clock benchmarks of the two hot
paths (relational join evaluation and MonoTable MRA sweeps).
"""

from repro.bench import run_engine_micro
from repro.engine import MRAEvaluator, NaiveEvaluator
from repro.graphs import rmat
from repro.programs import PROGRAMS


def test_engine_micro_counters(benchmark, save_report):
    report = benchmark.pedantic(run_engine_micro, rounds=1, iterations=1)
    save_report(report)
    assert len(report.rows) == 12

    by_name = {row["program"]: row for row in report.rows}
    # semi-naive beats naive join work on every selective program
    for name in ("sssp", "cc", "viterbi", "lca", "apsp"):
        row = by_name[name]
        assert row["semi-naive bindings"] <= row["naive bindings"], name


def test_mra_wall_clock_sssp(benchmark):
    plan = PROGRAMS["sssp"].plan(rmat(200, 1200, seed=71))
    result = benchmark(lambda: MRAEvaluator(plan).run())
    assert result.stop_reason == "fixpoint"


def test_relational_naive_wall_clock_sssp(benchmark):
    graph = rmat(60, 300, seed=72)
    analysis = PROGRAMS["sssp"].analysis()
    db = PROGRAMS["sssp"].build_database(graph)
    result = benchmark(lambda: NaiveEvaluator(analysis, db).run())
    assert result.stop_reason == "fixpoint"
