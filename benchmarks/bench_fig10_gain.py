"""Figure 10: gain decomposition -- Naive+Sync vs MRA x execution modes,
plus the incremental graph-processing baselines (PowerGraph / Maiter /
Prom), on the wiki / web / arabic stand-ins.

The paper's qualitative findings encoded as assertions:

* MRA evaluation beats naive evaluation everywhere (section 6.4);
* neither pure sync nor pure async wins consistently;
* the unified sync-async engine achieves the best (or tied-best) MRA
  time on every cell;
* the graph engines land between naive evaluation and the best
  PowerLog configuration.
"""

import math


from repro.bench import run_figure10

MODES = ("mra+sync", "mra+async", "mra+sync-async")


def _run(benchmark, bench_scale, save_report, programs, name):
    report = benchmark.pedantic(
        run_figure10,
        kwargs={"programs": programs, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    report.name = name
    save_report(report)
    return report


def _check_rows(report, unified_slack: float = 1.25):
    for row in report.rows:
        assert not any(
            isinstance(v, float) and math.isnan(v) for v in row.values()
        ), f"wrong results in {row}"
        for mode in MODES:
            assert row["naive+sync"] > row[mode], (row["program"], row["dataset"], mode)
        # unified is best or within a near-tie band of the best mode
        best_mode = min(MODES, key=lambda mode: row[mode])
        assert row["mra+sync-async"] <= row[best_mode] * unified_slack, row
        # graph engines: better than naive, not better than the unified engine
        assert row["graph-engine"] < row["naive+sync"], row
        assert row["graph-engine"] >= row["mra+sync-async"] * 0.9, row


def test_figure10_abc_cc_sssp_pagerank(benchmark, bench_scale, save_report):
    report = _run(
        benchmark, bench_scale, save_report,
        ["cc", "sssp", "pagerank"], "figure10_abc",
    )
    _check_rows(report)


def test_figure10_def_adsorption_katz_bp(benchmark, bench_scale, save_report):
    report = _run(
        benchmark, bench_scale, save_report,
        ["adsorption", "katz", "bp"], "figure10_def",
    )
    _check_rows(report)
