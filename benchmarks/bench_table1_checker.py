"""Table 1: the automatic MRA condition check on all fourteen programs.

Also regenerates the paper's Figure 4 artefact: the Z3 SMT-LIB script
for each program's Property-2 check, saved under
``benchmarks/results/smtlib/``.
"""

import os

from repro.bench import run_table1
from repro.bench.report import RESULTS_DIR


def test_table1_condition_check(benchmark, save_report):
    report = benchmark.pedantic(
        run_table1, kwargs={"emit_scripts": True}, rounds=1, iterations=1
    )
    save_report(report)

    # the paper's split: twelve satisfiable, two not
    verdicts = [row["MRA sat."] for row in report.rows]
    assert verdicts.count("yes") == 12
    assert verdicts.count("no") == 2
    assert all(row["MRA sat."] == row["paper"] for row in report.rows)

    # every satisfiable program is routed to the unified engine (Figure 2)
    for row in report.rows:
        expected_engine = (
            "unified sync-async" if row["MRA sat."] == "yes" else "sync"
        )
        assert row["engine"] == expected_engine

    # persist the Figure-4 scripts
    directory = os.path.join(os.path.abspath(RESULTS_DIR), "smtlib")
    os.makedirs(directory, exist_ok=True)
    for name, script in report.scripts.items():
        with open(os.path.join(directory, f"{name}.smt2"), "w") as handle:
            handle.write(script)
    assert len(report.scripts) == 14
