"""Kernel backend comparison: the runtime layer's acceptance benchmark.

Runs every registered kernel backend over the dense- and sparse-frontier
programs at the smoke scale *and* at scale >= 0.5, asserts bit-identical
fixpoints while timing, and writes the committed baseline
``benchmarks/results/BENCH_kernels.json`` (rows carry backend + numpy
version).  The qualitative claim guarded here: the vectorized NumPy
kernel beats the pure-Python reference loop by >= 3x on dense-frontier
MRA at scale >= 0.5.
"""

from repro.bench.kernels import (
    DENSE_PROGRAMS,
    SPEEDUP_FLOOR,
    run_kernel_bench,
    write_kernel_baseline,
)
from repro.runtime import HAVE_NUMPY, available_backends


def test_kernel_backends(benchmark, bench_scale, save_report):
    report = benchmark.pedantic(
        lambda: run_kernel_bench(scale=min(bench_scale, 0.5)),
        rounds=1,
        iterations=1,
    )
    save_report(report)
    path = write_kernel_baseline(report)
    print(f"[baseline saved to {path}]")

    backends = available_backends()
    assert "python" in backends
    # every row records its backend; numpy rows record the version
    for row in report.rows:
        assert row["backend"] in backends
        assert row["fixpoint_matches"]
        if row["backend"] == "numpy":
            assert row["numpy"]

    if not HAVE_NUMPY:
        return
    assert "numpy" in backends
    for program in DENSE_PROGRAMS:
        assert report.speedups[program] >= SPEEDUP_FLOOR, (
            f"{program}: numpy kernel only {report.speedups[program]:.1f}x "
            f"over python (floor {SPEEDUP_FLOOR:.0f}x)"
        )
