"""Kernel backend comparison: the runtime layer's acceptance benchmark.

Runs every registered kernel backend (python, numpy, sparse, jit when
numba is installed) over the dense- and sparse-frontier programs at the
smoke scale *and* at the floor scale, asserts bit-identical fixpoints
and work counters while timing, and writes the committed byte-stable
baseline ``benchmarks/results/BENCH_kernels.json`` (work counters and
floor verdicts only -- never wall seconds or library versions).

Two qualitative claims are guarded:

* the vectorized numpy kernel beats the pure-Python reference loop by
  >= 3x on dense-frontier MRA at scale >= 0.5;
* the sparse-frontier kernel beats numpy by >= 3x on the
  selective-aggregate programs (sssp, cc) at scale >= 1.0, where
  per-superstep frontiers collapse and full-vertex scans are waste.

The sparse-vs-dense crossover table (numpy/sparse ratio per program and
scale) is printed with the report so the regime boundary stays visible.
"""

from repro.bench.kernels import (
    DENSE_PROGRAMS,
    SEMIRING_PROGRAMS,
    SPARSE_FLOOR,
    SPARSE_FLOOR_SCALE,
    SPARSE_PROGRAMS,
    SPEEDUP_FLOOR,
    kernel_floors_met,
    run_kernel_bench,
    write_kernel_baseline,
)
from repro.runtime import HAVE_NUMPY, available_backends


def test_kernel_backends(benchmark, bench_scale, save_report):
    report = benchmark.pedantic(
        lambda: run_kernel_bench(
            scale=min(bench_scale, 0.5),
            speedup_scale=max(bench_scale, 0.5),
        ),
        rounds=1,
        iterations=1,
    )
    save_report(report)
    # the committed baseline holds the floor-scale rows; smoke runs at
    # smaller scales must not churn it
    if report.check_scale >= SPARSE_FLOOR_SCALE:
        path = write_kernel_baseline(report)
        print(f"[baseline saved to {path}]")

    backends = available_backends()
    assert "python" in backends
    # every row records its backend and the deterministic work triple
    for row in report.rows:
        assert row["backend"] in backends
        assert row["fixpoint_matches"]
        assert set(row["work"]) == {
            "combines",
            "updates",
            "fprime_applications",
        }

    if not HAVE_NUMPY:
        return
    assert "numpy" in backends and "sparse" in backends
    for program in DENSE_PROGRAMS:
        assert report.speedups[program] >= SPEEDUP_FLOOR, (
            f"{program}: numpy kernel only {report.speedups[program]:.1f}x "
            f"over python (floor {SPEEDUP_FLOOR:.0f}x)"
        )
    # the crossover table covers every dataset (program, scale) pair
    # (semiring rows run on fixture graphs and carry no crossover)
    scales = sorted(
        {
            row["scale"]
            for row in report.rows
            if row["program"] in (*DENSE_PROGRAMS, *SPARSE_PROGRAMS)
        }
    )
    for program in (*DENSE_PROGRAMS, *SPARSE_PROGRAMS):
        for scale in scales:
            assert f"{program}@{scale}" in report.crossover
    # the four semiring families each produced rows for every backend
    # that supports their carrier; kpaths' KTuple rows must exclude the
    # float64 backends
    for program in SEMIRING_PROGRAMS:
        row_backends = {
            row["backend"] for row in report.rows if row["program"] == program
        }
        if program == "kpaths":
            assert row_backends == {"python", "numpy"} & set(backends)
        else:
            assert row_backends == set(backends)
    if report.check_scale < SPARSE_FLOOR_SCALE:
        return  # smoke run: sparse floor only binds at the floor scale
    for program in SPARSE_PROGRAMS:
        assert report.sparse_speedups[program] >= SPARSE_FLOOR, (
            f"{program}: sparse kernel only "
            f"{report.sparse_speedups[program]:.1f}x over numpy "
            f"(floor {SPARSE_FLOOR:.0f}x at scale {SPARSE_FLOOR_SCALE})"
        )
    assert kernel_floors_met(report) == {
        "numpy_dense_3x": True,
        "sparse_selective_3x": True,
    }
