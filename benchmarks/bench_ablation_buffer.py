"""Ablation (section 5.3): adaptive message buffers vs fixed sizes.

The adaptive ``beta(i,j)`` rule should land near the best fixed setting
on every workload without tuning -- that is its purpose: "a
properly-controlled execution" between eager messaging and full batching.
"""

import math

from repro.bench import run_buffer_ablation

FIXED = ("beta=4", "beta=64", "beta=1024")


def test_adaptive_buffer_near_best_fixed(benchmark, bench_scale, save_report):
    report = benchmark.pedantic(
        run_buffer_ablation, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_report(report)

    for row in report.rows:
        for label in (*FIXED, "adaptive"):
            assert not math.isnan(row[label]), row
        best_fixed = min(row[label] for label in FIXED)
        # adaptive within 40% of the best fixed configuration, untuned
        assert row["adaptive"] <= best_fixed * 1.4, row

    # tiny buffers must visibly inflate message counts somewhere
    assert any(
        row["beta=4 msgs"] > 2 * row["beta=1024 msgs"] for row in report.rows
    )
