"""Incremental maintenance benchmark: delta repair vs recompute.

Insert-only deltas at 0.1%, 1% and 10% of the dataset's edges against
the RA320 programs; asserts bit-exact agreement between the repaired
and recomputed fixpoints while timing, and guards the qualitative
claim: small deltas repair in a fraction of the from-scratch work
(deterministic ``work.*`` counters, not wall-clock).  Writes the
committed baseline ``benchmarks/results/BENCH_delta.json``.
"""

from repro.bench.delta import (
    DELTA_FRACTIONS,
    WORK_RATIO_CEILING,
    run_delta_bench,
    write_delta_baseline,
)


def test_delta_repair_vs_recompute(benchmark, bench_scale, save_report):
    # capped at the smoke scale: the work-ratio claim is scale-stable and
    # the committed baseline must not churn between bench targets
    report = benchmark.pedantic(
        lambda: run_delta_bench(scale=min(bench_scale, 0.25)),
        rounds=1,
        iterations=1,
    )
    save_report(report)
    path = write_delta_baseline(report)
    print(f"[baseline saved to {path}]")

    assert len(report.rows) == 2 * len(DELTA_FRACTIONS)
    for row in report.rows:
        # exactness was asserted inside the bench; pin the row contract
        assert row["fixpoint_matches"]
        # insert-only deltas on RA320 programs always take the fast path
        assert row["strategy"] == "frontier"
        assert row["repair_work"] < row["recompute_work"]
        if row["delta_fraction"] <= 0.01:
            assert row["work_ratio"] <= WORK_RATIO_CEILING, (
                f"{row['program']} @ {row['delta_fraction']:.1%}: repair did "
                f"{row['work_ratio']:.1%} of recompute work "
                f"(ceiling {WORK_RATIO_CEILING:.0%})"
            )
