"""Figure 11: the unified sync-async engine vs Grape+'s AAP model.

Paper finding (section 6.5): AAP is comparable-to-better than pure sync
and async in most cases, and "on all datasets, our sync-async engine
shows the best performance".
"""

import math

from repro.bench import run_figure11


def test_figure11_unified_vs_aap(benchmark, bench_scale, save_report):
    report = benchmark.pedantic(
        run_figure11, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_report(report)

    assert len(report.rows) == 6  # {sssp, pagerank} x {wiki, web, arabic}
    for row in report.rows:
        for mode in ("sync", "async", "aap", "sync-async"):
            assert not math.isnan(row[mode]), row
        # the headline claim: sync-async best on every cell
        assert row["best"] == "sync-async", row
        # AAP never collapses to the worst mode
        worst = max(("sync", "async"), key=lambda mode: row[mode])
        assert row["aap"] <= row[worst] * 1.05, row
