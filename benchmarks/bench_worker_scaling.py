"""Extension: unified-engine scaling with cluster size.

Compute divides across workers while coordination costs do not; the
simulator must show monotone-ish speedup and a correct result at every
cluster size (this doubles as a regression guard for the master-check
progress gate).
"""

import math

from repro.bench import run_worker_scaling


def test_worker_scaling(benchmark, bench_scale, save_report):
    report = benchmark.pedantic(
        run_worker_scaling, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_report(report)

    for row in report.rows:
        times = [v for k, v in row.items() if k.endswith("w")]
        assert not any(math.isnan(t) for t in times), row
        # 32 workers at least 3x faster than a single worker
        assert row["1w"] / row["32w"] > 3.0, row
