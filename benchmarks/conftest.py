"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure, writes the formatted
report under ``benchmarks/results/`` and asserts the qualitative claims
("who wins") hold.  ``REPRO_BENCH_SCALE`` scales the dataset stand-ins
(default 1.0); simulated seconds are the measurement of record, the
pytest-benchmark wall times merely record harness cost.
"""

from __future__ import annotations

import os

import pytest


def pytest_benchmark_update_machine_info(config, machine_info):
    """Stamp the runtime backend into every benchmark result JSON."""
    from repro.runtime import numpy_version, resolve_backend

    machine_info["repro_backend"] = resolve_backend(None)
    machine_info["repro_numpy"] = numpy_version()


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def save_report():
    from repro.bench import write_report

    def _save(report) -> str:
        path = write_report(report.name, report.text)
        print(f"\n{report.text}\n[report saved to {path}]")
        return path

    return _save
