"""Figure 9: PowerLog vs SociaLite / Myria / BigDatalog, six algorithms
on six datasets.

Split per algorithm (one bench each) so a single slow cell cannot mask
the rest.  As in the paper: Myria and BigDatalog do not run Adsorption,
Katz or Belief Propagation; those compare against SociaLite only.
The assertions encode the qualitative claims of section 6.3 -- PowerLog
wins (nearly) everywhere, with the paper's own documented exception of
SociaLite's delta-stepping SSSP on the small-diameter web graph.
"""

import math


from repro.bench import run_figure9


def _run(benchmark, bench_scale, save_report, program):
    report = benchmark.pedantic(
        run_figure9,
        kwargs={"programs": [program], "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    report.name = f"figure9_{program}"
    save_report(report)
    return report


def _powerlog_wins(report, allow_losses: int = 0) -> None:
    losses = []
    for row in report.rows:
        competitor_times = [
            value
            for system, value in row.items()
            if system not in ("program", "dataset", "PowerLog")
            and isinstance(value, float)
            and not math.isnan(value)
        ]
        if not competitor_times:
            continue
        assert not math.isnan(row["PowerLog"]), row
        if row["PowerLog"] > min(competitor_times):
            losses.append((row["dataset"], row["PowerLog"], min(competitor_times)))
    assert len(losses) <= allow_losses, losses


def test_figure9a_cc(benchmark, bench_scale, save_report):
    report = _run(benchmark, bench_scale, save_report, "cc")
    _powerlog_wins(report, allow_losses=1)


def test_figure9b_sssp(benchmark, bench_scale, save_report):
    # paper: SociaLite beats PowerLog on ClueWeb09 (delta stepping)
    report = _run(benchmark, bench_scale, save_report, "sssp")
    _powerlog_wins(report, allow_losses=2)


def test_figure9c_pagerank(benchmark, bench_scale, save_report):
    report = _run(benchmark, bench_scale, save_report, "pagerank")
    _powerlog_wins(report)
    # the non-monotonic case is where MRA evaluation shines: at least
    # 3x over every naive-evaluation baseline on every dataset
    for row in report.rows:
        for system in ("SociaLite",):
            assert row[system] / row["PowerLog"] > 3.0, row


def test_figure9d_adsorption(benchmark, bench_scale, save_report):
    report = _run(benchmark, bench_scale, save_report, "adsorption")
    _powerlog_wins(report)


def test_figure9e_katz(benchmark, bench_scale, save_report):
    report = _run(benchmark, bench_scale, save_report, "katz")
    _powerlog_wins(report)


def test_figure9f_bp(benchmark, bench_scale, save_report):
    report = _run(benchmark, bench_scale, save_report, "bp")
    _powerlog_wins(report)
