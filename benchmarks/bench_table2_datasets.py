"""Table 2: the dataset stand-ins next to the paper's real graphs."""

from repro.bench import run_table2


def test_table2_datasets(benchmark, bench_scale, save_report):
    report = benchmark.pedantic(
        run_table2, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_report(report)

    assert len(report.rows) == 6
    # relative ordering of the paper's sizes is preserved by the stand-ins
    paper_edge_order = [row["paper E"] for row in report.rows]
    assert paper_edge_order == sorted(paper_edge_order)
    for row in report.rows:
        assert row["repro V"] > 0 and row["repro E"] > 0
