"""Ablation (section 5.4): the importance threshold for sum aggregations.

"Delta results are distinguished... the less important delta results are
contained and accumulated in the local cache before they are used" --
the optimisation must cut F' applications without breaking convergence.
"""

from repro.bench import run_priority_ablation


def test_importance_threshold_saves_work(benchmark, bench_scale, save_report):
    report = benchmark.pedantic(
        run_priority_ablation, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_report(report)

    savings = []
    for row in report.rows:
        assert row["with F'"] <= row["without F'"], row
        savings.append(1 - row["with F'"] / max(1, row["without F'"]))
    # the optimisation must matter somewhere (paper: it is a headline
    # optimisation for sum programs)
    assert max(savings) > 0.05, savings
