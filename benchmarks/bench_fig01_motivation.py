"""Figure 1: SociaLite (sync) vs Myria (async) -- neither always wins.

The paper's motivation: on LiveJournal SociaLite wins SSSP but loses
PageRank; on SSSP, SociaLite wins Arabic-2005 but the paper reports it
losing Wiki-link.  The reproduction must show the *flip* -- per-workload
winners changing -- not the absolute times.
"""

import math

from repro.bench import run_figure1


def test_figure1_motivation(benchmark, bench_scale, save_report):
    report = benchmark.pedantic(
        run_figure1, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_report(report)

    by_workload = {row["workload"]: row for row in report.rows}
    # measured winners flip across workloads (the paper's core point)
    winners = {row["winner"] for row in report.rows}
    assert len(winners) > 1, "one system won everything -- no flip reproduced"
    # the two unambiguous paper cells must agree
    assert by_workload["sssp/livej"]["winner"] == "SociaLite"
    assert by_workload["pagerank/livej"]["winner"] == "Myria"
    # every cell produced finite, correct-result timings
    for row in report.rows:
        assert not math.isnan(row["SociaLite(s)"])
        assert not math.isnan(row["Myria(s)"])
