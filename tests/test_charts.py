"""ASCII chart rendering."""


from repro.bench import bar_chart, convergence_chart, grouped_bar_chart, sparkline


class TestBarChart:
    def test_linear_proportions(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=40)
        lines = text.splitlines()
        bars = {line.split()[0]: line.count("#") for line in lines}
        assert bars["a"] == 40
        assert bars["b"] == 20

    def test_log_scale_compresses(self):
        text = bar_chart({"x": 1.0, "y": 1000.0}, width=40, log_scale=True)
        bars = {line.split()[0]: line.count("#") for line in text.splitlines()}
        # on a linear axis x would be invisible; on log it keeps a stub
        assert bars["x"] >= 1
        assert bars["y"] == 40

    def test_log_scale_falls_back_within_one_decade(self):
        text = bar_chart({"x": 0.95, "y": 1.0}, width=40, log_scale=True)
        bars = {line.split()[0]: line.count("#") for line in text.splitlines()}
        assert bars["x"] >= 30  # linear, not collapsed to a stub

    def test_nan_marked_as_wrong(self):
        text = bar_chart({"ok": 1.0, "bad": float("nan")})
        assert "(wrong result)" in text

    def test_title_and_units(self):
        text = bar_chart({"a": 2.0}, title="T", unit="ms")
        assert text.startswith("T")
        assert "2ms" in text

    def test_empty(self):
        assert "(no data)" in bar_chart({"a": float("nan")})


class TestGroupedBarChart:
    def test_one_block_per_row(self):
        rows = [
            {"dataset": "livej", "A": 1.0, "B": 2.0},
            {"dataset": "wiki", "A": 3.0, "B": 4.0},
        ]
        text = grouped_bar_chart(rows, "dataset", ["A", "B"], title="fig")
        assert text.count("livej") == 1 and text.count("wiki") == 1

    def test_missing_series_skipped(self):
        rows = [{"dataset": "livej", "A": 1.0, "B": None}]
        text = grouped_bar_chart(rows, "dataset", ["A", "B"])
        assert "B" not in text.replace("livej", "")


class TestSparkline:
    def test_length_bounded(self):
        assert len(sparkline(list(range(1, 200)), width=60)) == 60

    def test_short_series_kept(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=60)) == 3

    def test_monotone_decay_renders_decreasing_levels(self):
        ticks = sparkline([1000.0, 100.0, 10.0, 1.0])
        levels = [ticks.index(c) if (c := ch) else 0 for ch in ticks]  # noqa: F841
        assert ticks[0] != ticks[-1]

    def test_zeros_render_as_blank(self):
        assert sparkline([0.0, 0.0]) == "  "

    def test_empty(self):
        assert sparkline([]) == "(empty)"


class TestConvergenceChart:
    def test_real_traces(self):
        from repro.distributed import SyncEngine
        from repro.graphs import rmat
        from repro.programs import PROGRAMS

        plan = PROGRAMS["sssp"].plan(rmat(40, 160, seed=3))
        result = SyncEngine(plan).run()
        text = convergence_chart({"sync": result.trace})
        assert "rounds" in text
        assert str(len(result.trace)) in text

    def test_trace_is_recorded_by_all_engines(self):
        from repro.distributed import AsyncEngine, SyncEngine, UnifiedEngine
        from repro.engine import MRAEvaluator
        from repro.graphs import rmat
        from repro.programs import PROGRAMS

        plan = PROGRAMS["pagerank"].plan(rmat(40, 160, seed=3))
        for engine in (
            MRAEvaluator(plan),
            SyncEngine(plan),
            AsyncEngine(plan),
            UnifiedEngine(plan),
        ):
            result = engine.run()
            assert result.trace, engine
            # delta magnitudes decay towards the stopping threshold
            deltas = [d for _, d in result.trace]
            assert deltas[-1] < deltas[0]
