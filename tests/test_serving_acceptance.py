"""SLO acceptance harness and serving observability tests.

These are the serving layer's contract tests: byte-identical reruns
(including under a fault schedule), the no-lost-request invariant,
degraded-answer agreement within the chaos tolerances, and breaker
visibility through ``repro.obs``.
"""

import json

import pytest

from repro.obs import Observability
from repro.serving import (
    ServeConfig,
    ServingService,
    WorkloadSpec,
    build_report,
    default_chaos,
    report_to_json,
    run_serve_acceptance,
)

#: smaller than the CLI default to keep the suite quick, but with the
#: same burst, tenants, mixes and version bumps
SPEC = WorkloadSpec(num_requests=40)


class TestAcceptanceHarness:
    @pytest.mark.chaos
    def test_passes_under_default_chaos(self, tmp_path):
        acceptance = run_serve_acceptance(
            spec=SPEC, chaos=default_chaos(), checkpoint_root=str(tmp_path)
        )
        assert acceptance.no_lost_requests
        assert acceptance.deterministic
        assert acceptance.all_agreed and acceptance.agreements
        assert acceptance.breaker_visible is True
        assert acceptance.passed
        assert "PASS" in acceptance.summary()

    def test_passes_without_chaos(self, tmp_path):
        acceptance = run_serve_acceptance(spec=SPEC, checkpoint_root=str(tmp_path))
        assert acceptance.passed
        # no outage configured, so breaker visibility is not applicable
        assert acceptance.breaker_visible is None

    @pytest.mark.chaos
    def test_same_seed_reports_are_byte_identical_under_faults(self, tmp_path):
        config = ServeConfig()
        payloads = []
        for name in ("a", "b"):
            service = ServingService(
                config,
                chaos=default_chaos(),
                checkpoint_dir=str(tmp_path / name),
            )
            outcome = service.run(SPEC, seed=11)
            payloads.append(
                report_to_json(
                    build_report(outcome, SPEC, config, chaos=default_chaos())
                )
            )
        assert payloads[0] == payloads[1]

    def test_different_seeds_differ(self):
        config = ServeConfig()
        reports = [
            report_to_json(
                build_report(ServingService(config).run(SPEC, seed=s), SPEC, config)
            )
            for s in (1, 2)
        ]
        assert reports[0] != reports[1]


class TestServingObservability:
    @pytest.mark.chaos
    def test_serve_metrics_and_breaker_traces(self):
        with Observability(keep_series=False) as obs:
            service = ServingService(ServeConfig(), chaos=default_chaos(), obs=obs)
            outcome = service.run(SPEC, seed=7)
            kinds = obs.trace.counts_by_kind()
            assert kinds.get("serve.arrive", 0) == SPEC.num_requests
            assert kinds.get("serve.complete", 0) == SPEC.num_requests
            assert kinds.get("serve.dispatch", 0) >= 1
            # the outage trips the sync breaker and the half-open probe
            # window is a clocked trace event, per the ISSUE contract
            breaker_edges = [
                (event.get("engine"), event.get("to"))
                for event in obs.trace.events
                if event["kind"] == "serve.breaker"
            ]
            assert ("sync", "open") in breaker_edges
            assert ("sync", "half-open") in breaker_edges
            assert obs.metrics.counter_total("serve.admitted") > 0
            assert obs.metrics.counter_total("serve.completions") == SPEC.num_requests
            assert obs.metrics.counter_total("serve.attempt_failures") >= 1
            assert outcome.counters["attempt_failures"] >= 1

    def test_disabled_obs_costs_nothing_and_still_serves(self):
        outcome = ServingService(ServeConfig()).run(SPEC, seed=7)
        assert len(outcome.responses) == SPEC.num_requests


class TestServeCli:
    def test_serve_json_is_deterministic(self, capsys):
        from repro.cli import main

        argv = ["serve", "--requests", "25", "--format", "json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        assert sum(report["status_counts"].values()) == 25

    def test_serve_acceptance_exit_code_and_out_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "slo.json"
        code = main(
            [
                "serve",
                "--requests",
                "25",
                "--acceptance",
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "acceptance: PASS" in text
        payload = json.loads(out.read_text())
        assert payload["acceptance"]["passed"] is True
        assert payload["acceptance"]["no_lost_requests"] is True

    def test_chaos_json_format(self, capsys):
        from repro.cli import main

        code = main(
            ["chaos", "--programs", "sssp", "--engines", "sync", "--format", "json"]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["agreed"] is True
        (report,) = document["reports"]
        assert report["program"] == "sssp"
        assert report["stats"]["crashes"] >= 1

    def test_metrics_footer_surfaces_faults(self, capsys):
        from repro.cli import main

        code = main(["metrics", "sssp", "--engine", "sync", "--chaos"])
        assert code == 0
        text = capsys.readouterr().out
        assert "fault counters (EvalResult.faults):" in text
        assert "totals:" in text and "fault counts" in text
