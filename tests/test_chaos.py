"""Deterministic fault injection: chaotic runs reach the same fixpoint.

The whole module is marked ``chaos`` (``make chaos`` / ``pytest -m
chaos``); it also runs as part of the default ``make test``.
"""

import pytest

from repro.distributed import (
    AsyncEngine,
    Checkpointer,
    ClusterConfig,
    FaultSchedule,
    Partition,
    RetransmitBuffer,
    Straggler,
    SyncEngine,
    WorkerCrash,
    run_chaos,
    run_matrix,
)
from repro.distributed.chaos import FaultInjector
from repro.graphs import random_dag, rmat
from repro.programs import PROGRAMS

pytestmark = pytest.mark.chaos

#: the fixed seed matrix every acceptance sweep runs under
SEEDS = (7, 23)


@pytest.fixture(scope="module")
def graph():
    return rmat(50, 220, seed=13, name="chaos-test")


@pytest.fixture(scope="module")
def dag():
    return random_dag(40, 120, seed=17, name="chaos-test-dag")


def _plan(name, graph):
    return PROGRAMS[name].plan(graph)


class TestScheduleValidation:
    def test_null_schedule_is_null(self):
        assert FaultSchedule().is_null()
        assert not FaultSchedule(drop_rate=0.01).is_null()

    def test_permanent_crash_rejected(self):
        schedule = FaultSchedule(
            crashes=(WorkerCrash(worker=0, at=0.1, restart_after=0.0),)
        )
        with pytest.raises(ValueError, match="must restart"):
            schedule.validate(num_workers=4)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultSchedule(drop_rate=1.5).validate(num_workers=2)
        with pytest.raises(ValueError, match="duplicate_rate"):
            FaultSchedule(duplicate_rate=-0.1).validate(num_workers=2)

    def test_out_of_range_workers_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            FaultSchedule(
                crashes=(WorkerCrash(worker=9, at=0.1),)
            ).validate(num_workers=4)

    def test_naive_mode_rejects_faults(self, graph):
        cluster = ClusterConfig(num_workers=2).with_faults(
            FaultSchedule(drop_rate=0.05)
        )
        with pytest.raises(ValueError, match="incremental"):
            SyncEngine(_plan("sssp", graph), cluster, mode="naive")

    def test_with_faults_validates(self):
        with pytest.raises(ValueError, match="outside"):
            ClusterConfig(num_workers=2).with_faults(
                FaultSchedule(crashes=(WorkerCrash(worker=5, at=0.1),))
            )

    def test_fault_free_result_has_no_stats(self, graph):
        result = SyncEngine(_plan("sssp", graph), ClusterConfig(num_workers=2)).run()
        assert result.faults is None


class TestRetransmitBuffer:
    def test_track_ack_cycle(self):
        buffer = RetransmitBuffer(base_timeout=1e-3, backoff=2.0, max_timeout=8e-3)
        buffer.track(0, {"a": 1})
        buffer.track(1, {"b": 2})
        assert len(buffer) == 2
        assert buffer.get(0) == {"a": 1}
        buffer.ack(0)
        assert buffer.get(0) is None
        assert buffer.pending and buffer.get(1) == {"b": 2}
        buffer.ack(0)  # duplicate acks are harmless
        assert len(buffer) == 1
        buffer.clear()
        assert not buffer.pending

    def test_exponential_backoff_caps(self):
        buffer = RetransmitBuffer(base_timeout=1e-3, backoff=2.0, max_timeout=5e-3)
        assert buffer.timeout(1) == pytest.approx(1e-3)
        assert buffer.timeout(2) == pytest.approx(2e-3)
        assert buffer.timeout(3) == pytest.approx(4e-3)
        assert buffer.timeout(4) == pytest.approx(5e-3)  # capped
        assert buffer.timeout(10) == pytest.approx(5e-3)


class TestDeterminism:
    """Same schedule + seed -> bit-identical chaotic executions."""

    @pytest.mark.parametrize("engine_cls", [SyncEngine, AsyncEngine])
    def test_identical_runs(self, graph, engine_cls):
        schedule = FaultSchedule(
            crashes=(WorkerCrash(worker=1, at=0.01, restart_after=0.004),),
            drop_rate=0.05,
            duplicate_rate=0.02,
            reorder_jitter=1e-4,
            stragglers=(Straggler(worker=0, factor=2.5, start=0.0, end=0.02),),
            seed=11,
        )
        cluster = ClusterConfig(num_workers=4).with_faults(schedule)
        first = engine_cls(_plan("sssp", graph), cluster).run()
        second = engine_cls(_plan("sssp", graph), cluster).run()
        assert first.values == second.values
        assert first.simulated_seconds == second.simulated_seconds
        assert first.faults.snapshot() == second.faults.snapshot()

    def test_different_seeds_differ(self, graph):
        base = FaultSchedule(drop_rate=0.2, duplicate_rate=0.1, seed=1)
        cluster = ClusterConfig(num_workers=4)
        a = SyncEngine(
            _plan("sssp", graph), cluster.with_faults(base)
        ).run()
        b = SyncEngine(
            _plan("sssp", graph), cluster.with_faults(base.with_seed(2))
        ).run()
        # values agree (recovery works) but the injected faults differ
        assert a.values == b.values
        assert a.faults.snapshot() != b.faults.snapshot()


class TestAcceptanceMatrix:
    """The ISSUE acceptance bar: >= 1 crash, >= 1% drops, duplicates, and
    chaotic runs agree with fault-free references on a min program, a
    sum program and a non-monotonic (PageRank) program, on both
    engines, under fixed seeds."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_matrix_agrees(self, seed):
        reports = run_matrix(
            num_workers=4,
            seed=seed,
            schedule_kwargs={"drop_rate": 0.02, "duplicate_rate": 0.015},
        )
        assert len(reports) == 6  # 3 programs x 2 engines
        for report in reports:
            assert report.agreed, report.row()
            assert report.stats["crashes"] >= 1
            assert report.stats["dropped_messages"] >= 1
            assert report.stats["retransmits"] >= 1
        # the schedule duplicated at least one delivery somewhere
        assert any(r.stats["duplicated_messages"] >= 1 for r in reports)
        # fault counters surface in EvalResult-derived reports
        assert all(r.stats["recoveries"] >= 1 for r in reports)

    def test_idempotent_is_bit_for_bit(self, graph):
        report = run_chaos("sssp", engine="async", graph=graph, seed=7)
        assert report.tolerance == 0.0
        assert report.agreed
        assert report.max_error == 0.0

    def test_additive_rollback_recovery(self, dag):
        report = run_chaos("dag_paths", engine="sync", graph=dag, seed=7)
        assert report.agreed, report.row()
        assert report.stats["rollbacks"] >= 1


class TestDuplicateAbsorption:
    """Duplicates are absorbed by g (idempotent) or seq dedup (additive)."""

    @pytest.mark.parametrize("engine_cls", [SyncEngine, AsyncEngine])
    def test_min_absorbed_by_g(self, graph, engine_cls):
        plan = _plan("sssp", graph)
        reference = engine_cls(plan, ClusterConfig(num_workers=4)).run()
        chaotic = engine_cls(
            _plan("sssp", graph),
            ClusterConfig(num_workers=4).with_faults(
                FaultSchedule(duplicate_rate=0.3, seed=5)
            ),
        ).run()
        assert chaotic.values == reference.values
        assert chaotic.faults.duplicated_messages >= 1

    @pytest.mark.parametrize("engine_cls", [SyncEngine, AsyncEngine])
    def test_sum_deduplicated_exactly(self, dag, engine_cls):
        plan = _plan("dag_paths", graph=dag)
        reference = engine_cls(plan, ClusterConfig(num_workers=4)).run()
        chaotic = engine_cls(
            _plan("dag_paths", graph=dag),
            ClusterConfig(num_workers=4).with_faults(
                FaultSchedule(duplicate_rate=0.3, seed=5)
            ),
        ).run()
        # path *counts* must match exactly: one double-applied delta
        # would inflate a count, so this catches any dedup hole
        assert chaotic.values == reference.values
        assert chaotic.faults.duplicated_messages >= 1
        assert chaotic.faults.duplicates_absorbed >= 1


class TestFaultClasses:
    def test_straggler_stretches_time(self, graph):
        plan = _plan("sssp", graph)
        cluster = ClusterConfig(num_workers=4)
        reference = SyncEngine(plan, cluster).run()
        slowed = SyncEngine(
            _plan("sssp", graph),
            cluster.with_faults(
                FaultSchedule(
                    stragglers=(Straggler(worker=0, factor=10.0),), seed=3
                )
            ),
        ).run()
        assert slowed.values == reference.values
        assert slowed.simulated_seconds > reference.simulated_seconds

    def test_partition_heals_and_converges(self, graph):
        plan = _plan("sssp", graph)
        cluster = ClusterConfig(num_workers=4)
        reference = SyncEngine(plan, cluster).run()
        partitioned = SyncEngine(
            _plan("sssp", graph),
            cluster.with_faults(
                FaultSchedule(
                    partitions=(Partition(a=0, b=1, start=0.0, end=0.004),),
                    seed=3,
                )
            ),
        ).run()
        assert partitioned.values == reference.values
        assert partitioned.faults.dropped_messages >= 1
        assert partitioned.faults.retransmits >= 1

    def test_injector_partition_window(self):
        injector = FaultInjector(
            FaultSchedule(partitions=(Partition(a=0, b=2, start=0.1, end=0.2),)),
            num_workers=4,
        )
        assert injector.partitioned(0, 2, 0.15)
        assert injector.partitioned(2, 0, 0.15)  # both directions
        assert not injector.partitioned(0, 2, 0.05)  # before the window
        assert not injector.partitioned(0, 2, 0.25)  # after it heals
        assert not injector.partitioned(0, 1, 0.15)  # unrelated pair


class TestCrashRecoveryWithCheckpoints:
    """Crashed shards restore from disk checkpoints when available."""

    def test_sync_local_restore_from_checkpoint(self, graph, tmp_path):
        plan = _plan("sssp", graph)
        cluster = ClusterConfig(num_workers=4)
        reference = SyncEngine(plan, cluster).run()
        mid = reference.simulated_seconds * 0.5
        chaotic = SyncEngine(
            _plan("sssp", graph),
            cluster.with_faults(
                FaultSchedule(
                    crashes=(WorkerCrash(worker=1, at=mid, restart_after=0.004),),
                    seed=9,
                )
            ),
            checkpointer=Checkpointer(tmp_path),
            checkpoint_every=1,
            run_name="chaos-ckpt",
        ).run()
        assert chaotic.values == reference.values
        assert chaotic.faults.crashes == 1
        assert chaotic.faults.recoveries == 1
        assert chaotic.faults.replayed_tuples >= 1

    def test_async_crash_without_checkpointer_reseeds(self, graph):
        plan = _plan("sssp", graph)
        cluster = ClusterConfig(num_workers=4)
        reference = AsyncEngine(plan, cluster).run()
        mid = reference.simulated_seconds * 0.4
        chaotic = AsyncEngine(
            _plan("sssp", graph),
            cluster.with_faults(
                FaultSchedule(
                    crashes=(WorkerCrash(worker=2, at=mid, restart_after=0.004),),
                    seed=9,
                )
            ),
        ).run()
        assert chaotic.values == reference.values
        assert chaotic.faults.crashes == 1
        assert chaotic.faults.recoveries == 1

    def test_multiple_crashes(self, graph):
        plan = _plan("sssp", graph)
        cluster = ClusterConfig(num_workers=4)
        reference = SyncEngine(plan, cluster).run()
        duration = reference.simulated_seconds
        chaotic = SyncEngine(
            _plan("sssp", graph),
            cluster.with_faults(
                FaultSchedule(
                    crashes=(
                        WorkerCrash(worker=1, at=duration * 0.3, restart_after=0.003),
                        WorkerCrash(worker=3, at=duration * 0.6, restart_after=0.003),
                    ),
                    drop_rate=0.02,
                    seed=9,
                )
            ),
        ).run()
        assert chaotic.values == reference.values
        assert chaotic.faults.crashes == 2
        assert chaotic.faults.recoveries == 2
