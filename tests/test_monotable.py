"""MonoTable semantics (paper Figure 7)."""


from hypothesis import given, strategies as st

from repro.aggregates import MIN, SUM
from repro.engine import MonoTable

values = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(-20, 20)),
    max_size=30,
)


class TestThreeStepUpdate:
    def test_push_combines_into_intermediate(self):
        table = MonoTable(SUM, initial={})
        table.push("a", 2)
        table.push("a", 3)
        assert table.intermediate["a"] == 5

    def test_fetch_resets_to_identity(self):
        table = MonoTable(SUM, initial={})
        table.push("a", 2)
        assert table.fetch_and_reset("a") == 2
        assert table.fetch_and_reset("a") is None  # never aggregated twice

    def test_accumulate_additive(self):
        table = MonoTable(SUM, initial={"a": 10})
        changed, magnitude = table.accumulate("a", 5)
        assert changed and magnitude == 5
        assert table.accumulated["a"] == 15

    def test_accumulate_selective_improvement(self):
        table = MonoTable(MIN, initial={"a": 10})
        changed, magnitude = table.accumulate("a", 7)
        assert changed and magnitude == 3
        assert table.accumulated["a"] == 7

    def test_accumulate_selective_pruned(self):
        table = MonoTable(MIN, initial={"a": 5})
        changed, magnitude = table.accumulate("a", 9)
        assert not changed and magnitude == 0.0
        assert table.accumulated["a"] == 5

    def test_accumulate_fresh_key(self):
        table = MonoTable(MIN, initial={})
        changed, _ = table.accumulate("new", 3)
        assert changed and table.accumulated["new"] == 3


class TestDrain:
    def test_drain_all_empties(self):
        table = MonoTable(SUM, initial={})
        table.push_many([("a", 1), ("b", 2)])
        drained = table.drain_all()
        assert drained == {"a": 1, "b": 2}
        assert not table.has_pending()

    def test_pending_magnitude(self):
        table = MonoTable(SUM, initial={})
        table.push_many([("a", -3), ("b", 2)])
        assert table.pending_magnitude() == 5.0


class TestShards:
    def test_key_restriction(self):
        table = MonoTable(SUM, initial={"a": 1, "b": 2}, keys={"a"})
        assert table.accumulated == {"a": 1}

    def test_result_copy(self):
        table = MonoTable(SUM, initial={"a": 1})
        result = table.result()
        result["a"] = 99
        assert table.accumulated["a"] == 1


class TestOrderIndependence:
    """Property 1 at the data structure level: push order is irrelevant."""

    @given(updates=values)
    def test_sum_push_order_irrelevant(self, updates):
        forward = MonoTable(SUM, initial={})
        backward = MonoTable(SUM, initial={})
        forward.push_many(updates)
        backward.push_many(reversed(updates))
        assert forward.intermediate == backward.intermediate

    @given(updates=values)
    def test_min_push_order_irrelevant(self, updates):
        forward = MonoTable(MIN, initial={})
        backward = MonoTable(MIN, initial={})
        forward.push_many(updates)
        backward.push_many(reversed(updates))
        assert forward.intermediate == backward.intermediate

    @given(updates=values)
    def test_interleaving_accumulate_equals_batch(self, updates):
        """Processing deltas one at a time or all at once agree (sum)."""
        eager = MonoTable(SUM, initial={})
        for key, value in updates:
            eager.push(key, value)
            tmp = eager.fetch_and_reset(key)
            eager.accumulate(key, tmp)
        batch = MonoTable(SUM, initial={})
        batch.push_many(updates)
        for key, tmp in batch.drain_all().items():
            batch.accumulate(key, tmp)
        assert eager.accumulated == batch.accumulated
