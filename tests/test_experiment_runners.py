"""Integration tests for the experiment runners (reduced scale).

The benchmarks run the full grids; these tests run the same code paths
on quarter-scale datasets so regressions in the harness surface in the
unit suite, quickly.
"""

import math


from repro.bench import (
    run_buffer_ablation,
    run_figure1,
    run_figure9,
    run_figure10,
    run_figure11,
    run_priority_ablation,
    run_worker_scaling,
)
from repro.bench.report import write_report

SCALE = 0.25


class TestFigure1Runner:
    def test_structure(self):
        report = run_figure1(scale=SCALE)
        assert len(report.rows) == 4
        for row in report.rows:
            assert not math.isnan(row["SociaLite(s)"])
            assert not math.isnan(row["Myria(s)"])
            assert row["winner"] in ("SociaLite", "Myria")
        assert report.notes


class TestFigure9Runner:
    def test_single_cell(self):
        report = run_figure9(
            programs=["sssp"], datasets=["flickr"], scale=SCALE
        )
        row = report.rows[0]
        assert row["PowerLog"] > 0
        assert row["SociaLite"] > 0
        assert "speedup" in report.notes[0]

    def test_unsupported_systems_dashed(self):
        report = run_figure9(
            programs=["katz"], datasets=["flickr"], scale=SCALE
        )
        row = report.rows[0]
        assert row["Myria"] is None and row["BigDatalog"] is None
        assert row["SociaLite"] > 0


class TestFigure10Runner:
    def test_single_program(self):
        report = run_figure10(
            programs=["sssp"], datasets=("flickr",), scale=SCALE
        )
        row = report.rows[0]
        assert row["naive+sync"] > row["mra+sync-async"]
        assert row["graph-engine sys"] == "PowerGraph"


class TestFigure11Runner:
    def test_chart_included(self):
        report = run_figure11(datasets=("flickr",), scale=SCALE)
        assert "sync-async" in report.text
        assert "#" in report.text  # the bar chart


class TestAblationRunners:
    def test_buffer_ablation(self):
        report = run_buffer_ablation(
            programs=("sssp",), datasets=("flickr",), scale=SCALE
        )
        row = report.rows[0]
        assert row["beta=4 msgs"] >= row["beta=1024 msgs"]

    def test_priority_ablation(self):
        report = run_priority_ablation(
            programs=("pagerank",), datasets=("flickr",), scale=SCALE
        )
        row = report.rows[0]
        assert row["with F'"] <= row["without F'"]

    def test_worker_scaling(self):
        # at quarter scale the graph is tiny and communication overheads
        # can beat parallelism, so only assert structure and correctness
        report = run_worker_scaling(
            programs=("sssp",), worker_counts=(1, 4), dataset="flickr", scale=SCALE
        )
        row = report.rows[0]
        assert not math.isnan(row["1w"]) and not math.isnan(row["4w"])
        assert row["speedup"].endswith("x")


class TestReportPersistence:
    def test_write_report_creates_file(self, tmp_path, monkeypatch):
        import repro.bench.report as report_module

        monkeypatch.setattr(report_module, "RESULTS_DIR", str(tmp_path))
        path = write_report("unit-test", "hello\nworld")
        with open(path) as handle:
            assert handle.read() == "hello\nworld\n"
