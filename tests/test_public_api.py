"""The documented public API: README quickstart and package exports."""


import repro


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        """The exact flow shown in README.md must work."""
        from repro import PowerLog, check_source, get_program
        from repro.graphs import load_dataset

        report = check_source(
            """
            sssp(X, d) :- X = 0, d = 0.
            sssp(Y, min[dy]) :- sssp(X, dx), edge(X, Y, dxy), dy = dx + dxy.
            """,
            name="sssp",
        )
        assert report.mra_satisfiable
        assert "MRA sat. = yes" in report.summary()

        system = PowerLog()
        result = system.run(get_program("sssp"), load_dataset("livej"))
        assert len(result.values) > 0
        assert result.simulated_seconds > 0


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        import repro.aggregates
        import repro.bench
        import repro.checker
        import repro.datalog
        import repro.distributed
        import repro.engine
        import repro.expr
        import repro.graphs
        import repro.programs
        import repro.reference
        import repro.systems

    def test_public_items_documented(self):
        """Every public callable/class exported at top level has a docstring."""
        import inspect

        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_module_docstrings(self):
        import importlib
        import pkgutil

        package = repro
        for info in pkgutil.walk_packages(package.__path__, "repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"
