"""Property tests for the retransmit protocol around RetransmitBuffer.

The chaos layer's reliable delivery rests on one protocol: every sent
delta is tracked under its sequence number until acked; the network may
drop, duplicate or reorder deliveries (and drop acks); timeouts
retransmit the *original* payload under the *original* sequence number;
receivers deduplicate by sequence number.  Hypothesis drives seeded
interleavings of all three fault kinds at once and checks the two
invariants every engine relies on (Theorem 3's redelivery soundness):

* **exactly-once application** -- a delta is never applied twice, no
  matter how many duplicated or retransmitted copies arrive;
* **eventual drain** -- as long as the network is eventually fair
  (delivery eventually succeeds), every tracked message is acked and
  the buffer empties; nothing is lost.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.distributed.buffers import RetransmitBuffer

#: per-delivery fates the generated schedule draws from
DELIVER, DROP, DUPLICATE = 0, 1, 2

#: after this many protocol rounds the network turns fair (pure-loss
#: schedules otherwise never terminate -- real chaos schedules are
#: probabilistic, so eventual delivery is almost sure)
FAIRNESS_ROUND = 12

MAX_ROUNDS = 64


def run_protocol(payloads, fates, reorder_seed):
    """Drive sender/receiver over a faulty network until drain.

    Returns ``(applied, rounds)`` where ``applied`` maps each sequence
    number to how many times the receiver *applied* its delta.
    """
    buffer = RetransmitBuffer(base_timeout=1e-3)
    for seq, value in enumerate(payloads):
        buffer.track(seq, {"seq": seq, "value": value})

    rng = random.Random(reorder_seed)
    fate_stream = iter(fates)
    applied = {seq: 0 for seq in range(len(payloads))}
    seen = set()  # receiver-side dedup memory, keyed by sequence number
    attempts = {seq: 0 for seq in range(len(payloads))}

    rounds = 0
    while buffer.pending and rounds < MAX_ROUNDS:
        rounds += 1
        # reordering: the network presents this round's retransmissions
        # in an arbitrary order
        in_flight = sorted(buffer.unacked)
        rng.shuffle(in_flight)
        for seq in in_flight:
            payload = buffer.get(seq)
            assert payload is not None and payload["seq"] == seq, (
                "retransmission must carry the original sequence number"
            )
            attempts[seq] += 1
            assert buffer.timeout(attempts[seq]) <= buffer.max_timeout
            fate = next(fate_stream, DELIVER) if rounds < FAIRNESS_ROUND else DELIVER
            if fate == DROP:
                continue  # ack timeout will retransmit next round
            copies = 2 if fate == DUPLICATE else 1
            for _ in range(copies):
                if seq not in seen:
                    seen.add(seq)
                    applied[seq] += 1
                # ack delivery can itself fail; the *next* copy or the
                # next retransmission re-acks (receiver stays idempotent)
                ack_fate = next(fate_stream, DELIVER)
                if rounds >= FAIRNESS_ROUND or ack_fate != DROP:
                    buffer.ack(seq)
    return buffer, applied, rounds


@settings(max_examples=200, deadline=None)
@given(
    payloads=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=24,
    ),
    fates=st.lists(st.integers(min_value=0, max_value=2), max_size=400),
    reorder_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_never_double_applies_and_always_drains(payloads, fates, reorder_seed):
    buffer, applied, _rounds = run_protocol(payloads, fates, reorder_seed)
    assert not buffer.pending, "every tracked message must eventually be acked"
    assert len(buffer) == 0
    assert all(count == 1 for count in applied.values()), (
        f"deltas must be applied exactly once, got {applied}"
    )


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=16),
    drop_everything_rounds=st.integers(min_value=1, max_value=FAIRNESS_ROUND - 1),
)
def test_pure_loss_phase_loses_nothing(n, drop_everything_rounds):
    """Even an all-drop prefix (every delivery and every ack lost) only
    costs rounds, never messages."""
    payloads = [float(i) for i in range(n)]
    fates = [DROP] * (n * drop_everything_rounds * 2)
    buffer, applied, rounds = run_protocol(payloads, fates, reorder_seed=7)
    assert not buffer.pending
    assert all(count == 1 for count in applied.values())
    assert rounds >= min(drop_everything_rounds, MAX_ROUNDS)


def test_ack_is_idempotent_and_get_reflects_ack():
    buffer = RetransmitBuffer(base_timeout=1e-3)
    buffer.track(3, {"seq": 3, "value": 1.0})
    assert buffer.get(3) == {"seq": 3, "value": 1.0}
    buffer.ack(3)
    buffer.ack(3)  # double ack (duplicated ack delivery) is harmless
    assert buffer.get(3) is None
    assert not buffer.pending
